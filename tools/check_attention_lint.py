#!/usr/bin/env python3
"""Grep-lint: the attention path must stay exact.

PR 9 removed the ``work_scale`` 0.5 causal approximation in favour of
integer mask-count accounting (``repro.kernels.masking``).  This lint
keeps it removed: it fails if ``work_scale`` reappears anywhere in the
attention path, or if a bare ``0.5`` literal shows up in the attention
regions of the lowering/graph/flash modules (where it historically meant
"approximate the causal triangle").

No third-party deps; runs standalone in the docs CI job:

    python tools/check_attention_lint.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

# Files forming the attention work-accounting path.
ATTENTION_PATH = [
    "src/repro/workloads/lowering.py",
    "src/repro/workloads/graph.py",
    "src/repro/kernels/flash_attention.py",
    "src/repro/kernels/masking.py",
]

FORBIDDEN = [
    # (pattern, explanation)
    (
        re.compile(r"\bwork_scale\b"),
        "work_scale is banned: report exact mask counts via reported_macs "
        "and FlashAttentionWorkload mask fields instead",
    ),
    (
        re.compile(r"(?<![\w.])0\.5\b"),
        "bare 0.5 literal in the attention path: causal work must come from "
        "repro.kernels.masking closed forms, never an approximation",
    ),
]


TRIPLE = re.compile(r'"""|\'\'\'')


def lint_file(path: Path) -> list:
    failures = []
    in_string = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        # Docstrings and comments may mention the banned names when telling
        # the history; only executable code is linted.  A line-based triple-
        # quote tracker is enough for this repo's style (no nested quoting).
        code = line
        quotes = len(TRIPLE.findall(line))
        if in_string:
            code = ""
            if quotes % 2 == 1:
                in_string = False
        elif quotes % 2 == 1:
            code = line.split('"""', 1)[0].split("'''", 1)[0]
            in_string = True
        elif quotes:
            code = ""  # one-line docstring
        code = code.split("#", 1)[0]
        for pattern, why in FORBIDDEN:
            if pattern.search(code):
                failures.append((path, lineno, line.strip(), why))
    return failures


def main() -> int:
    failures = []
    missing = []
    for rel in ATTENTION_PATH:
        path = REPO / rel
        if not path.is_file():
            missing.append(rel)
            continue
        failures.extend(lint_file(path))

    for rel in missing:
        print(f"check_attention_lint: missing expected file {rel}")
    for path, lineno, line, why in failures:
        print(f"{path.relative_to(REPO)}:{lineno}: {line}")
        print(f"    -> {why}")

    if failures or missing:
        print(f"check_attention_lint: FAILED ({len(failures)} finding(s))")
        return 1
    print(f"check_attention_lint: OK ({len(ATTENTION_PATH)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
