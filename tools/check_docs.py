#!/usr/bin/env python3
"""Execute the code blocks in the repo's Markdown docs (docs-smoke for CI).

Walks the given Markdown files (default: README.md and docs/*.md) and runs
every fenced code block whose info string is ``bash`` or ``python``:

* ``bash`` blocks run line by line; lines invoking ``python -m repro`` are
  executed with ``src`` on ``PYTHONPATH`` (a leading ``PYTHONPATH=src`` or
  ``$`` prompt is stripped).  Prose-style lines (``pip install`` hints) and
  self-referential commands -- the pytest suites CI already runs as their
  own jobs, and this checker itself -- are deliberately skipped;
* ``python`` blocks run as a script with ``src`` on ``PYTHONPATH``;
* an info string of ``python no-run`` (or any other tag) marks a block as
  illustrative-only and skips it.

Any non-zero exit status fails the check, so the quickstart commands in the
README can never drift away from the CLI they document.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```(.*)$")

#: bash lines worth executing (everything else in a bash block is context).
RUNNABLE_BASH = re.compile(r"python(3)? (-m (repro|pytest)\b|tools/)")

#: Commands that would re-enter this checker or re-run the full test matrix
#: (both already covered by dedicated CI jobs): skipped, not executed.
SELF_REFERENTIAL = re.compile(r"python(3)? (-m pytest\b|tools/check_docs)")


def code_blocks(path: Path) -> Iterator[Tuple[str, int, str]]:
    """Yield (info_string, line_number, body) per fenced block in ``path``."""
    info = None
    start = 0
    body: List[str] = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if info is not None and line.strip() == "```":
            yield info, start, "\n".join(body)
            info = None
            continue
        match = FENCE.match(line.strip())
        if match and info is None:
            info, start, body = match.group(1).strip(), number, []
        elif info is not None:
            body.append(line)


def run(command: List[str], label: str, stdin: str = "") -> bool:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    try:
        result = subprocess.run(
            command,
            input=stdin or None,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
    except subprocess.TimeoutExpired:
        print(f"FAIL {label} (timed out after 600s)")
        return False
    if result.returncode != 0:
        print(f"FAIL {label}")
        sys.stdout.write(result.stdout[-4000:])
        sys.stderr.write(result.stderr[-4000:])
        return False
    print(f"ok   {label}")
    return True


def check_file(path: Path) -> Tuple[int, int]:
    """Run a file's blocks; returns (executed, failed) counts."""
    executed = failed = 0
    for info, line, body in code_blocks(path):
        label_base = f"{path.relative_to(REPO_ROOT)}:{line}"
        if info == "python":
            executed += 1
            if not run([sys.executable, "-"], f"{label_base} [python]", stdin=body):
                failed += 1
        elif info == "bash":
            for command_line in body.splitlines():
                command_line = command_line.strip().lstrip("$ ").strip()
                command_line = re.sub(r"^PYTHONPATH=\S+\s+", "", command_line)
                if not RUNNABLE_BASH.search(command_line):
                    continue
                if SELF_REFERENTIAL.search(command_line):
                    continue
                executed += 1
                if not run(
                    shlex.split(command_line), f"{label_base} [{command_line}]"
                ):
                    failed += 1
    return executed, failed


def main(argv: List[str]) -> int:
    targets = [Path(arg) for arg in argv] or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]
    executed = failed = 0
    for target in targets:
        ran, bad = check_file(target)
        executed += ran
        failed += bad
    print(f"\n{executed} doc blocks executed, {failed} failed")
    if executed == 0:
        print("no runnable blocks found -- is the fence tagging broken?")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
