"""Setuptools shim.

The environment's setuptools lacks the ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping a setup.py lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on setups that have wheel) work everywhere.
"""

from setuptools import setup

setup()
