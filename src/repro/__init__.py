"""Python reproduction of Virgo: cluster-level matrix unit integration in GPUs.

The package models four GPU cluster designs that differ in how their matrix
unit is integrated (Volta-style, Ampere-style, Hopper-style, and Virgo's
cluster-level disaggregated unit), together with the substrates they run on:
a Vortex-like SIMT core, a banked shared memory, caches, DRAM, a DMA engine,
and an event-based energy/power/area model.

Typical entry points:

    from repro import run_gemm, DesignKind
    result = run_gemm(DesignKind.VIRGO, 512)
    print(result.mac_utilization, result.active_power_mw)
"""

from repro.config.presets import (
    DesignKind,
    make_design,
    volta_style,
    ampere_style,
    hopper_style,
    virgo,
)
from repro.runner import (
    GemmRunResult,
    FlashAttentionRunResult,
    run_gemm,
    run_flash_attention,
    run_all_gemm_designs,
)

__version__ = "1.0.0"

# Imported after __version__: the batch runner folds the package version
# into its cache keys, so it must see the attribute during partial init.
from repro.workloads import (
    ModelRunResult,
    ModelSpec,
    RequestSpec,
    ServingRunResult,
    ServingTrace,
    run_batch,
    run_model,
    run_serving,
)

__all__ = [
    "ModelRunResult",
    "ModelSpec",
    "RequestSpec",
    "ServingRunResult",
    "ServingTrace",
    "run_batch",
    "run_model",
    "run_serving",
    "DesignKind",
    "make_design",
    "volta_style",
    "ampere_style",
    "hopper_style",
    "virgo",
    "GemmRunResult",
    "FlashAttentionRunResult",
    "run_gemm",
    "run_flash_attention",
    "run_all_gemm_designs",
    "__version__",
]
