"""Deterministic fault injection for the serving stack.

Chaos testing for a simulator: perturb the serving pipeline in controlled,
*seeded* ways and assert the scheduler degrades gracefully instead of
deadlocking, losing requests, or corrupting its caches.  Three fault kinds:

* **Kernel latency spikes** -- a multiplier on the simulated duration of
  every kernel in a selected iteration.  Spiked iterations bypass the
  timing cache and the iteration memo in *both* directions (no read, no
  write), so poisoned timings never persist into clean runs.
* **Iteration stalls** -- a fixed number of dead cycles appended to a
  selected iteration's span, modeling a host hiccup or a preemptive
  background job on the accelerator.
* **Arrival bursts** -- selected requests have their arrival pulled earlier
  by a fixed offset, compressing the trace into overload bursts that stress
  admission control.

All randomness flows through :class:`random.Random` seeded with
``f"{seed}:{key}"`` strings -- SHA-512 based, stable across processes and
platforms, and independent of draw order, so a fault plan is a pure
function of ``(seed, plan, trace)`` and two runs with the same
``--fault-seed`` are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from repro.workloads.graph import ServingTrace

#: ``--inject`` spec grammar: comma-separated ``kind:rate:magnitude`` tokens.
_SPEC_HELP = (
    "expected comma-separated kind:rate:magnitude tokens, e.g. "
    "'spike:0.3:4.0,stall:0.2:5000,burst:0.5:30000'"
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of the faults to inject.

    Rates are per-candidate probabilities in ``[0, 1]``: ``spike_rate`` and
    ``stall_rate`` are drawn per scheduler iteration, ``burst_rate`` per
    request.  Magnitudes: ``spike_multiplier`` scales kernel durations
    (>= 1), ``stall_cycles`` is added to the iteration span, and
    ``burst_pull_cycles`` is subtracted from the arrival cycle (floored at
    zero).
    """

    seed: int = 0
    spike_rate: float = 0.0
    spike_multiplier: float = 1.0
    stall_rate: float = 0.0
    stall_cycles: int = 0
    burst_rate: float = 0.0
    burst_pull_cycles: int = 0

    def __post_init__(self) -> None:
        for label in ("spike_rate", "stall_rate", "burst_rate"):
            rate = getattr(self, label)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if self.spike_multiplier < 1.0:
            raise ValueError("spike_multiplier must be >= 1 (spikes slow kernels down)")
        if self.stall_cycles < 0:
            raise ValueError("stall_cycles must be non-negative")
        if self.burst_pull_cycles < 0:
            raise ValueError("burst_pull_cycles must be non-negative")

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return self.spike_rate > 0.0 or self.stall_rate > 0.0 or self.burst_rate > 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "spike_rate": self.spike_rate,
            "spike_multiplier": self.spike_multiplier,
            "stall_rate": self.stall_rate,
            "stall_cycles": self.stall_cycles,
            "burst_rate": self.burst_rate,
            "burst_pull_cycles": self.burst_pull_cycles,
        }

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``--inject`` spec string into a plan.

        Each token is ``kind:rate:magnitude`` where kind is ``spike``
        (magnitude = duration multiplier), ``stall`` (magnitude = cycles) or
        ``burst`` (magnitude = arrival pull in cycles).
        """
        fields: Dict[str, object] = {"seed": seed}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) != 3:
                raise ValueError(f"malformed fault token {token!r}; {_SPEC_HELP}")
            kind, rate_text, magnitude_text = (part.strip() for part in parts)
            try:
                rate = float(rate_text)
            except ValueError:
                raise ValueError(f"fault token {token!r}: rate {rate_text!r} is not a number") from None
            if kind == "spike":
                try:
                    multiplier = float(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: spike multiplier {magnitude_text!r} is not a number"
                    ) from None
                fields["spike_rate"] = rate
                fields["spike_multiplier"] = multiplier
            elif kind == "stall":
                try:
                    cycles = int(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: stall cycles {magnitude_text!r} is not an integer"
                    ) from None
                fields["stall_rate"] = rate
                fields["stall_cycles"] = cycles
            elif kind == "burst":
                try:
                    pull = int(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: burst pull {magnitude_text!r} is not an integer"
                    ) from None
                fields["burst_rate"] = rate
                fields["burst_pull_cycles"] = pull
            else:
                raise ValueError(f"unknown fault kind {kind!r} in {token!r}; {_SPEC_HELP}")
        if len(fields) == 1:
            raise ValueError(f"empty fault spec {spec!r}; {_SPEC_HELP}")
        return FaultPlan(**fields)  # type: ignore[arg-type]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against iteration indices and requests.

    Every decision draws from a fresh :class:`random.Random` keyed by
    ``(seed, fault kind, candidate id)``, so decisions are independent of
    each other and of how many other draws happened -- injecting one extra
    fault kind never reshuffles the outcomes of the others, and memo hits
    (which skip simulation work) cannot shift which iterations get faulted.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def _draw(self, kind: str, key: object) -> float:
        return random.Random(f"{self.plan.seed}:{kind}:{key}").random()

    def iteration_spike(self, index: int) -> Optional[float]:
        """Duration multiplier for iteration ``index``, or None for no spike."""
        if self.plan.spike_rate <= 0.0 or self.plan.spike_multiplier <= 1.0:
            return None
        if self._draw("spike", index) < self.plan.spike_rate:
            return self.plan.spike_multiplier
        return None

    def iteration_stall(self, index: int) -> int:
        """Dead cycles appended to iteration ``index``'s span (0 = no stall)."""
        if self.plan.stall_rate <= 0.0 or self.plan.stall_cycles <= 0:
            return 0
        if self._draw("stall", index) < self.plan.stall_rate:
            return self.plan.stall_cycles
        return 0

    def perturb_trace(self, trace: "ServingTrace") -> "ServingTrace":
        """Apply arrival bursts, returning a new (still valid) trace.

        Selected requests arrive ``burst_pull_cycles`` earlier (floored at
        zero); the result is re-sorted so the trace stays monotonic.
        """
        if self.plan.burst_rate <= 0.0 or self.plan.burst_pull_cycles <= 0:
            return trace
        perturbed = []
        for request in trace.requests:
            if self._draw("burst", request.request_id) < self.plan.burst_rate:
                arrival = max(0, request.arrival_cycle - self.plan.burst_pull_cycles)
                request = replace(request, arrival_cycle=arrival)
            perturbed.append(request)
        perturbed.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        return replace(trace, requests=tuple(perturbed))
