"""Deterministic fault injection for the serving stack.

Chaos testing for a simulator: perturb the serving pipeline in controlled,
*seeded* ways and assert the scheduler degrades gracefully instead of
deadlocking, losing requests, or corrupting its caches.  Three fault kinds:

* **Kernel latency spikes** -- a multiplier on the simulated duration of
  every kernel in a selected iteration.  Spiked iterations bypass the
  timing cache and the iteration memo in *both* directions (no read, no
  write), so poisoned timings never persist into clean runs.
* **Iteration stalls** -- a fixed number of dead cycles appended to a
  selected iteration's span, modeling a host hiccup or a preemptive
  background job on the accelerator.
* **Arrival bursts** -- selected requests have their arrival pulled earlier
  by a fixed offset, compressing the trace into overload bursts that stress
  admission control.

All randomness flows through :class:`random.Random` seeded with
``f"{seed}:{key}"`` strings -- SHA-512 based, stable across processes and
platforms, and independent of draw order, so a fault plan is a pure
function of ``(seed, plan, trace)`` and two runs with the same
``--fault-seed`` are byte-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.workloads.graph import ServingTrace

#: ``--inject`` spec grammar: comma-separated ``kind:rate:magnitude`` tokens.
_SPEC_HELP = (
    "expected comma-separated kind:rate:magnitude tokens, e.g. "
    "'spike:0.3:4.0,stall:0.2:5000,burst:0.5:30000'"
)

#: ``fleet --inject`` spec grammar: seeded fleet-wide rates plus targeted
#: per-replica events.
_FLEET_SPEC_HELP = (
    "expected comma-separated tokens: 'crash:RATE:DOWN_CYCLES', "
    "'slow:RATE:SCALE:CYCLES', 'partition:RATE:CYCLES' (seeded per-replica "
    "draws), or targeted 'crash@R:AT:DOWN_CYCLES', 'slow@R:AT:SCALE:CYCLES', "
    "'partition@R:AT:CYCLES', e.g. 'crash:0.5:400000,slow@1:200000:3.0:150000'"
)


def _finite_rate(label: str, rate: float) -> None:
    if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
        raise ValueError(f"{label} must be a finite probability in [0, 1], got {rate}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of the faults to inject.

    Rates are per-candidate probabilities in ``[0, 1]``: ``spike_rate`` and
    ``stall_rate`` are drawn per scheduler iteration, ``burst_rate`` per
    request.  Magnitudes: ``spike_multiplier`` scales kernel durations
    (>= 1), ``stall_cycles`` is added to the iteration span, and
    ``burst_pull_cycles`` is subtracted from the arrival cycle (floored at
    zero).
    """

    seed: int = 0
    spike_rate: float = 0.0
    spike_multiplier: float = 1.0
    stall_rate: float = 0.0
    stall_cycles: int = 0
    burst_rate: float = 0.0
    burst_pull_cycles: int = 0

    def __post_init__(self) -> None:
        for label in ("spike_rate", "stall_rate", "burst_rate"):
            _finite_rate(label, getattr(self, label))
        # Finite, not merely >= 1: 'spike:0.5:inf' passes a bare magnitude
        # check and only explodes deep in the scheduler when a kernel
        # duration overflows -- plan construction is where it must die.
        if not math.isfinite(self.spike_multiplier) or self.spike_multiplier < 1.0:
            raise ValueError(
                "spike_multiplier must be a finite multiplier >= 1 "
                f"(spikes slow kernels down), got {self.spike_multiplier}"
            )
        if self.stall_cycles < 0:
            raise ValueError("stall_cycles must be non-negative")
        if self.burst_pull_cycles < 0:
            raise ValueError("burst_pull_cycles must be non-negative")

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return self.spike_rate > 0.0 or self.stall_rate > 0.0 or self.burst_rate > 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "spike_rate": self.spike_rate,
            "spike_multiplier": self.spike_multiplier,
            "stall_rate": self.stall_rate,
            "stall_cycles": self.stall_cycles,
            "burst_rate": self.burst_rate,
            "burst_pull_cycles": self.burst_pull_cycles,
        }

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``--inject`` spec string into a plan.

        Each token is ``kind:rate:magnitude`` where kind is ``spike``
        (magnitude = duration multiplier), ``stall`` (magnitude = cycles) or
        ``burst`` (magnitude = arrival pull in cycles).
        """
        fields: Dict[str, object] = {"seed": seed}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) != 3:
                raise ValueError(f"malformed fault token {token!r}; {_SPEC_HELP}")
            kind, rate_text, magnitude_text = (part.strip() for part in parts)
            try:
                rate = float(rate_text)
            except ValueError:
                raise ValueError(f"fault token {token!r}: rate {rate_text!r} is not a number") from None
            if kind == "spike":
                try:
                    multiplier = float(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: spike multiplier {magnitude_text!r} is not a number"
                    ) from None
                fields["spike_rate"] = rate
                fields["spike_multiplier"] = multiplier
            elif kind == "stall":
                try:
                    cycles = int(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: stall cycles {magnitude_text!r} is not an integer"
                    ) from None
                fields["stall_rate"] = rate
                fields["stall_cycles"] = cycles
            elif kind == "burst":
                try:
                    pull = int(magnitude_text)
                except ValueError:
                    raise ValueError(
                        f"fault token {token!r}: burst pull {magnitude_text!r} is not an integer"
                    ) from None
                fields["burst_rate"] = rate
                fields["burst_pull_cycles"] = pull
            else:
                raise ValueError(f"unknown fault kind {kind!r} in {token!r}; {_SPEC_HELP}")
        if len(fields) == 1:
            raise ValueError(f"empty fault spec {spec!r}; {_SPEC_HELP}")
        return FaultPlan(**fields)  # type: ignore[arg-type]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against iteration indices and requests.

    Every decision draws from a fresh :class:`random.Random` keyed by
    ``(seed, fault kind, candidate id)``, so decisions are independent of
    each other and of how many other draws happened -- injecting one extra
    fault kind never reshuffles the outcomes of the others, and memo hits
    (which skip simulation work) cannot shift which iterations get faulted.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def _draw(self, kind: str, key: object) -> float:
        return random.Random(f"{self.plan.seed}:{kind}:{key}").random()

    def iteration_spike(self, index: int) -> Optional[float]:
        """Duration multiplier for iteration ``index``, or None for no spike."""
        if self.plan.spike_rate <= 0.0 or self.plan.spike_multiplier <= 1.0:
            return None
        if self._draw("spike", index) < self.plan.spike_rate:
            return self.plan.spike_multiplier
        return None

    def iteration_stall(self, index: int) -> int:
        """Dead cycles appended to iteration ``index``'s span (0 = no stall)."""
        if self.plan.stall_rate <= 0.0 or self.plan.stall_cycles <= 0:
            return 0
        if self._draw("stall", index) < self.plan.stall_rate:
            return self.plan.stall_cycles
        return 0

    def perturb_trace(self, trace: "ServingTrace") -> "ServingTrace":
        """Apply arrival bursts, returning a new (still valid) trace.

        Selected requests arrive ``burst_pull_cycles`` earlier (floored at
        zero); the result is re-sorted so the trace stays monotonic.
        """
        if self.plan.burst_rate <= 0.0 or self.plan.burst_pull_cycles <= 0:
            return trace
        perturbed = []
        for request in trace.requests:
            if self._draw("burst", request.request_id) < self.plan.burst_rate:
                arrival = max(0, request.arrival_cycle - self.plan.burst_pull_cycles)
                request = replace(request, arrival_cycle=arrival)
            perturbed.append(request)
        perturbed.sort(key=lambda r: (r.arrival_cycle, r.request_id))
        return replace(trace, requests=tuple(perturbed))


_FLEET_EVENT_KINDS = ("crash", "slow", "partition")


@dataclass(frozen=True)
class ReplicaFaultEvent:
    """One concrete fault window on one fleet replica.

    ``crash`` takes the replica down for ``duration_cycles`` (in-flight work
    is orphaned, KV residency is lost); ``slow`` stretches every iteration in
    the window by ``duration_scale`` through the no-cache-poisoning path;
    ``partition`` severs the router link (dispatches and health checks fail)
    while work already on the replica keeps running.
    """

    replica: int
    kind: str
    at_cycle: int
    duration_cycles: int
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _FLEET_EVENT_KINDS:
            raise ValueError(
                f"unknown fleet fault kind {self.kind!r}; one of {_FLEET_EVENT_KINDS}"
            )
        if self.replica < 0:
            raise ValueError(f"fault event replica index must be >= 0, got {self.replica}")
        if self.at_cycle < 0:
            raise ValueError(
                f"fault event at_cycle must be >= 0, got {self.at_cycle} "
                f"({self.kind} on replica {self.replica})"
            )
        if self.duration_cycles <= 0:
            raise ValueError(
                f"fault event duration_cycles must be > 0, got {self.duration_cycles} "
                f"({self.kind} on replica {self.replica})"
            )
        if not math.isfinite(self.duration_scale) or self.duration_scale < 1.0:
            raise ValueError(
                "fault event duration_scale must be a finite value >= 1 "
                f"(slowdowns stretch durations), got {self.duration_scale}"
            )
        if self.kind != "slow" and self.duration_scale != 1.0:
            raise ValueError(f"duration_scale applies to 'slow' events, not {self.kind!r}")

    @property
    def end_cycle(self) -> int:
        return self.at_cycle + self.duration_cycles

    def to_dict(self) -> Dict[str, object]:
        return {
            "replica": self.replica,
            "kind": self.kind,
            "at_cycle": self.at_cycle,
            "duration_cycles": self.duration_cycles,
            "duration_scale": self.duration_scale,
        }


@dataclass(frozen=True)
class FleetFaultPlan:
    """Seeded fleet-scope chaos: replica crash/recover, slowdown, partition.

    Rates are per-replica probabilities drawn once per (replica, kind) with
    the same ``random.Random(f"{seed}:{kind}:{key}")`` keying as
    :class:`FaultPlan`, so the materialized event set is a pure function of
    ``(seed, plan, fleet size, horizon)``.  ``events`` carries explicit
    targeted windows on top of (or instead of) the seeded draws -- the
    deterministic handle chaos tests steer with.
    """

    seed: int = 0
    crash_rate: float = 0.0
    crash_down_cycles: int = 0
    slow_rate: float = 0.0
    slow_scale: float = 1.0
    slow_cycles: int = 0
    partition_rate: float = 0.0
    partition_cycles: int = 0
    events: Tuple[ReplicaFaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for label in ("crash_rate", "slow_rate", "partition_rate"):
            _finite_rate(label, getattr(self, label))
        for rate_label, cycles_label in (
            ("crash_rate", "crash_down_cycles"),
            ("slow_rate", "slow_cycles"),
            ("partition_rate", "partition_cycles"),
        ):
            cycles = getattr(self, cycles_label)
            if cycles < 0:
                raise ValueError(f"{cycles_label} must be non-negative, got {cycles}")
            if getattr(self, rate_label) > 0.0 and cycles <= 0:
                raise ValueError(
                    f"{cycles_label} must be > 0 when {rate_label} > 0, got {cycles}"
                )
        if not math.isfinite(self.slow_scale) or self.slow_scale < 1.0:
            raise ValueError(
                "slow_scale (duration_scale) must be a finite value >= 1 "
                f"(slowdowns stretch durations), got {self.slow_scale}"
            )
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fleet fault."""
        return (
            self.crash_rate > 0.0
            or self.slow_rate > 0.0
            or self.partition_rate > 0.0
            or bool(self.events)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "crash_down_cycles": self.crash_down_cycles,
            "slow_rate": self.slow_rate,
            "slow_scale": self.slow_scale,
            "slow_cycles": self.slow_cycles,
            "partition_rate": self.partition_rate,
            "partition_cycles": self.partition_cycles,
            "events": [event.to_dict() for event in self.events],
        }

    def materialize(self, replicas: int, horizon_cycles: int) -> Tuple[ReplicaFaultEvent, ...]:
        """Resolve the plan into concrete per-replica fault windows.

        Seeded draws decide, per (replica, kind), whether a window occurs
        and where in ``[0, horizon_cycles)`` it starts; explicit ``events``
        ride along after a range check against the actual fleet size.
        Returned sorted by (start, replica, kind) -- the deterministic order
        the fleet event loop consumes.
        """
        if replicas <= 0:
            raise ValueError(f"fleet must have at least one replica, got {replicas}")
        horizon = max(1, horizon_cycles)
        resolved: List[ReplicaFaultEvent] = []
        for event in self.events:
            if event.replica >= replicas:
                raise ValueError(
                    f"fault event targets replica {event.replica} but the fleet "
                    f"has {replicas} replicas (indices 0..{replicas - 1})"
                )
            resolved.append(event)
        seeded = (
            ("crash", self.crash_rate, self.crash_down_cycles, 1.0),
            ("slow", self.slow_rate, self.slow_cycles, self.slow_scale),
            ("partition", self.partition_rate, self.partition_cycles, 1.0),
        )
        for replica in range(replicas):
            for kind, rate, cycles, scale in seeded:
                if rate <= 0.0 or cycles <= 0:
                    continue
                if random.Random(f"{self.seed}:{kind}:{replica}").random() >= rate:
                    continue
                at = int(random.Random(f"{self.seed}:{kind}_at:{replica}").random() * horizon)
                resolved.append(
                    ReplicaFaultEvent(
                        replica=replica,
                        kind=kind,
                        at_cycle=at,
                        duration_cycles=cycles,
                        duration_scale=scale,
                    )
                )
        resolved.sort(key=lambda e: (e.at_cycle, e.replica, _FLEET_EVENT_KINDS.index(e.kind)))
        return tuple(resolved)

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FleetFaultPlan":
        """Parse a ``fleet --inject`` spec string into a plan.

        Fleet-wide tokens are ``crash:RATE:DOWN_CYCLES``,
        ``slow:RATE:SCALE:CYCLES`` and ``partition:RATE:CYCLES`` (seeded
        per-replica draws).  Targeted tokens pin a window on one replica:
        ``crash@R:AT:DOWN_CYCLES``, ``slow@R:AT:SCALE:CYCLES``,
        ``partition@R:AT:CYCLES``.
        """
        fields: Dict[str, object] = {"seed": seed}
        events: List[ReplicaFaultEvent] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            parts = [part.strip() for part in token.split(":")]
            head = parts[0]
            if "@" in head:
                kind, replica_text = head.split("@", 1)
                replica = _int_field(token, "replica index", replica_text)
                if kind == "slow":
                    if len(parts) != 4:
                        raise ValueError(
                            f"malformed fault token {token!r}; {_FLEET_SPEC_HELP}"
                        )
                    events.append(
                        ReplicaFaultEvent(
                            replica=replica,
                            kind="slow",
                            at_cycle=_int_field(token, "at_cycle", parts[1]),
                            duration_scale=_float_field(token, "scale", parts[2]),
                            duration_cycles=_int_field(token, "cycles", parts[3]),
                        )
                    )
                elif kind in ("crash", "partition"):
                    if len(parts) != 3:
                        raise ValueError(
                            f"malformed fault token {token!r}; {_FLEET_SPEC_HELP}"
                        )
                    events.append(
                        ReplicaFaultEvent(
                            replica=replica,
                            kind=kind,
                            at_cycle=_int_field(token, "at_cycle", parts[1]),
                            duration_cycles=_int_field(token, "cycles", parts[2]),
                        )
                    )
                else:
                    raise ValueError(
                        f"unknown fleet fault kind {kind!r} in {token!r}; {_FLEET_SPEC_HELP}"
                    )
            elif head == "crash":
                if len(parts) != 3:
                    raise ValueError(f"malformed fault token {token!r}; {_FLEET_SPEC_HELP}")
                fields["crash_rate"] = _float_field(token, "rate", parts[1])
                fields["crash_down_cycles"] = _int_field(token, "down cycles", parts[2])
            elif head == "slow":
                if len(parts) != 4:
                    raise ValueError(f"malformed fault token {token!r}; {_FLEET_SPEC_HELP}")
                fields["slow_rate"] = _float_field(token, "rate", parts[1])
                fields["slow_scale"] = _float_field(token, "scale", parts[2])
                fields["slow_cycles"] = _int_field(token, "cycles", parts[3])
            elif head == "partition":
                if len(parts) != 3:
                    raise ValueError(f"malformed fault token {token!r}; {_FLEET_SPEC_HELP}")
                fields["partition_rate"] = _float_field(token, "rate", parts[1])
                fields["partition_cycles"] = _int_field(token, "cycles", parts[2])
            else:
                raise ValueError(
                    f"unknown fleet fault kind {head!r} in {token!r}; {_FLEET_SPEC_HELP}"
                )
        if len(fields) == 1 and not events:
            raise ValueError(f"empty fleet fault spec {spec!r}; {_FLEET_SPEC_HELP}")
        fields["events"] = tuple(events)
        return FleetFaultPlan(**fields)  # type: ignore[arg-type]


def _float_field(token: str, label: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"fault token {token!r}: {label} {text!r} is not a number") from None


def _int_field(token: str, label: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"fault token {token!r}: {label} {text!r} is not an integer") from None
