"""Active power and energy computation.

The paper reports *active* power: nominal SoC power minus idle power, so only
switching activity matters.  Our event-energy model produces exactly that --
it only charges events that occur -- so active power is total event energy
divided by runtime, and active energy is the event energy itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.soc import SoCConfig
from repro.energy.model import EnergyTable
from repro.sim.stats import Counters


@dataclass
class PowerReport:
    """Active power/energy of one kernel run on one design."""

    design_name: str
    cycles: int
    clock_mhz: float
    energy_by_component_pj: Dict[str, float]

    @property
    def runtime_seconds(self) -> float:
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_by_component_pj.values())

    @property
    def total_energy_uj(self) -> float:
        return self.total_energy_pj / 1e6

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj / 1e9

    @property
    def active_power_mw(self) -> float:
        if self.cycles == 0:
            return 0.0
        # pJ / s = 1e-12 W; report mW.
        return self.total_energy_pj / self.runtime_seconds * 1e-12 * 1e3

    def power_by_component_mw(self) -> Dict[str, float]:
        if self.cycles == 0:
            return {key: 0.0 for key in self.energy_by_component_pj}
        scale = 1e-12 * 1e3 / self.runtime_seconds
        return {key: value * scale for key, value in self.energy_by_component_pj.items()}

    def energy_by_component_uj(self) -> Dict[str, float]:
        return {key: value / 1e6 for key, value in self.energy_by_component_pj.items()}

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready encoding of the power/energy report."""
        return {
            "design": self.design_name,
            "cycles": self.cycles,
            "clock_mhz": self.clock_mhz,
            "active_power_mw": self.active_power_mw,
            "active_energy_uj": self.total_energy_uj,
            "energy_by_component_uj": self.energy_by_component_uj(),
        }


def active_energy_uj(counters: Counters, table: EnergyTable) -> float:
    """Total active energy in microjoules for a counted event stream."""
    return table.energy_picojoules(counters) / 1e6


def active_power_mw(
    counters: Counters,
    table: EnergyTable,
    cycles: int,
    soc: SoCConfig,
) -> float:
    """Active power in milliwatts for ``cycles`` of execution at the SoC clock."""
    if cycles <= 0:
        raise ValueError("cycles must be positive to compute power")
    seconds = cycles / (soc.clock_mhz * 1e6)
    return table.energy_picojoules(counters) * 1e-12 / seconds * 1e3


def make_power_report(
    design_name: str,
    counters: Counters,
    table: EnergyTable,
    cycles: int,
    soc: SoCConfig,
) -> PowerReport:
    """Bundle the component-wise energy and runtime into a :class:`PowerReport`."""
    by_component = table.energy_by_component(counters)
    return PowerReport(
        design_name=design_name,
        cycles=cycles,
        clock_mhz=soc.clock_mhz,
        energy_by_component_pj=by_component,
    )
