"""Component-wise energy/power breakdowns matching the paper's figures.

Three views are provided:

* :func:`soc_breakdown` -- Figure 9 grouping (L2, L1, shared memory, Vortex
  core, accumulator memory, matrix unit, DMA & other).
* :func:`core_breakdown` -- Figure 10 grouping (issue, ALU, FPU, LSU,
  writeback, other) plus the accumulator and matrix unit for comparison.
* :func:`matrix_unit_breakdown` -- Figure 11 grouping (PEs, operand buffer,
  result buffer, SMEM interface, accumulator memory, control).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.energy.model import EnergyTable
from repro.sim.stats import Counters


@dataclass
class EnergyBreakdown:
    """A labelled energy decomposition in picojoules."""

    label: str
    parts_pj: Dict[str, float]

    @property
    def total_pj(self) -> float:
        return sum(self.parts_pj.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total_pj
        if total == 0:
            return {key: 0.0 for key in self.parts_pj}
        return {key: value / total for key, value in self.parts_pj.items()}

    def parts_uj(self) -> Dict[str, float]:
        return {key: value / 1e6 for key, value in self.parts_pj.items()}

    def dominant_component(self) -> str:
        if not self.parts_pj:
            return ""
        return max(self.parts_pj, key=lambda key: self.parts_pj[key])


#: Figure 9 component order.
SOC_GROUPS = {
    "l2": "L2 Cache",
    "l1": "L1 Cache",
    "shared_memory": "Shared Mem",
    "core": "Vortex Core",
    "accumulator": "Accum Mem",
    "matrix_unit": "Matrix Unit",
    "dma_other": "DMA & Other",
}

#: Figure 10 component order.
CORE_GROUPS = {
    "core.issue": "Core: Issue",
    "core.alu": "Core: ALU",
    "core.fpu": "Core: FPU",
    "core.lsu": "Core: LSU",
    "core.writeback": "Core: Writeback",
    "core.other": "Core: Other",
}

#: Figure 11 component order.
MATRIX_GROUPS = {
    "matrix_unit.pe": "PEs",
    "matrix_unit.operand_buffer": "Operand Buffer",
    "matrix_unit.result_buffer": "Result Buffer",
    "matrix_unit.smem_interface": "SMEM Interface",
    "matrix_unit.control": "Control",
}


def _component_energy(counters: Counters, table: EnergyTable) -> Dict[str, float]:
    return table.energy_by_component(counters)


def soc_breakdown(label: str, counters: Counters, table: EnergyTable) -> EnergyBreakdown:
    """SoC-level breakdown (Figure 9): core sub-groups fold into "Vortex Core"."""
    energy = _component_energy(counters, table)
    parts: Dict[str, float] = {name: 0.0 for name in SOC_GROUPS.values()}
    for component, value in energy.items():
        if component.startswith("core."):
            parts[SOC_GROUPS["core"]] += value
        elif component.startswith("matrix_unit."):
            parts[SOC_GROUPS["matrix_unit"]] += value
        elif component in SOC_GROUPS:
            parts[SOC_GROUPS[component]] += value
        elif component == "dram":
            continue  # off-chip
        else:
            parts[SOC_GROUPS["dma_other"]] += value
    return EnergyBreakdown(label=label, parts_pj=parts)


def core_breakdown(label: str, counters: Counters, table: EnergyTable) -> EnergyBreakdown:
    """Core-level breakdown (Figure 10), with accumulator/matrix unit appended."""
    energy = _component_energy(counters, table)
    parts: Dict[str, float] = {name: 0.0 for name in CORE_GROUPS.values()}
    parts["Accum Mem"] = 0.0
    parts["Matrix Unit"] = 0.0
    for component, value in energy.items():
        if component in CORE_GROUPS:
            parts[CORE_GROUPS[component]] += value
        elif component == "accumulator":
            parts["Accum Mem"] += value
        elif component.startswith("matrix_unit."):
            parts["Matrix Unit"] += value
    return EnergyBreakdown(label=label, parts_pj=parts)


def matrix_unit_breakdown(label: str, counters: Counters, table: EnergyTable) -> EnergyBreakdown:
    """Matrix-unit internal breakdown (Figure 11)."""
    energy = _component_energy(counters, table)
    parts: Dict[str, float] = {name: 0.0 for name in MATRIX_GROUPS.values()}
    parts["Accum Mem"] = 0.0
    for component, value in energy.items():
        if component in MATRIX_GROUPS:
            parts[MATRIX_GROUPS[component]] += value
        elif component == "accumulator":
            parts["Accum Mem"] += value
    return EnergyBreakdown(label=label, parts_pj=parts)
