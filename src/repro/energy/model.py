"""Per-event energy table (16 nm representative values).

Every counter the simulation produces maps to an :class:`EnergyEventSpec`:
the SoC component group it belongs to (following the paper's breakdown
figures) and an energy cost in picojoules per event.  The absolute values are
representative of a commercial 16 nm process -- they are *not* the paper's
proprietary PDK numbers -- so absolute mW/mJ differ from the paper while the
relative structure (register files and instruction processing dominating the
core-coupled designs, SRAM accesses being cheap, PEs costing similar energy
across designs) is preserved.

Counter naming convention (dotted hierarchy):

========================  =====================================================
``core.issue.*``          instruction processing + register reads
``core.alu/fpu/lsu/...``  execution units of the Vortex core
``smem.<req>.*``          shared-memory word accesses by requester
``accum.*``               Virgo's accumulator SRAM
``matrix_unit.*``         PEs, operand/result buffers, SMEM interface, control
``l1./l2./dram.``         cache and memory traffic
``dma.*``                 cluster DMA engine
``mmio./sync.``           command interface and synchronizer
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.config.soc import IntegrationStyle
from repro.sim.stats import Counters


@dataclass(frozen=True)
class EnergyEventSpec:
    """Energy cost and component attribution of one counter key."""

    component: str
    picojoules: float


#: Component groups used by the SoC-level breakdown (Figure 9).
SOC_COMPONENTS = (
    "l2",
    "l1",
    "shared_memory",
    "core",
    "accumulator",
    "matrix_unit",
    "dma_other",
)

#: Sub-groups of the Vortex core breakdown (Figure 10).
CORE_COMPONENTS = (
    "core.issue",
    "core.alu",
    "core.fpu",
    "core.lsu",
    "core.writeback",
    "core.other",
)

#: Sub-groups of the matrix-unit breakdown (Figure 11).
MATRIX_UNIT_COMPONENTS = (
    "matrix_unit.pe",
    "matrix_unit.operand_buffer",
    "matrix_unit.result_buffer",
    "matrix_unit.smem_interface",
    "matrix_unit.accumulator",
    "matrix_unit.control",
)


def _base_table() -> Dict[str, EnergyEventSpec]:
    """The default event-energy assignments shared by all designs."""
    return {
        # --- Vortex SIMT core ------------------------------------------------
        "core.issue.instructions": EnergyEventSpec("core.issue", 7.0),
        "core.issue.rf_read_words": EnergyEventSpec("core.issue", 1.2),
        "core.writeback.rf_write_words": EnergyEventSpec("core.writeback", 1.5),
        "core.alu.ops": EnergyEventSpec("core.alu", 0.6),
        "core.fpu.ops": EnergyEventSpec("core.fpu", 1.6),
        "core.lsu.requests": EnergyEventSpec("core.lsu", 2.2),
        "core.lsu.bytes": EnergyEventSpec("core.lsu", 0.02),
        "core.other.ops": EnergyEventSpec("core.other", 1.0),
        # --- Shared memory ----------------------------------------------------
        "smem.core.read_words": EnergyEventSpec("shared_memory", 1.1),
        "smem.core.write_words": EnergyEventSpec("shared_memory", 1.25),
        "smem.matrix.read_words": EnergyEventSpec("shared_memory", 1.1),
        "smem.matrix.write_words": EnergyEventSpec("shared_memory", 1.25),
        "smem.dma.read_words": EnergyEventSpec("shared_memory", 1.1),
        "smem.dma.write_words": EnergyEventSpec("shared_memory", 1.25),
        "smem.core_words": EnergyEventSpec("shared_memory", 1.1),
        # --- Accumulator SRAM (Virgo) ------------------------------------------
        "accum.read_words": EnergyEventSpec("accumulator", 0.55),
        "accum.write_words": EnergyEventSpec("accumulator", 0.65),
        # --- Matrix unit internals ---------------------------------------------
        "matrix_unit.pe.macs": EnergyEventSpec("matrix_unit.pe", 0.75),
        "matrix_unit.pe.in_mesh_accumulations": EnergyEventSpec("matrix_unit.pe", 0.0),
        "matrix_unit.operand_buffer_words": EnergyEventSpec("matrix_unit.operand_buffer", 0.9),
        "matrix_unit.result_buffer_words": EnergyEventSpec("matrix_unit.result_buffer", 0.9),
        "matrix_unit.smem_interface_words": EnergyEventSpec("matrix_unit.smem_interface", 0.35),
        "matrix_unit.control_events": EnergyEventSpec("matrix_unit.control", 1.5),
        # --- Caches and DRAM ----------------------------------------------------
        "l1.requests": EnergyEventSpec("l1", 3.0),
        "l1.bytes": EnergyEventSpec("l1", 0.12),
        "l1.hits": EnergyEventSpec("l1", 3.0),
        "l1.misses": EnergyEventSpec("l1", 6.0),
        "l2.bytes": EnergyEventSpec("l2", 0.22),
        "l2.accesses": EnergyEventSpec("l2", 8.0),
        "dram.bytes": EnergyEventSpec("dram", 0.0),   # off-chip: excluded from SoC power
        "dram.transfers": EnergyEventSpec("dram", 0.0),
        # --- DMA, MMIO, synchronizer -------------------------------------------
        "dma.bytes": EnergyEventSpec("dma_other", 0.12),
        "dma.descriptors": EnergyEventSpec("dma_other", 40.0),
        "mmio.stores": EnergyEventSpec("dma_other", 2.0),
        "mmio.loads": EnergyEventSpec("dma_other", 2.0),
        "mmio.commands": EnergyEventSpec("dma_other", 4.0),
        "mmio.poll_cycles": EnergyEventSpec("dma_other", 0.0),
        "sync.barrier_requests": EnergyEventSpec("dma_other", 3.0),
        "sync.barriers_released": EnergyEventSpec("dma_other", 3.0),
        "sync.stall_cycles": EnergyEventSpec("dma_other", 0.0),
        # Bookkeeping counters that must not be double charged.
        "smem.total_words": EnergyEventSpec("shared_memory", 0.0),
        "l1.accesses": EnergyEventSpec("l1", 0.0),
    }


class EnergyTable:
    """Maps simulation counters to energy, with per-design PE adjustments."""

    def __init__(self, overrides: Mapping[str, EnergyEventSpec] | None = None) -> None:
        self._table = _base_table()
        if overrides:
            self._table.update(overrides)

    @classmethod
    def for_design(cls, style: IntegrationStyle) -> "EnergyTable":
        """Energy table adjusted for the matrix unit flavour of ``style``.

        The systolic array uses fused multiply-add PEs which are slightly
        more energy efficient than the tensor core's separate multiplier and
        adder trees (Section 6.1.2, Figure 11); its operand staging happens in
        the mesh's edge registers rather than per-core operand buffers.
        """
        if style is IntegrationStyle.DISAGGREGATED:
            overrides = {
                "matrix_unit.pe.macs": EnergyEventSpec("matrix_unit.pe", 0.68),
            }
            return cls(overrides)
        return cls()

    def spec_for(self, counter: str) -> EnergyEventSpec | None:
        return self._table.get(counter)

    def keys(self) -> Iterable[str]:
        return self._table.keys()

    def energy_picojoules(self, counters: Counters) -> float:
        """Total active energy of all counted events, in picojoules."""
        return sum(
            self._table[key].picojoules * value
            for key, value in counters.items()
            if key in self._table
        )

    def energy_by_component(self, counters: Counters) -> Dict[str, float]:
        """Energy per component group in picojoules."""
        totals: Dict[str, float] = {}
        for key, value in counters.items():
            spec = self._table.get(key)
            if spec is None:
                continue
            totals[spec.component] = totals.get(spec.component, 0.0) + spec.picojoules * value
        return totals

    def unknown_counters(self, counters: Counters) -> Tuple[str, ...]:
        """Counter keys with no energy assignment (should be empty in tests)."""
        return tuple(sorted(key for key in counters if key not in self._table))
