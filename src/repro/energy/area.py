"""SoC area model (Figure 7).

Area is estimated from per-component densities representative of a 16 nm
process: SRAM macros (caches, shared memory, accumulator) are charged per
kilobyte, the flop-array L1 the paper calls out is charged a flop-array
density, logic blocks (cores, matrix units, DMA, interconnect) are charged
per functional unit.  As with energy, absolute um^2 will not match the
paper's PDK results; the comparison of interest is the relative ranking:
Virgo's SoC area is within a few percent of both the Volta-style and
Hopper-style designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.soc import DesignConfig, IntegrationStyle

#: Area densities in um^2.
SRAM_UM2_PER_KB = 6_000.0
FLOP_ARRAY_UM2_PER_KB = 30_000.0  # the L1 is synthesized as flop arrays (Section 5.3)
UM2_PER_SIMT_LANE = 36_000.0
UM2_PER_WARP_SLOT = 6_000.0
UM2_PER_FP16_MAC = 1_400.0
UM2_PER_OPERAND_BUFFER_KB = 8_000.0
UM2_PER_DMA = 60_000.0
UM2_PER_SMEM_INTERCONNECT_PORT = 9_000.0
UM2_MMIO_AND_SYNC = 25_000.0


@dataclass
class AreaModel:
    """Computes the component-wise area of one design."""

    design: DesignConfig

    def breakdown_um2(self) -> Dict[str, float]:
        """Area per Figure 7 component group, in um^2."""
        soc = self.design.soc
        cluster = soc.cluster
        core = cluster.core

        l2_area = SRAM_UM2_PER_KB * soc.l2.size_bytes / 1024.0
        l1_area = cluster.cores * FLOP_ARRAY_UM2_PER_KB * (
            (core.l1i.size_bytes + core.l1d.size_bytes) / 1024.0
        )
        smem_area = SRAM_UM2_PER_KB * cluster.shared_memory.size_bytes / 1024.0
        smem_area += UM2_PER_SMEM_INTERCONNECT_PORT * (
            cluster.shared_memory.banks * cluster.shared_memory.subbanks
        )

        core_area = cluster.cores * (
            UM2_PER_SIMT_LANE * core.lanes
            + UM2_PER_WARP_SLOT * core.warps
            + SRAM_UM2_PER_KB * core.register_file.total_bytes / 1024.0
        )

        unit = cluster.matrix_unit
        matrix_area = cluster.matrix_units * (
            UM2_PER_FP16_MAC * unit.macs_per_cycle
            + UM2_PER_OPERAND_BUFFER_KB * unit.operand_buffer_bytes / 1024.0
        )
        accum_area = cluster.matrix_units * SRAM_UM2_PER_KB * unit.accumulator_bytes / 1024.0

        dma_area = UM2_PER_DMA if cluster.dma.present else 0.0
        other_area = UM2_MMIO_AND_SYNC if self.design.style is IntegrationStyle.DISAGGREGATED else 0.0

        return {
            "L2 Cache": l2_area,
            "L1 Cache": l1_area,
            "Shared Mem": smem_area,
            "Vortex Core": core_area,
            "Accum Mem": accum_area,
            "Matrix Unit": matrix_area,
            "DMA & Other": dma_area + other_area,
        }

    def total_um2(self) -> float:
        return sum(self.breakdown_um2().values())

    def total_mm2(self) -> float:
        return self.total_um2() / 1e6


def soc_area_breakdown(design: DesignConfig) -> Dict[str, float]:
    """Convenience wrapper returning the Figure 7 breakdown for ``design``."""
    return AreaModel(design).breakdown_um2()
