"""Event-based energy, active power, and area models (16 nm representative)."""

from repro.energy.model import EnergyTable, EnergyEventSpec
from repro.energy.power import PowerReport, active_power_mw, active_energy_uj
from repro.energy.breakdown import (
    soc_breakdown,
    core_breakdown,
    matrix_unit_breakdown,
    EnergyBreakdown,
)
from repro.energy.area import AreaModel, soc_area_breakdown

__all__ = [
    "EnergyTable",
    "EnergyEventSpec",
    "PowerReport",
    "active_power_mw",
    "active_energy_uj",
    "soc_breakdown",
    "core_breakdown",
    "matrix_unit_breakdown",
    "EnergyBreakdown",
    "AreaModel",
    "soc_area_breakdown",
]
