"""Command-line interface: regenerate the paper's experiments from a shell.

Examples
--------
    python -m repro gemm --design virgo --size 1024
    python -m repro gemm --all-designs --size 512
    python -m repro flash
    python -m repro table --number 3
    python -m repro compare          # full paper-vs-measured report
    python -m repro hetero
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.figures import (
    figure7_area_breakdown,
    figure8_power_energy,
    figure9_soc_power_breakdown,
    figure10_core_power_breakdown,
    figure11_matrix_unit_energy,
    figure12_flash_attention,
)
from repro.analysis.report import paper_comparison
from repro.analysis.tables import (
    format_table,
    table1_scaling_trends,
    table2_hardware_configuration,
    table3_mac_utilization,
    table4_smem_footprint,
)
from repro.config.presets import DesignKind
from repro.kernels.heterogeneous import heterogeneous_summary, simulate_heterogeneous
from repro.runner import run_flash_attention, run_gemm


def _design_from_name(name: str) -> DesignKind:
    try:
        return DesignKind(name.lower())
    except ValueError as error:
        valid = ", ".join(kind.value for kind in DesignKind)
        raise SystemExit(f"unknown design {name!r}; choose one of: {valid}") from error


def _cmd_gemm(args: argparse.Namespace) -> None:
    kinds = list(DesignKind) if args.all_designs else [_design_from_name(args.design)]
    headers = ["design", "cycles", "MAC util %", "power mW", "energy uJ", "instructions"]
    rows = []
    for kind in kinds:
        run = run_gemm(kind, args.size)
        rows.append(
            [
                run.design_name,
                f"{run.total_cycles:,}",
                f"{run.mac_utilization_percent:.1f}",
                f"{run.active_power_mw:.1f}",
                f"{run.active_energy_uj:.1f}",
                f"{run.retired_instructions:,}",
            ]
        )
    print(f"GEMM {args.size}^3 (FP16)")
    print(format_table(headers, rows))


def _cmd_flash(args: argparse.Namespace) -> None:
    headers = ["design", "cycles", "MAC util %", "power mW", "energy uJ"]
    rows = []
    for kind in (DesignKind.AMPERE, DesignKind.VIRGO):
        run = run_flash_attention(kind)
        rows.append(
            [
                run.design_name,
                f"{run.total_cycles:,}",
                f"{run.mac_utilization_percent:.1f}",
                f"{run.active_power_mw:.1f}",
                f"{run.active_energy_uj:.1f}",
            ]
        )
    print("FlashAttention-3 forward (seq 1024, head dim 64, FP32)")
    print(format_table(headers, rows))


def _cmd_table(args: argparse.Namespace) -> None:
    number = args.number
    if number == 1:
        data = table1_scaling_trends()
    elif number == 2:
        data = table2_hardware_configuration()
    elif number == 3:
        data = table3_mac_utilization()
    elif number == 4:
        data = table4_smem_footprint()
    else:
        raise SystemExit("the paper has tables 1 through 4")
    print(json.dumps(data, indent=2, default=str))


def _cmd_figure(args: argparse.Namespace) -> None:
    generators = {
        7: figure7_area_breakdown,
        8: figure8_power_energy,
        9: figure9_soc_power_breakdown,
        10: figure10_core_power_breakdown,
        11: figure11_matrix_unit_energy,
        12: figure12_flash_attention,
    }
    if args.number not in generators:
        raise SystemExit("evaluation figures are 7 through 12")
    print(json.dumps(generators[args.number](), indent=2, default=str))


def _cmd_compare(_: argparse.Namespace) -> None:
    print(json.dumps(paper_comparison(), indent=2))


def _cmd_hetero(_: argparse.Namespace) -> None:
    summary = heterogeneous_summary(simulate_heterogeneous())
    print(json.dumps(summary, indent=2))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Virgo (ASPLOS 2025) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gemm = sub.add_parser("gemm", help="simulate a square GEMM")
    gemm.add_argument("--design", default="virgo", help="volta | ampere | hopper | virgo")
    gemm.add_argument("--size", type=int, default=512)
    gemm.add_argument("--all-designs", action="store_true")
    gemm.set_defaults(func=_cmd_gemm)

    flash = sub.add_parser("flash", help="simulate FlashAttention-3 (Virgo vs Ampere-style)")
    flash.set_defaults(func=_cmd_flash)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("--number", type=int, required=True)
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure's data series")
    figure.add_argument("--number", type=int, required=True)
    figure.set_defaults(func=_cmd_figure)

    compare = sub.add_parser("compare", help="full paper-vs-measured comparison (JSON)")
    compare.set_defaults(func=_cmd_compare)

    hetero = sub.add_parser("hetero", help="Section 6.3 heterogeneous dual-unit experiment")
    hetero.set_defaults(func=_cmd_hetero)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
