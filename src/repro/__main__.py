"""Command-line interface: regenerate the paper's experiments from a shell.

Examples
--------
    python -m repro gemm --design virgo --size 1024
    python -m repro gemm --all-designs --size 512
    python -m repro flash
    python -m repro table --number 3
    python -m repro compare          # full paper-vs-measured report
    python -m repro hetero
    python -m repro model --name gpt-prefill --design virgo
    python -m repro model --name moe-decode --design virgo --hetero --moe-breakdown
    python -m repro model --batch --names gpt-prefill,gpt-decode --designs virgo,ampere
    python -m repro serve --trace poisson-mixed --latency-report
    python -m repro serve --trace uniform-moe --trace-out trace.json --metrics
    python -m repro trace-report --input trace.json --validate
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack, nullcontext
from typing import Sequence

from repro.analysis.figures import (
    figure7_area_breakdown,
    figure8_power_energy,
    figure9_soc_power_breakdown,
    figure10_core_power_breakdown,
    figure11_matrix_unit_energy,
    figure12_flash_attention,
)
from repro.analysis.report import paper_comparison
from repro.analysis.tables import (
    format_table,
    table1_scaling_trends,
    table2_hardware_configuration,
    table3_mac_utilization,
    table4_smem_footprint,
)
from repro.analysis.model_breakdown import (
    LAYER_HEADERS,
    compare_models,
    format_overlap_report,
    model_breakdown_report,
    model_layer_rows,
    model_phase_summary,
)
from repro.analysis.fleet import (
    FLEET_REQUEST_HEADERS,
    fleet_perf_stats,
    fleet_report,
    fleet_request_rows,
    format_fleet_report,
)
from repro.analysis.serving import (
    REQUEST_HEADERS,
    format_latency_report,
    serving_latency_report,
    serving_perf_stats,
    serving_request_rows,
)
from repro.analysis.trace_report import (
    format_trace_summary,
    load_trace,
    trace_summary,
    validate_chrome_trace,
)
from repro.obs import PhaseProfiler, TraceRecorder, profiling, tracing
from repro.config.presets import DesignKind
from repro.kernels.heterogeneous import heterogeneous_summary, simulate_heterogeneous
from repro.perf import persistent_timing_cache, timing_cache
from repro.runner import run_flash_attention, run_gemm
from repro.workloads import (
    ROUTER_POLICIES,
    RouterConfig,
    fleet_names,
    model_names,
    resolve_fleet,
    resolve_spec,
    resolve_trace,
    run_batch,
    run_fleet,
    run_model,
    run_serving,
    sweep_jobs,
    trace_names,
)


def _maybe_persistent_cache(cache_dir):
    """Persist the timing cache under ``cache_dir`` when one was given.

    A second identical invocation then starts with every kernel timing warm
    (the snapshot loads at process start and flushes atomically on exit);
    without a cache directory the run stays process-local.
    """
    if cache_dir is None:
        return nullcontext()
    return persistent_timing_cache(cache_dir)


def _observed_run(args: argparse.Namespace, label: str, runner):
    """Run ``runner()`` under the observability contexts the flags ask for.

    Returns ``(result, recorder, profiler)``; ``recorder`` / ``profiler`` are
    ``None`` when ``--trace-out`` / ``--metrics`` were not given.  Both
    contexts wrap the whole runner so cache load/save phases are captured too.
    """
    recorder = TraceRecorder(label=label) if args.trace_out else None
    profiler = PhaseProfiler() if args.metrics else None
    with ExitStack() as stack:
        if recorder is not None:
            stack.enter_context(tracing(recorder))
        if profiler is not None:
            stack.enter_context(profiling(profiler))
        result = runner()
    return result, recorder, profiler


def _report_observability(args, result, recorder, profiler) -> None:
    """Write the trace file and print the metrics / phase-profile blocks.

    With ``--json`` the blocks go to stderr so stdout stays one parseable
    JSON document.
    """
    out = sys.stderr if args.json else sys.stdout
    if recorder is not None:
        recorder.write(args.trace_out)
        print(
            f"trace: {len(recorder.spans)} spans -> {args.trace_out} "
            "(load in ui.perfetto.dev or chrome://tracing)",
            file=out,
        )
    if profiler is not None:
        print("\nmetrics:", file=out)
        for name, value in result.metrics.snapshot(include_diagnostic=True).items():
            if isinstance(value, dict):
                value = "  ".join(f"{key}={entry:g}" for key, entry in value.items())
            print(f"  {name} = {value}", file=out)
        print("\nphase profile (wall clock):", file=out)
        print(profiler.format_totals(), file=out)


def _design_from_name(name: str) -> DesignKind:
    try:
        return DesignKind(name.lower())
    except ValueError as error:
        valid = ", ".join(kind.value for kind in DesignKind)
        raise SystemExit(f"unknown design {name!r}; choose one of: {valid}") from error


def _cmd_gemm(args: argparse.Namespace) -> None:
    kinds = list(DesignKind) if args.all_designs else [_design_from_name(args.design)]
    headers = ["design", "cycles", "MAC util %", "power mW", "energy uJ", "instructions"]
    rows = []
    for kind in kinds:
        run = run_gemm(kind, args.size)
        rows.append(
            [
                run.design_name,
                f"{run.total_cycles:,}",
                f"{run.mac_utilization_percent:.1f}",
                f"{run.active_power_mw:.1f}",
                f"{run.active_energy_uj:.1f}",
                f"{run.retired_instructions:,}",
            ]
        )
    print(f"GEMM {args.size}^3 (FP16)")
    print(format_table(headers, rows))


def _cmd_flash(args: argparse.Namespace) -> None:
    headers = ["design", "cycles", "MAC util %", "power mW", "energy uJ"]
    rows = []
    for kind in (DesignKind.AMPERE, DesignKind.VIRGO):
        run = run_flash_attention(kind)
        rows.append(
            [
                run.design_name,
                f"{run.total_cycles:,}",
                f"{run.mac_utilization_percent:.1f}",
                f"{run.active_power_mw:.1f}",
                f"{run.active_energy_uj:.1f}",
            ]
        )
    print("FlashAttention-3 forward (seq 1024, head dim 64, FP32)")
    print(format_table(headers, rows))


def _cmd_table(args: argparse.Namespace) -> None:
    number = args.number
    if number == 1:
        data = table1_scaling_trends()
    elif number == 2:
        data = table2_hardware_configuration()
    elif number == 3:
        data = table3_mac_utilization()
    elif number == 4:
        data = table4_smem_footprint()
    else:
        raise SystemExit("the paper has tables 1 through 4")
    print(json.dumps(data, indent=2, default=str))


def _cmd_figure(args: argparse.Namespace) -> None:
    generators = {
        7: figure7_area_breakdown,
        8: figure8_power_energy,
        9: figure9_soc_power_breakdown,
        10: figure10_core_power_breakdown,
        11: figure11_matrix_unit_energy,
        12: figure12_flash_attention,
    }
    if args.number not in generators:
        raise SystemExit("evaluation figures are 7 through 12")
    print(json.dumps(generators[args.number](), indent=2, default=str))


def _cmd_compare(_: argparse.Namespace) -> None:
    print(json.dumps(paper_comparison(), indent=2))


def _cmd_hetero(_: argparse.Namespace) -> None:
    summary = heterogeneous_summary(simulate_heterogeneous())
    print(json.dumps(summary, indent=2))


def _cmd_model(args: argparse.Namespace) -> None:
    if args.list:
        for name in model_names():
            spec = resolve_spec(name)
            print(
                f"{name:<18} family={spec.family:<5} phase={spec.phase:<8} "
                f"batch={spec.batch} seq={spec.seq_len} hidden={spec.hidden} "
                f"blocks={spec.blocks} heads={spec.heads}"
                + (f" kv_heads={spec.kv_heads}" if spec.kv_heads else "")
                + (
                    f" experts={spec.experts} top_k={spec.top_k}"
                    + (f" cap={spec.capacity_factor:g}" if spec.capacity_factor != 1.0 else "")
                    + (f" shared={spec.shared_experts}" if spec.shared_experts else "")
                    if spec.experts
                    else ""
                )
            )
        return

    if args.batch:
        if args.trace_out or args.metrics:
            raise SystemExit(
                "--trace-out/--metrics need a single in-process run; "
                "they are not available with --batch (worker processes)"
            )
        names = [name.strip() for name in args.names.split(",") if name.strip()]
        designs = [name.strip() for name in args.designs.split(",") if name.strip()]
        if not names or not designs:
            raise SystemExit("--batch requires --names and --designs")
        for design in designs:
            _design_from_name(design)  # fail fast on typos
        for name in names:
            try:
                resolve_spec(name)
            except KeyError as error:
                raise SystemExit(error.args[0]) from error
        try:
            jobs = sweep_jobs(names, designs, heterogeneous=args.hetero)
            report = run_batch(jobs, cache_dir=args.cache_dir, max_workers=args.workers)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            raise SystemExit(message) from error
        headers = ["job", "total cycles", "MAC util %", "energy uJ", "cached"]
        rows = [
            [
                outcome.job.label,
                f"{outcome.result['total_cycles']:,}",
                f"{outcome.result['mac_utilization_percent']:.1f}",
                f"{outcome.result['active_energy_uj']:.1f}",
                "yes" if outcome.from_cache else "no",
            ]
            for outcome in report.outcomes
        ]
        print(format_table(headers, rows))
        print(f"\n{report.computed} computed, {report.cached} from cache")
        return

    kind = _design_from_name(args.design)

    def runner():
        with _maybe_persistent_cache(args.cache_dir):
            return run_model(args.name, kind, heterogeneous=args.hetero)

    try:
        result, recorder, profiler = _observed_run(args, args.name, runner)
    except (KeyError, ValueError) as error:
        # Unknown zoo name or an unsupported design/flag combination; both
        # messages already name the valid choices.
        message = error.args[0] if error.args else str(error)
        raise SystemExit(message) from error
    if args.json:
        print(json.dumps(model_breakdown_report(result), indent=2))
        _report_observability(args, result, recorder, profiler)
        return

    spec = resolve_spec(args.name)
    print(
        f"{args.name} on {result.design_name}"
        + (" (heterogeneous dual unit)" if result.heterogeneous else "")
        + f": batch={spec.batch} seq={spec.seq_len} hidden={spec.hidden} "
        f"blocks={spec.blocks} heads={spec.heads}\n"
    )
    print(format_table(LAYER_HEADERS, model_layer_rows(result)))
    print()
    if args.moe_breakdown:
        print(format_overlap_report(result))
        print()
    for phase, summary in model_phase_summary(result).items():
        print(
            f"phase {phase}: {summary['busy_cycles']:,.0f} busy cycles, "
            f"{summary['energy_uj']:.1f} uJ "
            f"({summary['energy_share_percent']:.1f}% of energy)"
        )
    headers, rows = compare_models([result])
    print()
    print(format_table(headers, rows))
    stats = result.timing_cache
    print(
        f"\ntiming cache: {stats.get('hits', 0)} hits, {stats.get('misses', 0)} misses "
        f"({len(timing_cache())} entries in process)"
    )
    _report_observability(args, result, recorder, profiler)


def _cmd_serve(args: argparse.Namespace) -> None:
    if args.list:
        for name in trace_names():
            trace = resolve_trace(name)
            families = sorted({request.model.family for request in trace.requests})
            last = max(request.arrival_cycle for request in trace.requests)
            print(
                f"{name:<16} requests={len(trace):<3} "
                f"decode_steps={trace.total_decode_steps:<4} "
                f"families={'/'.join(families):<12} "
                f"arrivals=0..{last:,} bucket={trace.context_bucket}"
            )
        return

    kind = _design_from_name(args.design)

    def runner():
        with _maybe_persistent_cache(args.cache_dir):
            return run_serving(
                args.trace, kind, heterogeneous=args.hetero,
                iteration_memo=not args.no_iteration_memo,
                policy=args.policy, kv_budget=args.kv_budget,
                faults=args.inject, fault_seed=args.fault_seed,
                epoch_compression=args.epoch_compression,
            )

    try:
        result, recorder, profiler = _observed_run(args, args.trace, runner)
    except (KeyError, ValueError) as error:
        # Unknown trace name or an unsupported design/flag combination; both
        # messages already name the valid choices.
        message = error.args[0] if error.args else str(error)
        raise SystemExit(message) from error

    if args.json:
        report = result.to_dict()
        report["latency_report"] = serving_latency_report(result)
        # Run-local perf diagnostics ride outside to_dict(): the canonical
        # encoding (and the goldens/result caches pinning it) must stay
        # byte-stable across cache and memo states.
        report["perf"] = serving_perf_stats(result)
        print(json.dumps(report, indent=2))
        _report_observability(args, result, recorder, profiler)
        return

    print(
        f"{result.trace} on {result.design_name}"
        + (" (heterogeneous dual unit)" if result.heterogeneous else "")
        + f": {len(result.requests)} requests, {result.iteration_count} iterations, "
        f"KV bucket {result.context_bucket}\n"
    )
    headers = REQUEST_HEADERS + ["disposition"] if result.control_active else REQUEST_HEADERS
    print(format_table(headers, serving_request_rows(result)))
    print()
    if result.control_active and not args.latency_report:
        dispositions = "  ".join(
            f"{name} {count}" for name, count in result.dispositions.items()
        )
        print(
            f"policy {result.policy}: goodput {result.goodput:.3f} "
            f"({dispositions}; {result.preemption_count} preemptions)"
        )
    if args.latency_report:
        # The report's header line already carries makespan/batch/throughput.
        print(format_latency_report(result))
        print()
        print(f"energy: {result.energy_uj:.1f} uJ")
    else:
        print(
            f"makespan {result.total_cycles:,} cycles "
            f"({result.serving_cycles:,} serving), mean batch {result.mean_batch:.2f}, "
            f"{result.tokens_per_kilocycle:.2f} tokens/kcycle, "
            f"{result.energy_uj:.1f} uJ"
        )
    stats = result.timing_cache
    memo = result.iteration_memo
    print(
        f"iteration memo: {memo.get('hits', 0)} hits, {memo.get('misses', 0)} misses; "
        f"timing cache: {stats.get('hits', 0)} hits, {stats.get('misses', 0)} misses "
        f"({len(timing_cache())} entries in process)"
    )
    epochs = result.epochs
    if epochs.get("enabled"):
        executed = int(epochs.get("executed_iterations", 0))
        extrapolated = int(epochs.get("extrapolated_iterations", 0))
        print(
            f"epoch compression: {epochs.get('epochs', 0)} epochs, "
            f"{epochs.get('episode_runs', 0)} episode runs; "
            f"{extrapolated}/{executed + extrapolated} iterations extrapolated"
        )
    _report_observability(args, result, recorder, profiler)


def _cmd_fleet(args: argparse.Namespace) -> None:
    if args.list:
        print("traces:")
        for name in trace_names():
            trace = resolve_trace(name)
            print(f"  {name:<16} requests={len(trace)}")
        print("fleets:")
        for name in fleet_names():
            print(f"  {name:<16} {' + '.join(resolve_fleet(name))}")
        print("policies:")
        for name in sorted(ROUTER_POLICIES):
            print(f"  {name}")
        return

    fleet = int(args.fleet) if args.fleet.isdigit() else args.fleet
    config = RouterConfig(
        failover=not args.no_failover,
        max_retries=args.max_retries,
        seed=args.router_seed,
    )

    def runner():
        with _maybe_persistent_cache(args.cache_dir):
            return run_fleet(
                args.trace, fleet, heterogeneous=args.hetero,
                policy=args.policy, config=config,
                faults=args.inject, fault_seed=args.fault_seed,
                iteration_memo=not args.no_iteration_memo,
                epoch_extrapolation=args.epoch_compression,
            )

    try:
        result, recorder, profiler = _observed_run(args, f"fleet:{args.trace}", runner)
    except (KeyError, ValueError) as error:
        # Unknown trace/fleet/policy name or an invalid fault plan; the
        # messages already name the valid choices or the offending token.
        message = error.args[0] if error.args else str(error)
        raise SystemExit(message) from error

    if args.json:
        report = result.to_dict()
        report["latency_report"] = fleet_report(result)
        # Run-local perf diagnostics ride outside to_dict(): the canonical
        # encoding (and the result caches pinning it) must stay byte-stable
        # across cache and memo states.
        report["perf"] = fleet_perf_stats(result)
        print(json.dumps(report, indent=2))
        _report_observability(args, result, recorder, profiler)
        return

    print(
        f"{result.trace} across {len(result.replicas)} replicas "
        f"({', '.join(result.fleet)}) under {result.policy}"
        + (" (heterogeneous dual unit)" if result.heterogeneous else "")
        + f": {len(result.requests)} requests\n"
    )
    print(format_table(FLEET_REQUEST_HEADERS, fleet_request_rows(result)))
    print()
    if args.latency_report:
        print(format_fleet_report(result))
    else:
        dispositions = "  ".join(
            f"{name} {count}" for name, count in result.dispositions.items()
        )
        print(
            f"goodput {result.goodput:.3f}  availability {result.availability:.3f}  "
            f"({dispositions})\n"
            f"makespan {result.total_cycles:,} cycles; "
            f"{result.dispatch_count} dispatches "
            f"({result.failed_dispatches} failed), "
            f"{result.retry_count} retries, {result.failover_count} failovers"
        )
    _report_observability(args, result, recorder, profiler)


def _cmd_trace_report(args: argparse.Namespace) -> None:
    try:
        trace = load_trace(args.input)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot load {args.input}: {error}") from error
    errors = validate_chrome_trace(trace)
    if args.validate:
        for message in errors:
            print(message, file=sys.stderr)
        if errors:
            raise SystemExit(f"{args.input}: {len(errors)} trace-event schema errors")
        print(f"{args.input}: valid trace-event JSON ({len(trace['traceEvents'])} events)")
        return
    if errors:
        raise SystemExit(
            f"{args.input}: not a valid trace ({errors[0]}; --validate lists all)"
        )
    summary = trace_summary(trace, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2))
        return
    print(format_trace_summary(summary, title=str(args.input)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Virgo (ASPLOS 2025) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gemm = sub.add_parser("gemm", help="simulate a square GEMM")
    gemm.add_argument("--design", default="virgo", help="volta | ampere | hopper | virgo")
    gemm.add_argument("--size", type=int, default=512)
    gemm.add_argument("--all-designs", action="store_true")
    gemm.set_defaults(func=_cmd_gemm)

    flash = sub.add_parser("flash", help="simulate FlashAttention-3 (Virgo vs Ampere-style)")
    flash.set_defaults(func=_cmd_flash)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("--number", type=int, required=True)
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure's data series")
    figure.add_argument("--number", type=int, required=True)
    figure.set_defaults(func=_cmd_figure)

    compare = sub.add_parser("compare", help="full paper-vs-measured comparison (JSON)")
    compare.set_defaults(func=_cmd_compare)

    hetero = sub.add_parser("hetero", help="Section 6.3 heterogeneous dual-unit experiment")
    hetero.set_defaults(func=_cmd_hetero)

    model = sub.add_parser(
        "model",
        help="simulate an end-to-end model workload (see repro.workloads)",
        description=(
            "Lower a whole model (GPT prefill/decode, BERT encoder, GEMM chain) "
            "to a kernel schedule and report per-layer cycles, MAC utilization "
            "and energy.  The repro.workloads module docstring documents the "
            "layer-graph IR, the model zoo and the batch runner in detail."
        ),
        epilog=(
            "batch mode: --batch --names a,b --designs x,y fans the cross "
            "product over a process pool; --cache-dir makes re-runs free via "
            "a content-hashed on-disk result cache."
        ),
    )
    model.add_argument("--name", default="gpt-prefill", help="model zoo entry (see --list)")
    model.add_argument("--design", default="virgo", help="volta | ampere | hopper | virgo")
    model.add_argument("--hetero", action="store_true",
                       help="route small GEMMs onto a half-size secondary matrix unit")
    model.add_argument("--moe-breakdown", action="store_true",
                       help="report per-unit occupancy and measured overlap "
                            "(makespan vs. serialized kernel time)")
    model.add_argument("--json", action="store_true", help="emit the full JSON breakdown")
    model.add_argument("--list", action="store_true", help="list the model zoo and exit")
    model.add_argument("--batch", action="store_true", help="run a (models x designs) sweep")
    model.add_argument("--names", default="", help="comma-separated models for --batch")
    model.add_argument("--designs", default="", help="comma-separated designs for --batch")
    model.add_argument("--cache-dir", default=None,
                       help="on-disk cache directory (batch results + "
                            "persistent kernel-timing snapshot)")
    model.add_argument("--workers", type=int, default=None,
                       help="process-pool size for --batch (default: cpu count)")
    model.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the kernel schedule as Chrome trace-event "
                            "JSON (open in ui.perfetto.dev)")
    model.add_argument("--metrics", action="store_true",
                       help="print the metrics-registry snapshot (including "
                            "diagnostics) and a wall-clock phase profile")
    model.set_defaults(func=_cmd_model)

    serve = sub.add_parser(
        "serve",
        help="continuous-batch a serving trace (see repro.workloads.serving)",
        description=(
            "Run a stream of decode-phase requests (GPT/GQA/MoE mixes with "
            "arrival cycles, prompt lengths and decode budgets) through the "
            "iteration-level continuous-batching scheduler: every in-flight "
            "request's next decode step is merged into one kernel schedule, "
            "so independent requests overlap on the matrix and SIMT units.  "
            "Reports per-request latency, time to first token and queueing "
            "delay."
        ),
    )
    serve.add_argument("--trace", default="poisson-mixed",
                       help="serving-trace zoo entry (see --list)")
    serve.add_argument("--design", default="virgo", help="volta | ampere | hopper | virgo")
    serve.add_argument("--hetero", action="store_true",
                       help="serve on the dual-matrix-unit configuration")
    serve.add_argument("--latency-report", action="store_true",
                       help="print p50/p95/p99 latency, TTFT and queueing percentiles")
    serve.add_argument("--json", action="store_true",
                       help="emit the full JSON serving report")
    serve.add_argument("--list", action="store_true",
                       help="list the serving-trace zoo and exit")
    serve.add_argument("--cache-dir", default=None,
                       help="persist the kernel-timing cache here so repeat "
                            "invocations start warm")
    serve.add_argument("--no-iteration-memo", action="store_true",
                       help="merge and schedule every iteration afresh "
                            "(disables the iteration-level memo)")
    serve.add_argument("--epoch-compression", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="extrapolate invariant batch compositions in "
                            "closed form instead of simulating every "
                            "iteration (results are byte-identical either "
                            "way; --no-epoch-compression forces the exact "
                            "per-iteration loop)")
    serve.add_argument("--policy", default="fcfs",
                       help="scheduling policy: fcfs | kv-budget | preemptive-slo")
    serve.add_argument("--kv-budget", type=int, default=None, metavar="BYTES",
                       help="resident-KV HBM budget for the budgeted policies "
                            "(default: the design's hbm_capacity_bytes)")
    serve.add_argument("--inject", default=None, metavar="SPEC",
                       help="fault-injection spec, comma-separated "
                            "kind:rate:magnitude tokens, e.g. "
                            "'spike:0.3:4.0,stall:0.2:5000,burst:0.5:30000'")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the --inject fault plan (same seed => "
                            "byte-identical run)")
    serve.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the serving schedule (request lifecycles, "
                            "iterations, per-unit kernels) as Chrome "
                            "trace-event JSON (open in ui.perfetto.dev)")
    serve.add_argument("--metrics", action="store_true",
                       help="print the metrics-registry snapshot (including "
                            "diagnostics) and a wall-clock phase profile")
    serve.set_defaults(func=_cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="route a serving trace across a replica fleet under chaos",
        description=(
            "Run a request stream through a router in front of N serving "
            "replicas: health checks with timeouts, retries with capped "
            "exponential backoff, failover of in-flight work (the crashed "
            "replica's KV is lost, so failed-over requests pay an explicit "
            "re-prefill), draining on recovery and load shedding when no "
            "believed-healthy capacity remains.  --inject applies a seeded "
            "replica-level fault plan (crash / slow / partition); the same "
            "seed reproduces the run byte-identically."
        ),
    )
    fleet.add_argument("--trace", default="bursty-gpt",
                       help="serving-trace zoo entry (see --list)")
    fleet.add_argument("--fleet", default="duo-virgo",
                       help="fleet zoo entry (see --list) or a replica count "
                            "(N identical virgos)")
    fleet.add_argument("--policy", default="round-robin",
                       help="router policy: " + " | ".join(sorted(ROUTER_POLICIES)))
    fleet.add_argument("--hetero", action="store_true",
                       help="every replica uses the dual-matrix-unit configuration")
    fleet.add_argument("--latency-report", action="store_true",
                       help="print fleet p50/p95/p99 latency, goodput, "
                            "availability and per-replica occupancy")
    fleet.add_argument("--json", action="store_true",
                       help="emit the full JSON fleet report")
    fleet.add_argument("--list", action="store_true",
                       help="list traces, fleet presets and router policies; exit")
    fleet.add_argument("--cache-dir", default=None,
                       help="persist the kernel-timing cache here so repeat "
                            "invocations start warm")
    fleet.add_argument("--no-iteration-memo", action="store_true",
                       help="merge and schedule every iteration afresh on "
                            "every replica (disables the iteration-level memo)")
    fleet.add_argument("--epoch-compression", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="extrapolate invariant batch compositions in "
                            "closed form between fleet events (results are "
                            "byte-identical either way)")
    fleet.add_argument("--inject", default=None, metavar="SPEC",
                       help="replica fault plan, comma-separated tokens: "
                            "fleet-wide 'crash:RATE:DOWN_CYCLES', "
                            "'slow:RATE:SCALE:CYCLES', "
                            "'partition:RATE:CYCLES', or targeted "
                            "'crash@R:AT:DOWN_CYCLES', 'slow@R:AT:SCALE:CYCLES', "
                            "'partition@R:AT:CYCLES'")
    fleet.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the --inject fault plan (same seed => "
                            "byte-identical run)")
    fleet.add_argument("--no-failover", action="store_true",
                       help="do not fail over in-flight work from a crashed "
                            "replica; its requests are lost (disposition "
                            "'failed')")
    fleet.add_argument("--max-retries", type=int, default=4,
                       help="dispatch retry budget per request before it "
                            "times out")
    fleet.add_argument("--router-seed", type=int, default=0,
                       help="seed for the router's jittered backoff and "
                            "power-of-two sampling")
    fleet.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the fleet schedule (router decisions plus "
                            "one track per replica) as Chrome trace-event "
                            "JSON (open in ui.perfetto.dev)")
    fleet.add_argument("--metrics", action="store_true",
                       help="print the metrics-registry snapshot (including "
                            "diagnostics) and a wall-clock phase profile")
    fleet.set_defaults(func=_cmd_fleet)

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize or validate a --trace-out trace without a viewer",
        description=(
            "Digest a Chrome trace-event JSON file recorded with "
            "'model --trace-out' or 'serve --trace-out': the longest spans, "
            "a per-unit occupancy timeline and the per-iteration batch "
            "composition.  --validate only checks the trace-event schema "
            "(what Perfetto / chrome://tracing require to load the file) "
            "and exits non-zero on violations."
        ),
    )
    trace_report.add_argument("--input", required=True, metavar="FILE",
                              help="trace-event JSON file to read")
    trace_report.add_argument("--top", type=int, default=10,
                              help="how many of the longest spans to list")
    trace_report.add_argument("--json", action="store_true",
                              help="emit the summary as JSON")
    trace_report.add_argument("--validate", action="store_true",
                              help="schema-check only; exit non-zero on errors")
    trace_report.set_defaults(func=_cmd_trace_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
