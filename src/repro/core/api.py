"""Virgo's low-level programming API (Section 4.3).

The API mirrors the paper's kernel interface:

* ``virgo_dma_load`` / ``virgo_dma_store`` -- asynchronous DMA tile copies
  between global memory, shared memory and the accumulator memory;
* ``virgo_compute`` -- asynchronously kick off a matrix multiply-accumulate
  on the cluster matrix unit, reading tiles from shared memory;
* ``virgo_fence`` -- block the calling warp until the selected outstanding
  asynchronous operations complete (modelled as MMIO busy polling);
* ``threadblock_barrier`` -- the cluster-wide synchronizer barrier.

The :class:`VirgoContext` executes operations *functionally* (numpy tiles in
named global/shared buffers) and *temporally* (each asynchronous operation is
scheduled on its hardware resource, so the context tracks the cycle at which
the issuing warp, the DMA engine and each matrix unit are next free).  This
dual role lets the same kernel code verify numerics and produce the cycle
and energy statistics the evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config.soc import DesignConfig
from repro.core.cluster import VirgoCluster
from repro.memory.dma import DmaDirection
from repro.sim.resources import Resource
from repro.sim.stats import Counters


@dataclass
class AsyncHandle:
    """Tracks one outstanding asynchronous operation."""

    kind: str
    start_cycle: int
    end_cycle: int
    description: str = ""

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclass
class _Buffer:
    data: np.ndarray
    location: str  # "global", "shared", "accumulator"


class VirgoContext:
    """Functional + timing execution context for Virgo kernels."""

    def __init__(self, design: Optional[DesignConfig] = None, cluster: Optional[VirgoCluster] = None) -> None:
        if cluster is None:
            if design is None:
                from repro.config.presets import virgo as virgo_preset

                design = virgo_preset()
            cluster = VirgoCluster(design)
        self.cluster = cluster
        self.design = cluster.design
        self.counters = Counters()
        self.now = 0
        self._buffers: Dict[str, _Buffer] = {}
        self._pending: List[AsyncHandle] = []
        self._dma_resource = Resource("dma")
        self._matrix_resources = {
            name: Resource(f"matrix.{name}") for name in cluster.matrix_units
        }
        self.fence_poll_cycles = 0
        self.fence_count = 0

    # ------------------------------------------------------------------ #
    # Buffer management (functional state)
    # ------------------------------------------------------------------ #

    def global_store(self, name: str, data: np.ndarray) -> None:
        """Place a matrix in global memory."""
        self._buffers[name] = _Buffer(data=np.array(data), location="global")

    def global_load(self, name: str) -> np.ndarray:
        buffer = self._get(name)
        return buffer.data.copy()

    def shared_alloc(self, name: str, shape, dtype=np.float16) -> None:
        """Allocate a shared-memory tile buffer."""
        total_bytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if total_bytes > self.design.cluster.shared_memory.size_bytes:
            raise ValueError(
                f"tile {name!r} of {total_bytes} B exceeds the "
                f"{self.design.cluster.shared_memory.size_bytes} B shared memory"
            )
        self._buffers[name] = _Buffer(data=np.zeros(shape, dtype=dtype), location="shared")

    def shared_view(self, name: str) -> np.ndarray:
        buffer = self._get(name)
        if buffer.location != "shared":
            raise ValueError(f"{name!r} is not a shared-memory buffer")
        return buffer.data

    def _get(self, name: str) -> _Buffer:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        return self._buffers[name]

    # ------------------------------------------------------------------ #
    # Asynchronous operations
    # ------------------------------------------------------------------ #

    def virgo_dma_load(
        self,
        src: str,
        dst: str,
        row: int = 0,
        col: int = 0,
        rows: Optional[int] = None,
        cols: Optional[int] = None,
    ) -> AsyncHandle:
        """Asynchronously copy a tile of global buffer ``src`` into shared ``dst``."""
        source = self._get(src)
        dest = self._get(dst)
        if source.location != "global" or dest.location != "shared":
            raise ValueError("virgo_dma_load copies from a global buffer to a shared buffer")
        rows = rows if rows is not None else dest.data.shape[0]
        cols = cols if cols is not None else dest.data.shape[1]
        tile = source.data[row : row + rows, col : col + cols]
        dest.data[:rows, :cols] = tile.astype(dest.data.dtype)

        nbytes = rows * cols * dest.data.dtype.itemsize
        transfer = self.cluster.dma.execute(DmaDirection.GLOBAL_TO_SHARED, nbytes, self.counters)
        return self._issue_async("dma", self._dma_resource, transfer.cycles, f"load {src}->{dst}")

    def virgo_dma_store(
        self,
        src: str,
        dst: str,
        row: int = 0,
        col: int = 0,
    ) -> AsyncHandle:
        """Asynchronously copy a shared or accumulator tile back to global memory."""
        source = self._get(src)
        dest = self._get(dst)
        if dest.location != "global":
            raise ValueError("virgo_dma_store writes to a global buffer")
        tile = source.data
        rows, cols = tile.shape
        dest.data[row : row + rows, col : col + cols] = tile.astype(dest.data.dtype)

        nbytes = rows * cols * 4
        direction = (
            DmaDirection.ACCUM_TO_GLOBAL
            if source.location == "accumulator"
            else DmaDirection.SHARED_TO_GLOBAL
        )
        transfer = self.cluster.dma.execute(direction, nbytes, self.counters)
        return self._issue_async("dma", self._dma_resource, transfer.cycles, f"store {src}->{dst}")

    def virgo_compute(
        self,
        a: str,
        b: str,
        dst: str,
        accumulate: bool = True,
        unit: str = "mu0",
    ) -> AsyncHandle:
        """Asynchronously run ``dst (+)= a @ b`` on the cluster matrix unit.

        ``a`` and ``b`` name shared-memory tiles; ``dst`` names an
        accumulator-memory tile which is created on first use.
        """
        a_tile = self.shared_view(a)
        b_tile = self.shared_view(b)
        matrix_unit = self.cluster.matrix_unit(unit)

        result = matrix_unit.compute_into(dst, a_tile, b_tile, accumulate, counters=self.counters)
        self._buffers[dst] = _Buffer(data=result, location="accumulator")

        # Programming the unit costs a few MMIO stores from the issuing warp.
        mmio = self.cluster.mmio[unit]
        for _ in range(6):
            mmio.store(mmio.base_address, 1)
        self.counters.add("core.issue.instructions", 6)
        self.counters.add("core.lsu.requests", 6)

        timing = matrix_unit.operation_timing(a_tile.shape[0], b_tile.shape[1], a_tile.shape[1])
        return self._issue_async(
            "matrix", self._matrix_resources[unit], timing.total_cycles, f"compute {dst}"
        )

    def _issue_async(
        self, kind: str, resource: Resource, duration: int, description: str
    ) -> AsyncHandle:
        start, end = resource.reserve(self.now, duration, label=description)
        handle = AsyncHandle(kind=kind, start_cycle=start, end_cycle=end, description=description)
        self._pending.append(handle)
        # Issuing an asynchronous command costs the warp a couple of cycles.
        self.now += 2
        return handle

    # ------------------------------------------------------------------ #
    # Synchronization
    # ------------------------------------------------------------------ #

    def virgo_fence(self, most_recent: int = 0) -> int:
        """Block until outstanding asynchronous operations complete.

        ``most_recent=0`` waits for all pending operations (matching the
        paper's ``virgo_fence(0)``); ``most_recent=n`` waits only for the n
        most recently issued operations.  Returns the number of cycles the
        warp spent polling.
        """
        if not self._pending:
            return 0
        if most_recent <= 0:
            targets = list(self._pending)
        else:
            targets = self._pending[-most_recent:]
        finish = max(handle.end_cycle for handle in targets)
        waited = max(0, finish - self.now)
        if waited:
            polls = self.cluster.mmio["mu0"].poll_until_done(waited)
            self.counters.add("core.issue.instructions", polls)
        self.fence_poll_cycles += waited
        self.fence_count += 1
        self.now = max(self.now, finish)
        self._pending = [handle for handle in self._pending if handle.end_cycle > self.now]
        return waited

    def threadblock_barrier(self, barrier_id: int = 0) -> None:
        """Cluster-wide barrier across all cores (Section 3.3)."""
        synchronizer = self.cluster.synchronizer
        result = None
        for core_id in range(self.cluster.design.cluster.cores):
            result = synchronizer.arrive(barrier_id + self._barrier_epoch(), core_id, self.now)
        if result is not None:
            self.now = max(self.now, result.release_cycle)
        self.counters.add("core.issue.instructions", self.cluster.design.cluster.cores)

    def _barrier_epoch(self) -> int:
        return 1000 * len(self.cluster.synchronizer.completed)

    # ------------------------------------------------------------------ #
    # SIMT-side compute (post-processing on the cores)
    # ------------------------------------------------------------------ #

    def simt_elementwise(self, name: str, func, flops_per_element: int = 1) -> AsyncHandle:
        """Run an element-wise SIMT computation over a shared/accumulator tile.

        ``func`` is applied functionally; the duration models the cluster's
        SIMD FPU throughput across all cores.
        """
        buffer = self._get(name)
        buffer.data = func(buffer.data).astype(buffer.data.dtype)
        elements = buffer.data.size
        cluster = self.design.cluster
        flops = elements * flops_per_element
        throughput = cluster.cores * cluster.core.lanes  # FP ops per cycle
        duration = max(1, int(flops / throughput))
        self.counters.add("core.fpu.ops", flops)
        self.counters.add("core.issue.instructions", flops / cluster.core.lanes)
        handle = AsyncHandle(
            kind="simt", start_cycle=self.now, end_cycle=self.now + duration, description=name
        )
        self.now += duration
        return handle

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def elapsed_cycles(self) -> int:
        return self.now

    def gather_counters(self) -> Counters:
        merged = self.cluster.gather_counters()
        merged.merge(self.counters)
        return merged
