"""The Virgo cluster-level matrix unit: a Gemmini-derived systolic accelerator.

The unit couples three pieces (Figure 2):

* a coarse-grain FSM that iterates the (i, j, k) subtile loops of an entire
  operation tile (up to 128x64x128) from a single MMIO command,
* the output-stationary systolic array, and
* a private single-banked accumulator SRAM.

Operands stream directly from the cluster shared memory over the TileLink
interconnect's wide port; results accumulate into the accumulator memory (or
in-mesh across the K loop) and are finally drained to global memory by the
DMA.  No register-file traffic is generated at all -- the property that, per
Section 6.1.2, produces most of Virgo's energy advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.soc import MatrixUnitConfig, SharedMemoryConfig
from repro.core.accumulator import AccumulatorMemory
from repro.core.systolic_array import SystolicArray
from repro.sim.stats import Counters


@dataclass
class MatrixOperation:
    """Timing and traffic summary of one MMIO-initiated operation tile."""

    m: int
    n: int
    k: int
    compute_cycles: int
    smem_read_cycles: int
    accumulator_cycles: int
    fsm_overhead: int

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def total_cycles(self) -> int:
        """Cycles from command acceptance to completion.

        Operand streaming is double-buffered against compute, so the longer
        of the two dominates; accumulator drain overlaps with the next
        subtile's compute except for the final one, which the FSM overhead
        term covers.
        """
        return max(self.compute_cycles, self.smem_read_cycles) + self.fsm_overhead

    def utilization(self, macs_per_cycle: int) -> float:
        ideal = self.macs / float(macs_per_cycle)
        return ideal / self.total_cycles if self.total_cycles else 0.0


class GemminiMatrixUnit:
    """The disaggregated cluster-level matrix unit."""

    #: Fixed FSM cost per operation: command decode, loop setup, final drain.
    FSM_OVERHEAD_CYCLES = 40

    def __init__(
        self,
        config: MatrixUnitConfig,
        shared_memory: SharedMemoryConfig,
        accumulator: Optional[AccumulatorMemory] = None,
    ) -> None:
        if config.systolic_rows <= 0 or config.systolic_cols <= 0:
            raise ValueError("the disaggregated unit requires a systolic array geometry")
        self.config = config
        self.shared_memory = shared_memory
        self.array = SystolicArray(config.systolic_rows, config.systolic_cols, dtype=config.dtype)
        self.accumulator = accumulator or AccumulatorMemory(config.accumulator_bytes or 32 * 1024)
        self.operations = 0

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #

    def compute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        accumulate_onto: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> np.ndarray:
        """Compute one operation tile ``a @ b`` (+ existing accumulator data).

        ``a`` is (m, k) and ``b`` is (k, n), both read from shared memory.
        The FSM blocks the operands into systolic-array-sized subtiles,
        accumulating over K in-mesh and across subtile rows/columns in the
        accumulator memory.  Returns the (m, n) FP32 result.
        """
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"invalid operand shapes {a.shape} x {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        if m > self.config.tile_m or n > self.config.tile_n or k > self.config.tile_k:
            raise ValueError(
                f"operation {m}x{n}x{k} exceeds the unit's maximum tile "
                f"{self.config.tile_m}x{self.config.tile_n}x{self.config.tile_k}"
            )
        self.operations += 1
        counters = counters if counters is not None else Counters()

        rows, cols = self.array.rows, self.array.cols
        result = np.zeros((m, n), dtype=np.float32)
        for i in range(0, m, rows):
            i_end = min(i + rows, m)
            for j in range(0, n, cols):
                j_end = min(j + cols, n)
                # The full K depth streams through the mesh for this output
                # subtile; partial sums accumulate in the PEs (output
                # stationary), so the accumulator memory sees one write.
                subtile = self.array.compute_subtile(
                    a[i:i_end, :], b[:, j:j_end], counters=counters
                )
                result[i:i_end, j:j_end] = subtile

        if accumulate_onto is not None:
            if accumulate_onto.shape != result.shape:
                raise ValueError("accumulator tile shape mismatch")
            result = result + accumulate_onto.astype(np.float32)
            counters.add("accum.read_words", result.size)
        counters.add("accum.write_words", result.size)
        self._record_operand_traffic(m, n, k, counters)
        return result

    def compute_into(
        self,
        tile_name: str,
        a: np.ndarray,
        b: np.ndarray,
        accumulate: bool,
        counters: Optional[Counters] = None,
    ) -> np.ndarray:
        """Compute ``a @ b`` and accumulate (or store) into a named accumulator tile."""
        m, n = a.shape[0], b.shape[1]
        if tile_name not in self.accumulator.tile_names():
            self.accumulator.allocate(tile_name, m, n)
        partial = self.compute(a, b, counters=counters)
        if accumulate:
            return self.accumulator.accumulate(tile_name, partial)
        self.accumulator.write(tile_name, partial)
        return partial

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def operation_timing(self, m: int, n: int, k: int) -> MatrixOperation:
        """Timing of one operation tile, bounded by compute and operand streaming."""
        if m <= 0 or n <= 0 or k <= 0:
            raise ValueError("operation dimensions must be positive")
        compute = self.array.tile_cycles(m, n, k, pipelined=True)

        operand_bytes = self._operand_bytes(m, n, k)
        # The unit owns one wide shared-memory port (one bank per cycle).
        bytes_per_cycle = self.shared_memory.bank_width_bytes
        smem_cycles = max(1, -(-operand_bytes // bytes_per_cycle))

        accum_words = m * n
        accumulator_cycles = self.accumulator.access_cycles(accum_words)
        return MatrixOperation(
            m=m,
            n=n,
            k=k,
            compute_cycles=compute,
            smem_read_cycles=smem_cycles,
            accumulator_cycles=accumulator_cycles,
            fsm_overhead=self.FSM_OVERHEAD_CYCLES,
        )

    def _operand_bytes(self, m: int, n: int, k: int) -> int:
        """Shared-memory bytes read for one operation tile.

        The FSM walks the output columns of the operation tile: for each
        column group of ``cols`` output columns it re-streams the A operand
        (once per column group) while the corresponding B column group is
        streamed exactly once for the whole operation.  This single-unit
        reuse of B across the entire 128-row M extent is the footprint
        advantage over per-core units that Table 4 quantifies.
        """
        elem = self.config.dtype.bytes
        subtiles_n = -(-n // self.array.cols)
        a_bytes = m * k * elem * subtiles_n
        b_bytes = k * n * elem
        return a_bytes + b_bytes

    def _record_operand_traffic(self, m: int, n: int, k: int, counters: Counters) -> None:
        operand_bytes = self._operand_bytes(m, n, k)
        counters.add("smem.matrix.read_words", -(-operand_bytes // 4))
        counters.add("matrix_unit.smem_interface_words", -(-operand_bytes // 4))
        counters.add("matrix_unit.control_events", 1)

    def smem_read_bytes(self, m: int, n: int, k: int) -> int:
        """Public accessor for the per-operation shared-memory read footprint."""
        return self._operand_bytes(m, n, k)
