"""Virgo's cluster-level disaggregated matrix unit (the paper's contribution).

The subpackage contains the Gemmini-style systolic array (functional +
timing), its private accumulator memory, the MMIO command interface the SIMT
cores drive it through, the cluster-wide synchronizer, the cluster assembly,
and the ``virgo_*`` programming API of Section 4.3.
"""

from repro.core.systolic_array import SystolicArray, SubtilePass
from repro.core.accumulator import AccumulatorMemory
from repro.core.mmio import MmioInterface, MmioRegister, CommandStatus
from repro.core.gemmini import GemminiMatrixUnit, MatrixOperation
from repro.core.synchronizer import ClusterSynchronizer, BarrierResult
from repro.core.cluster import VirgoCluster
from repro.core.api import VirgoContext, AsyncHandle

__all__ = [
    "SystolicArray",
    "SubtilePass",
    "AccumulatorMemory",
    "MmioInterface",
    "MmioRegister",
    "CommandStatus",
    "GemminiMatrixUnit",
    "MatrixOperation",
    "ClusterSynchronizer",
    "BarrierResult",
    "VirgoCluster",
    "VirgoContext",
    "AsyncHandle",
]
