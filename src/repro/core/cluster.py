"""Assembly of a Virgo cluster: cores, shared memory, DMA, matrix unit(s).

The cluster is the hardware unit a thread block maps to.  For Virgo it holds
the SIMT cores, the banked shared memory and its interconnect, the cluster
DMA engine, the cluster-wide synchronizer, and one or more disaggregated
matrix units (Section 6.3 evaluates a heterogeneous two-unit configuration).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.config.soc import DesignConfig, IntegrationStyle, MatrixUnitConfig
from repro.core.accumulator import AccumulatorMemory
from repro.core.gemmini import GemminiMatrixUnit
from repro.core.mmio import MmioInterface
from repro.core.synchronizer import ClusterSynchronizer
from repro.memory.dma import DmaEngine
from repro.memory.dram import DramChannel
from repro.memory.interconnect import SharedMemoryInterconnect
from repro.memory.shared_memory import BankedSharedMemory
from repro.sim.stats import Counters
from repro.simt.core import VortexCore

#: Byte offset of the first MMIO window inside the shared-memory address space.
MMIO_BASE_OFFSET = 0x1F000


class VirgoCluster:
    """A cluster with disaggregated matrix unit(s)."""

    def __init__(self, design: DesignConfig) -> None:
        if design.style is not IntegrationStyle.DISAGGREGATED:
            raise ValueError(
                "VirgoCluster models the disaggregated design; use the kernel models "
                "directly for the core-coupled baselines"
            )
        design.validate()
        self.design = design
        cluster = design.soc.cluster

        self.cores: List[VortexCore] = [VortexCore(cluster.core) for _ in range(cluster.cores)]
        self.shared_memory = BankedSharedMemory(cluster.shared_memory)
        self.interconnect = SharedMemoryInterconnect(self.shared_memory)
        self.dram = DramChannel(design.soc.dram)
        self.dma = DmaEngine(cluster.dma, self.dram, self.shared_memory)
        self.synchronizer = ClusterSynchronizer(cores=cluster.cores)
        self.counters = Counters()

        self.matrix_units: Dict[str, GemminiMatrixUnit] = {}
        self.mmio: Dict[str, MmioInterface] = {}
        for index in range(cluster.matrix_units):
            self.add_matrix_unit(f"mu{index}", cluster.matrix_unit)

    # ------------------------------------------------------------------ #
    # Matrix unit management
    # ------------------------------------------------------------------ #

    def add_matrix_unit(self, name: str, config: Optional[MatrixUnitConfig] = None) -> GemminiMatrixUnit:
        """Instantiate an additional matrix unit (heterogeneous configurations)."""
        if name in self.matrix_units:
            raise ValueError(f"matrix unit {name!r} already exists")
        unit_config = config or self.design.matrix_unit
        accumulator = AccumulatorMemory(unit_config.accumulator_bytes or 32 * 1024)
        unit = GemminiMatrixUnit(
            unit_config, self.design.cluster.shared_memory, accumulator=accumulator
        )
        self.matrix_units[name] = unit
        base = MMIO_BASE_OFFSET + len(self.mmio) * 4 * MmioInterface.WINDOW_WORDS
        self.mmio[name] = MmioInterface(base_address=base)
        return unit

    def matrix_unit(self, name: str = "mu0") -> GemminiMatrixUnit:
        return self.matrix_units[name]

    def scaled_matrix_unit_config(self, scale: float) -> MatrixUnitConfig:
        """A matrix-unit config scaled down by ``scale`` in each mesh dimension.

        Used by the heterogeneous experiment, which pairs a full-size unit
        with a half-size unit in one cluster.
        """
        base = self.design.matrix_unit
        rows = max(1, int(base.systolic_rows * scale))
        cols = max(1, int(base.systolic_cols * scale))
        return replace(
            base,
            systolic_rows=rows,
            systolic_cols=cols,
            macs_per_cycle=rows * cols,
            tile_m=max(rows, int(base.tile_m * scale)),
            tile_n=max(cols, int(base.tile_n * scale)),
            tile_k=max(rows, int(base.tile_k * scale)),
        )

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #

    @property
    def total_macs_per_cycle(self) -> int:
        return sum(unit.array.macs_per_cycle for unit in self.matrix_units.values())

    def gather_counters(self) -> Counters:
        """Merge counters from every component plus the cluster-level bag."""
        merged = self.counters.copy()
        merged.merge(self.shared_memory.counters)
        for unit in self.matrix_units.values():
            merged.merge(unit.accumulator.counters)
        for mmio in self.mmio.values():
            merged.merge(mmio.counters)
        merged.merge(self.synchronizer.counters)
        return merged

    def reset(self) -> None:
        self.counters = Counters()
        self.shared_memory.reset()
        for unit in self.matrix_units.values():
            unit.accumulator.reset()
        self.synchronizer.completed.clear()
