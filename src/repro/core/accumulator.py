"""The Virgo matrix unit's private accumulator memory (Section 3.2.2).

A single-banked SRAM holding FP32 partial-sum tiles.  Keeping the accumulator
outside the SIMT register file is one of Virgo's two key energy levers: the
memory needs no SIMT-divergent scatter/gather support, so each access is a
wide, regular, single-bank read or write that costs much less energy than a
multi-banked register-file access; and its capacity is decoupled from warp
occupancy.

The model is functional (numpy-backed tiles addressed by row) and counts
word accesses for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.sim.stats import Counters


class AccumulatorAllocationError(Exception):
    """Raised when a tile does not fit in the accumulator SRAM."""


@dataclass
class _Allocation:
    offset_bytes: int
    shape: Tuple[int, int]


class AccumulatorMemory:
    """Single-banked FP32 accumulator SRAM private to the matrix unit."""

    ELEM_BYTES = 4  # accumulators are always FP32

    def __init__(self, size_bytes: int, width_words: int = 16) -> None:
        if size_bytes <= 0:
            raise ValueError("accumulator memory must have a positive size")
        self.size_bytes = size_bytes
        self.width_words = width_words
        self.counters = Counters()
        self._allocations: Dict[str, _Allocation] = {}
        self._tiles: Dict[str, np.ndarray] = {}
        self._next_offset = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def allocate(self, name: str, rows: int, cols: int) -> None:
        """Reserve space for a (rows, cols) FP32 tile."""
        if name in self._allocations:
            raise ValueError(f"tile {name!r} already allocated")
        nbytes = rows * cols * self.ELEM_BYTES
        if self._next_offset + nbytes > self.size_bytes:
            raise AccumulatorAllocationError(
                f"tile {name!r} of {nbytes} B does not fit; "
                f"{self.size_bytes - self._next_offset} B free of {self.size_bytes} B"
            )
        self._allocations[name] = _Allocation(offset_bytes=self._next_offset, shape=(rows, cols))
        self._tiles[name] = np.zeros((rows, cols), dtype=np.float32)
        self._next_offset += nbytes

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise KeyError(f"no tile named {name!r}")
        del self._allocations[name]
        del self._tiles[name]
        if not self._allocations:
            self._next_offset = 0

    def allocated_bytes(self) -> int:
        return sum(
            alloc.shape[0] * alloc.shape[1] * self.ELEM_BYTES
            for alloc in self._allocations.values()
        )

    @property
    def free_bytes(self) -> int:
        return self.size_bytes - self._next_offset

    def tile_names(self):
        return list(self._allocations)

    # ------------------------------------------------------------------ #
    # Functional accesses (with energy accounting)
    # ------------------------------------------------------------------ #

    def _words(self, array: np.ndarray) -> int:
        return int(array.size)

    def accumulate(self, name: str, partial: np.ndarray) -> np.ndarray:
        """Read-modify-write: add ``partial`` onto the stored tile."""
        tile = self._read_tile(name)
        if partial.shape != tile.shape:
            raise ValueError(f"partial shape {partial.shape} != tile shape {tile.shape}")
        updated = tile + partial.astype(np.float32)
        self._write_tile(name, updated)
        return updated

    def write(self, name: str, values: np.ndarray) -> None:
        """Overwrite the stored tile (accumulate=0 mode of the FSM)."""
        tile = self._tiles[name]
        if values.shape != tile.shape:
            raise ValueError(f"value shape {values.shape} != tile shape {tile.shape}")
        self._write_tile(name, values.astype(np.float32), count_read=False)

    def read(self, name: str) -> np.ndarray:
        """Read the stored tile (e.g. for the DMA store to global memory)."""
        return self._read_tile(name).copy()

    def _read_tile(self, name: str) -> np.ndarray:
        if name not in self._tiles:
            raise KeyError(f"no tile named {name!r}")
        tile = self._tiles[name]
        self.counters.add("accum.read_words", self._words(tile))
        return tile

    def _write_tile(self, name: str, values: np.ndarray, count_read: bool = True) -> None:
        self._tiles[name] = values
        self.counters.add("accum.write_words", self._words(values))

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def access_cycles(self, nwords: int) -> int:
        """Cycles to read or write ``nwords`` through the single wide port."""
        if nwords < 0:
            raise ValueError("word count must be non-negative")
        return max(0, -(-nwords // self.width_words))

    def reset(self) -> None:
        self._allocations.clear()
        self._tiles.clear()
        self._next_offset = 0
        self.counters = Counters()
