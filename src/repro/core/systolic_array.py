"""Gemmini-style systolic array: functional and timing model.

The array is a ``rows`` x ``cols`` mesh of fused multiply-add processing
elements operating output-stationary: a subtile of the output matrix is
pinned to the mesh while A operands stream in from the left and B operands
from the top.  One pass over a K-deep operand pair takes ``K`` cycles of
streaming plus the fill/drain skew of ``rows + cols - 2`` cycles; partial
sums either stay in the mesh (when the next pass accumulates onto the same
output subtile) or drain to the accumulator memory.

The functional model quantizes operands to the configured data type and
accumulates in FP32, matching Gemmini's behaviour and allowing end-to-end
numerical verification of the Virgo GEMM and FlashAttention kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.soc import DataType
from repro.sim.stats import Counters

_OPERAND_DTYPES = {DataType.FP16: np.float16, DataType.FP32: np.float32}


@dataclass(frozen=True)
class SubtilePass:
    """Timing of one pass of a (rows x cols) output subtile over depth K."""

    rows: int
    cols: int
    depth: int
    fill_drain: int

    @property
    def cycles(self) -> int:
        return self.depth + self.fill_drain

    @property
    def macs(self) -> int:
        return self.rows * self.cols * self.depth


class SystolicArray:
    """An output-stationary mesh of fused multiply-add processing elements."""

    def __init__(self, rows: int, cols: int, dtype: DataType = DataType.FP16) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.dtype = dtype
        self.total_macs = 0

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #

    def compute_subtile(
        self,
        a: np.ndarray,
        b: np.ndarray,
        accumulator: np.ndarray | None = None,
        counters: Counters | None = None,
    ) -> np.ndarray:
        """Compute ``a @ b`` (+ ``accumulator``) for one output subtile.

        ``a`` is (rows, K), ``b`` is (K, cols); the output subtile is
        (rows, cols) in FP32.  Larger operands must be blocked by the caller
        (the Gemmini FSM does that blocking).
        """
        if a.shape[0] > self.rows or b.shape[1] > self.cols:
            raise ValueError(
                f"subtile {a.shape[0]}x{b.shape[1]} exceeds the "
                f"{self.rows}x{self.cols} array"
            )
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions mismatch: {a.shape} x {b.shape}")
        operand_dtype = _OPERAND_DTYPES[self.dtype]
        a_q = a.astype(operand_dtype).astype(np.float32)
        b_q = b.astype(operand_dtype).astype(np.float32)
        result = a_q @ b_q
        if accumulator is not None:
            if accumulator.shape != result.shape:
                raise ValueError(
                    f"accumulator shape {accumulator.shape} does not match {result.shape}"
                )
            result = result + accumulator.astype(np.float32)

        macs = a.shape[0] * b.shape[1] * a.shape[1]
        self.total_macs += macs
        if counters is not None:
            counters.add("matrix_unit.pe.macs", macs)
            # In-mesh accumulation: only the final subtile result reaches the
            # accumulator memory, the K-dimension partial sums stay in the PEs.
            counters.add("matrix_unit.pe.in_mesh_accumulations", macs - result.size)
        return result

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def subtile_pass(self, depth: int) -> SubtilePass:
        """Timing of streaming a depth-``depth`` operand pair through the mesh."""
        if depth <= 0:
            raise ValueError("depth must be positive")
        return SubtilePass(
            rows=self.rows,
            cols=self.cols,
            depth=depth,
            fill_drain=self.rows + self.cols - 2,
        )

    def tile_cycles(self, m: int, n: int, k: int, pipelined: bool = True) -> int:
        """Cycles to compute an (m, n, k) operation tile on the mesh.

        The tile is blocked into (rows x cols) output subtiles, each streamed
        over the full K depth.  With ``pipelined`` operand staging (Gemmini's
        double-buffered operand rows), the fill of the next output subtile
        overlaps the drain of the previous one, so consecutive subtiles only
        pay a half-mesh bubble while the full fill/drain skew is paid once
        for the whole operation.
        """
        if m <= 0 or n <= 0 or k <= 0:
            raise ValueError("tile dimensions must be positive")
        subtiles_m = -(-m // self.rows)
        subtiles_n = -(-n // self.cols)
        output_subtiles = subtiles_m * subtiles_n
        per_subtile_stream = k  # K elements stream per output subtile
        skew = self.rows + self.cols - 2
        if pipelined:
            bubble = self.rows // 2
            return output_subtiles * (per_subtile_stream + bubble) + skew
        passes = -(-k // self.rows)
        return output_subtiles * (per_subtile_stream + passes * skew)

    def ideal_tile_cycles(self, m: int, n: int, k: int) -> float:
        """Lower bound: tile MACs at full mesh throughput."""
        return (m * n * k) / float(self.macs_per_cycle)

    def utilization_for_tile(self, m: int, n: int, k: int) -> float:
        """Mesh utilization achieved on an isolated (m, n, k) tile."""
        return self.ideal_tile_cycles(m, n, k) / self.tile_cycles(m, n, k)
