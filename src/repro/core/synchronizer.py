"""Cluster-wide synchronizer (Section 3.3).

The synchronizer interfaces with the warp scheduler of every SIMT core in the
cluster.  When the designated warps of a core reach a ``vx_bar`` instruction,
the core sends a barrier-release request; the synchronizer replies once every
participating core has arrived.  The model tracks per-barrier arrival times,
reports the stall each core experiences, and supports multiple concurrently
outstanding barrier IDs (the kernel uses different barriers for the producer
and consumer warp groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.stats import Counters


@dataclass
class BarrierResult:
    """Outcome of one completed cluster barrier."""

    barrier_id: int
    release_cycle: int
    arrival_cycles: Dict[int, int]

    @property
    def stall_cycles(self) -> Dict[int, int]:
        """Cycles each core waited between its arrival and the release."""
        return {core: self.release_cycle - cycle for core, cycle in self.arrival_cycles.items()}

    @property
    def max_stall(self) -> int:
        return max(self.stall_cycles.values()) if self.arrival_cycles else 0

    @property
    def total_stall(self) -> int:
        return sum(self.stall_cycles.values())


@dataclass
class _PendingBarrier:
    expected: int
    arrivals: Dict[int, int] = field(default_factory=dict)


class ClusterSynchronizer:
    """Collects barrier-release requests from the cluster's cores."""

    def __init__(self, cores: int, release_latency: int = 4) -> None:
        if cores <= 0:
            raise ValueError("the cluster must contain at least one core")
        self.cores = cores
        self.release_latency = release_latency
        self.counters = Counters()
        self._pending: Dict[int, _PendingBarrier] = {}
        self.completed: List[BarrierResult] = []

    def arrive(
        self,
        barrier_id: int,
        core_id: int,
        cycle: int,
        participating_cores: int | None = None,
    ) -> BarrierResult | None:
        """Record that ``core_id`` reached ``barrier_id`` at ``cycle``.

        Returns the :class:`BarrierResult` when this arrival releases the
        barrier, else ``None``.  ``participating_cores`` defaults to every
        core in the cluster and must be consistent across arrivals.
        """
        if not (0 <= core_id < self.cores):
            raise ValueError(f"core {core_id} outside the cluster of {self.cores} cores")
        expected = participating_cores if participating_cores is not None else self.cores
        pending = self._pending.setdefault(barrier_id, _PendingBarrier(expected=expected))
        if pending.expected != expected:
            raise ValueError(
                f"barrier {barrier_id} was opened for {pending.expected} cores, "
                f"got an arrival expecting {expected}"
            )
        if core_id in pending.arrivals:
            raise ValueError(f"core {core_id} arrived twice at barrier {barrier_id}")
        pending.arrivals[core_id] = cycle
        self.counters.add("sync.barrier_requests", 1)

        if len(pending.arrivals) < pending.expected:
            return None

        release = max(pending.arrivals.values()) + self.release_latency
        result = BarrierResult(
            barrier_id=barrier_id,
            release_cycle=release,
            arrival_cycles=dict(pending.arrivals),
        )
        self.completed.append(result)
        self.counters.add("sync.barriers_released", 1)
        self.counters.add("sync.stall_cycles", result.total_stall)
        del self._pending[barrier_id]
        return result

    def barrier_cost(self, arrival_skew: int) -> int:
        """Analytical cost of one barrier given the slowest-core skew."""
        if arrival_skew < 0:
            raise ValueError("skew must be non-negative")
        return arrival_skew + self.release_latency

    @property
    def outstanding(self) -> int:
        return len(self._pending)
