"""Memory-mapped IO command interface to the cluster matrix unit (Section 3.1).

Virgo replaces Gemmini's RoCC interface with memory-mapped control registers
reachable through the cluster shared-memory address space.  A SIMT warp
programs an operation with a handful of regular stores (non-blocking), kicks
it off by writing the ``START`` register, and later synchronizes by polling
the ``STATUS`` register -- which is what ``virgo_fence`` does in software.

The model provides the register map, a functional device that latches
commands, and accounting of the MMIO traffic (stores to program, polling
loads to synchronize) that shows up in the core's LSU/issue energy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.stats import Counters


class MmioRegister(enum.IntEnum):
    """Control register offsets (in words) of the matrix unit's MMIO window."""

    OPERAND_A_ADDR = 0
    OPERAND_B_ADDR = 1
    RESULT_ADDR = 2
    DIM_M = 3
    DIM_N = 4
    DIM_K = 5
    ACCUMULATE = 6
    START = 7
    STATUS = 8
    DMA_SRC = 9
    DMA_DST = 10
    DMA_BYTES = 11
    DMA_START = 12
    DMA_STATUS = 13


class CommandStatus(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    DONE = "done"


@dataclass
class MmioCommand:
    """One latched command (a GEMM descriptor or a DMA descriptor)."""

    kind: str
    operands: Dict[MmioRegister, int] = field(default_factory=dict)
    issue_cycle: int = 0
    complete_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.complete_cycle is not None


class MmioInterface:
    """The matrix unit's memory-mapped command window.

    ``base_address`` places the window inside the shared-memory address
    space; stores and loads to it are routed to the device instead of the
    SRAM banks.  ``store``/``load`` model the core-side accesses and count
    events; :meth:`start_command` latches a descriptor which the owning
    device (the Gemmini unit or the DMA engine) later completes.
    """

    WINDOW_WORDS = 16

    def __init__(self, base_address: int, store_latency: int = 6, poll_latency: int = 10) -> None:
        self.base_address = base_address
        self.store_latency = store_latency
        self.poll_latency = poll_latency
        self.registers: Dict[MmioRegister, int] = {reg: 0 for reg in MmioRegister}
        self.status = CommandStatus.IDLE
        self.commands: List[MmioCommand] = []
        self.counters = Counters()
        self._completion_callback: Optional[Callable[[MmioCommand], None]] = None

    # ------------------------------------------------------------------ #
    # Address decoding
    # ------------------------------------------------------------------ #

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside the MMIO window."""
        return self.base_address <= address < self.base_address + 4 * self.WINDOW_WORDS

    def _register_at(self, address: int) -> MmioRegister:
        if not self.contains(address):
            raise ValueError(f"address {address:#x} outside the MMIO window")
        return MmioRegister((address - self.base_address) // 4)

    # ------------------------------------------------------------------ #
    # Core-side accesses
    # ------------------------------------------------------------------ #

    def store(self, address: int, value: int) -> int:
        """A core stores ``value`` to an MMIO register; returns access latency."""
        register = self._register_at(address)
        self.registers[register] = value
        self.counters.add("mmio.stores", 1)
        if register is MmioRegister.START and value:
            self._latch_command("gemm")
        elif register is MmioRegister.DMA_START and value:
            self._latch_command("dma")
        return self.store_latency

    def load(self, address: int) -> int:
        """A core loads an MMIO register (polling); returns the value."""
        register = self._register_at(address)
        self.counters.add("mmio.loads", 1)
        if register is MmioRegister.STATUS:
            return 1 if self.status is CommandStatus.BUSY else 0
        return self.registers[register]

    # ------------------------------------------------------------------ #
    # Device side
    # ------------------------------------------------------------------ #

    def on_command(self, callback: Callable[[MmioCommand], None]) -> None:
        """Register the device callback invoked when a command is latched."""
        self._completion_callback = callback

    def _latch_command(self, kind: str) -> None:
        if self.status is CommandStatus.BUSY:
            raise RuntimeError(
                "a command was started while the unit is busy; the kernel must "
                "fence before reprogramming the unit"
            )
        command = MmioCommand(kind=kind, operands=dict(self.registers))
        self.commands.append(command)
        self.status = CommandStatus.BUSY
        self.counters.add("mmio.commands", 1)
        if self._completion_callback is not None:
            self._completion_callback(command)

    def complete(self, command: MmioCommand, cycle: int = 0) -> None:
        """Mark ``command`` finished and free the unit."""
        command.complete_cycle = cycle
        self.status = CommandStatus.DONE

    # ------------------------------------------------------------------ #
    # Synchronization modelling
    # ------------------------------------------------------------------ #

    def poll_until_done(self, expected_busy_cycles: int, poll_interval: int = 10) -> int:
        """Model the ``virgo_fence`` busy-polling loop.

        Returns the number of polling loads the core issues while waiting for
        a command that takes ``expected_busy_cycles`` to complete, and counts
        them.  The paper measures this interval at ~260 cycles on average for
        FlashAttention-3 (Section 4.5.1).
        """
        if expected_busy_cycles < 0:
            raise ValueError("busy cycles must be non-negative")
        polls = 1 + expected_busy_cycles // max(1, poll_interval)
        self.counters.add("mmio.loads", polls)
        self.counters.add("mmio.poll_cycles", polls * self.poll_latency)
        return polls
