"""Preset design configurations for the four evaluated GPU designs (Table 2).

All presets share the same SoC substrate (one cluster, 128 KB shared memory,
512 KB L2, 400 MHz) and, importantly, the same number of MAC units per
cluster (256 FP16 MACs / 128 FP32 MACs) so that comparisons isolate the
integration style rather than raw compute capacity -- exactly the
"fair comparison" constraint the paper imposes.
"""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import Dict, List

from repro.config.soc import (
    ClusterConfig,
    CoreConfig,
    DataType,
    DesignConfig,
    DmaConfig,
    DramConfig,
    IntegrationStyle,
    MatrixUnitConfig,
    SharedMemoryConfig,
    SoCConfig,
)


class DesignKind(enum.Enum):
    """Shorthand names for the evaluated design points."""

    VOLTA = "volta"
    AMPERE = "ampere"
    HOPPER = "hopper"
    VIRGO = "virgo"

    @property
    def display_name(self) -> str:
        return {
            DesignKind.VOLTA: "Volta-style",
            DesignKind.AMPERE: "Ampere-style",
            DesignKind.HOPPER: "Hopper-style",
            DesignKind.VIRGO: "Virgo",
        }[self]


def _base_core() -> CoreConfig:
    return CoreConfig()


def _base_shared_memory(subbanks: int = 8) -> SharedMemoryConfig:
    return SharedMemoryConfig(subbanks=subbanks)


def volta_style(dtype: DataType = DataType.FP16) -> DesignConfig:
    """Tightly-coupled matrix unit fed from the register file, no DMA.

    Eight cores per cluster, one 32-MAC (FP16) tensor core per core, tile
    size 8x8x16, operands and accumulators staged through the register file.
    The shared memory uses the 2x more aggressive banking the paper applies
    to keep the tensor cores from being bandwidth-bound (Section 6.1.3).
    """
    macs = 32 if dtype is DataType.FP16 else 16
    unit = MatrixUnitConfig(
        style=IntegrationStyle.TIGHTLY_COUPLED,
        dtype=dtype,
        macs_per_cycle=macs,
        tile_m=8,
        tile_n=8,
        tile_k=16 if dtype is DataType.FP16 else 8,
        cycles_per_step=2,
        accumulator_bytes=0,
        operand_buffer_bytes=512,
    )
    cluster = ClusterConfig(
        cores=8,
        core=_base_core(),
        shared_memory=_base_shared_memory(subbanks=16),
        dma=DmaConfig(present=False),
        matrix_unit=unit,
        matrix_units=8,
    )
    return DesignConfig(
        name="Volta-style",
        style=IntegrationStyle.TIGHTLY_COUPLED,
        soc=SoCConfig(cluster=cluster),
    )


def ampere_style(dtype: DataType = DataType.FP16) -> DesignConfig:
    """Volta-style tightly-coupled unit plus a cluster DMA engine."""
    base = volta_style(dtype)
    unit = replace(base.matrix_unit, style=IntegrationStyle.TIGHTLY_COUPLED_DMA)
    cluster = replace(
        base.soc.cluster,
        dma=DmaConfig(present=True),
        matrix_unit=unit,
    )
    return DesignConfig(
        name="Ampere-style",
        style=IntegrationStyle.TIGHTLY_COUPLED_DMA,
        soc=replace(base.soc, cluster=cluster),
    )


def hopper_style(dtype: DataType = DataType.FP16) -> DesignConfig:
    """Operand-decoupled matrix unit sourcing operands from shared memory.

    Four cores per cluster, one 64-MAC (FP16) unit per core, tile size
    16x16x32, asynchronous wgmma-like interface, accumulators still in the
    register file.  A DMA engine is present, as in the paper.
    """
    macs = 64 if dtype is DataType.FP16 else 32
    unit = MatrixUnitConfig(
        style=IntegrationStyle.OPERAND_DECOUPLED,
        dtype=dtype,
        macs_per_cycle=macs,
        tile_m=16,
        tile_n=16,
        tile_k=32 if dtype is DataType.FP16 else 16,
        cycles_per_step=1,
        accumulator_bytes=0,
        operand_buffer_bytes=2 * 1024,
    )
    cluster = ClusterConfig(
        cores=4,
        core=_base_core(),
        shared_memory=_base_shared_memory(subbanks=8),
        dma=DmaConfig(present=True),
        matrix_unit=unit,
        matrix_units=4,
    )
    return DesignConfig(
        name="Hopper-style",
        style=IntegrationStyle.OPERAND_DECOUPLED,
        soc=SoCConfig(cluster=cluster),
    )


def virgo(dtype: DataType = DataType.FP16) -> DesignConfig:
    """Virgo: a single disaggregated matrix unit per cluster.

    A Gemmini-style 16x16 (FP16) systolic array with a private 32 KB
    accumulator SRAM, controlled over MMIO and fed directly from the
    cluster shared memory.  The operation tile exposed to software is
    128x64x128.
    """
    if dtype is DataType.FP16:
        rows = cols = 16
        tile_m, tile_n, tile_k = 128, 64, 128
    else:
        rows = cols = 8
        tile_m, tile_n, tile_k = 64, 64, 64
    unit = MatrixUnitConfig(
        style=IntegrationStyle.DISAGGREGATED,
        dtype=dtype,
        macs_per_cycle=rows * cols,
        tile_m=tile_m,
        tile_n=tile_n,
        tile_k=tile_k,
        systolic_rows=rows,
        systolic_cols=cols,
        accumulator_bytes=32 * 1024,
        operand_buffer_bytes=4 * 1024,
    )
    cluster = ClusterConfig(
        cores=8,
        core=_base_core(),
        shared_memory=_base_shared_memory(subbanks=8),
        dma=DmaConfig(present=True),
        matrix_unit=unit,
        matrix_units=1,
    )
    return DesignConfig(
        name="Virgo",
        style=IntegrationStyle.DISAGGREGATED,
        soc=SoCConfig(cluster=cluster),
    )


_FACTORIES = {
    DesignKind.VOLTA: volta_style,
    DesignKind.AMPERE: ampere_style,
    DesignKind.HOPPER: hopper_style,
    DesignKind.VIRGO: virgo,
}


def make_design(kind: DesignKind, dtype: DataType = DataType.FP16) -> DesignConfig:
    """Build the preset :class:`DesignConfig` for ``kind``."""
    design = _FACTORIES[kind](dtype)
    design.validate()
    return design


def all_designs(dtype: DataType = DataType.FP16) -> Dict[DesignKind, DesignConfig]:
    """All four evaluated design points, keyed by :class:`DesignKind`."""
    return {kind: make_design(kind, dtype) for kind in DesignKind}


def gemm_design_kinds() -> List[DesignKind]:
    """Design kinds compared in the GEMM evaluation (Table 3, Figures 8-11)."""
    return [DesignKind.VOLTA, DesignKind.AMPERE, DesignKind.HOPPER, DesignKind.VIRGO]
