"""Hardware configuration dataclasses and design presets (paper Table 2)."""

from repro.config.soc import (
    CacheConfig,
    ClusterConfig,
    CoreConfig,
    DataType,
    DesignConfig,
    DmaConfig,
    DramConfig,
    IntegrationStyle,
    MatrixUnitConfig,
    RegisterFileConfig,
    SharedMemoryConfig,
    SoCConfig,
)
from repro.config.presets import (
    DesignKind,
    make_design,
    volta_style,
    ampere_style,
    hopper_style,
    virgo,
    all_designs,
)

__all__ = [
    "CacheConfig",
    "ClusterConfig",
    "CoreConfig",
    "DataType",
    "DesignConfig",
    "DmaConfig",
    "DramConfig",
    "IntegrationStyle",
    "MatrixUnitConfig",
    "RegisterFileConfig",
    "SharedMemoryConfig",
    "SoCConfig",
    "DesignKind",
    "make_design",
    "volta_style",
    "ampere_style",
    "hopper_style",
    "virgo",
    "all_designs",
]
