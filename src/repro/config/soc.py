"""Hardware configuration dataclasses for the evaluated GPU designs.

The values mirror Table 2 of the Virgo paper.  Every component model in the
package is parameterized by these dataclasses, so alternative design points
(more cores, different bank counts, larger systolic arrays) can be explored
by constructing a modified :class:`DesignConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Tuple


class DataType(enum.Enum):
    """Numeric data types supported by the matrix units."""

    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return 2 if self is DataType.FP16 else 4


class IntegrationStyle(enum.Enum):
    """How the matrix unit is integrated with the SIMT core (Section 2.5)."""

    TIGHTLY_COUPLED = "tightly_coupled"          # Volta-style
    TIGHTLY_COUPLED_DMA = "tightly_coupled_dma"  # Ampere-style
    OPERAND_DECOUPLED = "operand_decoupled"      # Hopper-style
    DISAGGREGATED = "disaggregated"              # Virgo


@dataclass(frozen=True)
class RegisterFileConfig:
    """Per-core register file, SIMT-privatized across warps."""

    int_bytes: int = 8 * 1024
    fp_bytes: int = 8 * 1024
    read_ports: int = 3
    write_ports: int = 1
    banks: int = 4

    @property
    def total_bytes(self) -> int:
        return self.int_bytes + self.fp_bytes

    def bytes_per_warp(self, warps_per_core: int) -> int:
        """Register space privatized to one warp (used for tile sizing)."""
        if warps_per_core <= 0:
            raise ValueError("warps_per_core must be positive")
        return self.fp_bytes // warps_per_core


@dataclass(frozen=True)
class CacheConfig:
    """A simple set-associative cache."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 4
    hit_latency: int = 4
    miss_penalty: int = 30
    mshrs: int = 8

    @property
    def sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.ways))


@dataclass(frozen=True)
class DramConfig:
    """Off-chip main memory channel."""

    bandwidth_bytes_per_cycle: float = 32.0
    latency_cycles: int = 100
    #: HBM capacity available for resident KV-cache state.  The serving
    #: control plane (``repro.workloads.control``) bounds admission against
    #: this budget; the default is generous enough that it never binds on the
    #: trace zoo unless a tighter budget is passed explicitly.
    hbm_capacity_bytes: int = 8 * 1024 ** 3


@dataclass(frozen=True)
class SharedMemoryConfig:
    """Cluster-level shared memory with two-dimensional banking (Section 3.2.1)."""

    size_bytes: int = 128 * 1024
    banks: int = 4
    subbanks: int = 8
    word_bytes: int = 4
    access_latency: int = 2

    @property
    def bank_width_bytes(self) -> int:
        """Width of a single wide (matrix-unit) access to one bank."""
        return self.subbanks * self.word_bytes

    @property
    def peak_bytes_per_cycle(self) -> int:
        """Aggregate read bandwidth across all banks."""
        return self.banks * self.bank_width_bytes

    def scaled_banking(self, factor: int) -> "SharedMemoryConfig":
        """Return a copy with ``factor``-times more aggressive subbanking.

        This models the 2x bandwidth scaling the paper applies to the Volta
        and Ampere-style designs (Section 6.1.3).
        """
        return replace(self, subbanks=self.subbanks * factor)


@dataclass(frozen=True)
class DmaConfig:
    """Cluster DMA engine for global <-> shared memory transfers."""

    present: bool = True
    bytes_per_cycle: float = 32.0
    program_latency: int = 20
    max_outstanding: int = 4


@dataclass(frozen=True)
class MatrixUnitConfig:
    """Configuration of one matrix unit instance.

    For core-coupled designs (Volta/Ampere/Hopper style) one instance exists
    per SIMT core; for Virgo a single instance exists per cluster.
    """

    style: IntegrationStyle
    dtype: DataType = DataType.FP16
    macs_per_cycle: int = 32
    tile_m: int = 8
    tile_n: int = 8
    tile_k: int = 16
    # Systolic-array geometry; only meaningful for the disaggregated unit.
    systolic_rows: int = 16
    systolic_cols: int = 16
    accumulator_bytes: int = 32 * 1024
    operand_buffer_bytes: int = 2 * 1024
    # Timing of the instruction-driven units (Volta/Ampere): cycles per HMMA
    # step instruction.
    cycles_per_step: int = 2

    @property
    def tile_shape(self) -> Tuple[int, int, int]:
        return (self.tile_m, self.tile_n, self.tile_k)

    @property
    def hmma_steps_per_tile(self) -> int:
        """HMMA step instructions needed per tile operation (Volta/Ampere).

        Each step occupies the dot-product units for ``cycles_per_step``
        cycles at ``macs_per_cycle`` MACs/cycle, so the step count follows
        from the tile's total MAC count.
        """
        return max(1, -(-self.tile_macs // (self.macs_per_cycle * self.cycles_per_step)))

    @property
    def tile_macs(self) -> int:
        """MAC operations in one tile-granular operation."""
        return self.tile_m * self.tile_n * self.tile_k

    @property
    def tile_cycles_ideal(self) -> float:
        """Ideal cycles to compute one tile at full MAC throughput."""
        return self.tile_macs / float(self.macs_per_cycle)

    @property
    def operand_bytes_per_tile(self) -> int:
        """Bytes of A and B operand data consumed by one tile operation."""
        elem = self.dtype.bytes
        return elem * (self.tile_m * self.tile_k + self.tile_k * self.tile_n)

    @property
    def accumulator_bytes_per_tile(self) -> int:
        """Bytes of accumulator (C) data produced by one tile operation.

        Accumulators are always kept at FP32 precision, matching both the
        Tensor Core and Gemmini behaviour.
        """
        return 4 * self.tile_m * self.tile_n


@dataclass(frozen=True)
class CoreConfig:
    """A Vortex-like SIMT core."""

    warps: int = 8
    lanes: int = 8
    alus_per_lane: int = 2
    fpus_per_lane: int = 1
    lsq_entries: int = 32
    issue_width: int = 1
    register_file: RegisterFileConfig = field(default_factory=RegisterFileConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 * 1024))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 * 1024))

    @property
    def threads(self) -> int:
        return self.warps * self.lanes

    @property
    def simt_flops_per_cycle(self) -> int:
        """Peak FP32 FLOPs per cycle from the SIMD units (1 FMA = 2 FLOPs)."""
        return 2 * self.lanes * self.fpus_per_lane


@dataclass(frozen=True)
class ClusterConfig:
    """A SIMT core cluster (Streaming Multiprocessor / Compute Unit analogue)."""

    cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    shared_memory: SharedMemoryConfig = field(default_factory=SharedMemoryConfig)
    dma: DmaConfig = field(default_factory=DmaConfig)
    matrix_unit: MatrixUnitConfig = field(
        default_factory=lambda: MatrixUnitConfig(style=IntegrationStyle.TIGHTLY_COUPLED)
    )
    # Number of matrix unit instances in the cluster.  For core-coupled
    # styles this equals ``cores``; for Virgo it is typically 1.
    matrix_units: int = 8

    @property
    def total_macs_per_cycle(self) -> int:
        return self.matrix_units * self.matrix_unit.macs_per_cycle

    @property
    def total_warps(self) -> int:
        return self.cores * self.core.warps

    @property
    def total_lanes(self) -> int:
        return self.cores * self.core.lanes


@dataclass(frozen=True)
class SoCConfig:
    """Whole-SoC configuration: clusters, L2 and DRAM."""

    clusters: int = 1
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=512 * 1024, hit_latency=20, miss_penalty=80)
    )
    dram: DramConfig = field(default_factory=DramConfig)
    clock_mhz: float = 400.0

    @property
    def clock_period_ns(self) -> float:
        return 1000.0 / self.clock_mhz

    @property
    def total_macs_per_cycle(self) -> int:
        return self.clusters * self.cluster.total_macs_per_cycle

    def peak_matrix_tflops(self) -> float:
        """Peak matrix throughput in TFLOP/s (1 MAC = 2 FLOPs)."""
        return 2.0 * self.total_macs_per_cycle * self.clock_mhz * 1e6 / 1e12


@dataclass(frozen=True)
class DesignConfig:
    """A named design point: an SoC configuration plus its integration style."""

    name: str
    style: IntegrationStyle
    soc: SoCConfig

    @property
    def cluster(self) -> ClusterConfig:
        return self.soc.cluster

    @property
    def matrix_unit(self) -> MatrixUnitConfig:
        return self.soc.cluster.matrix_unit

    @property
    def has_dma(self) -> bool:
        return self.style is not IntegrationStyle.TIGHTLY_COUPLED

    @property
    def operands_from_shared_memory(self) -> bool:
        """True when the matrix unit reads operands directly from shared memory."""
        return self.style in (
            IntegrationStyle.OPERAND_DECOUPLED,
            IntegrationStyle.DISAGGREGATED,
        )

    @property
    def accumulator_in_register_file(self) -> bool:
        """True when accumulator tiles live in the core register file."""
        return self.style is not IntegrationStyle.DISAGGREGATED

    def validate(self) -> None:
        """Raise ``ValueError`` for internally inconsistent configurations."""
        cluster = self.soc.cluster
        if cluster.cores <= 0:
            raise ValueError("cluster must have at least one core")
        if cluster.matrix_units <= 0:
            raise ValueError("cluster must have at least one matrix unit")
        if self.style is IntegrationStyle.DISAGGREGATED:
            if cluster.matrix_unit.systolic_rows <= 0 or cluster.matrix_unit.systolic_cols <= 0:
                raise ValueError("disaggregated unit requires a systolic array geometry")
        else:
            if cluster.matrix_units != cluster.cores:
                raise ValueError(
                    "core-coupled designs must have one matrix unit per core "
                    f"(got {cluster.matrix_units} units for {cluster.cores} cores)"
                )
        if self.style is IntegrationStyle.TIGHTLY_COUPLED and cluster.dma.present:
            raise ValueError("Volta-style design must not instantiate a DMA engine")
