"""Cycle-level issue-stage simulator for one Vortex SIMT core.

The simulator replays per-warp instruction streams through a warp scheduler,
modelling the hazards that throttle core-coupled matrix units:

* **Issue bandwidth** -- one instruction per cycle per core (Vortex single
  issue).  Designs that need many instructions per tile (Volta/Ampere-style
  HMMA set/step sequences plus explicit shared-memory loads and address
  generation) saturate this before they saturate the MAC array.
* **Structural hazards** -- the per-core tensor core serializes HMMA steps
  (2 cycles each); the load/store unit accepts one memory instruction per
  cycle; the FPU accepts one FP instruction per cycle.
* **Latency hazards** -- warps block on dependent long-latency results
  (shared/global loads feeding the next instruction, synchronous matrix
  waits, barriers, MMIO polls).  Multithreading across the other warps hides
  the latency when enough eligible warps exist, exactly the mechanism whose
  limits Section 6.2 discusses.

The simulator is deliberately register-agnostic: whether a warp blocks after
a long-latency instruction is decided by the instruction class (see
``_BLOCKING``), which matches how the kernel models encode dependent
sequences (a load immediately followed by its consumer is emitted as a
blocking load; independent prefetches are emitted as non-blocking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config.soc import CoreConfig
from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import WarpProgram
from repro.simt.scheduler import GreedyThenOldestScheduler, RoundRobinScheduler
from repro.simt.warp import WarpState

#: Instruction classes whose latency blocks the issuing warp (dependent use).
_BLOCKING = {
    OpClass.LOAD_SHARED,
    OpClass.LOAD_GLOBAL,
    OpClass.WGMMA_WAIT,
    OpClass.MMIO_POLL,
    OpClass.BARRIER,
    OpClass.VX_BAR,
    OpClass.BRANCH,
}

#: Execution-unit occupancy (cycles the unit is busy per instruction).
_UNIT_OCCUPANCY = {
    OpClass.ALU: ("alu", 1),
    OpClass.FPU: ("fpu", 1),
    OpClass.SFU: ("fpu", 2),
    OpClass.LOAD_GLOBAL: ("lsu", 1),
    OpClass.STORE_GLOBAL: ("lsu", 1),
    OpClass.LOAD_SHARED: ("lsu", 1),
    OpClass.STORE_SHARED: ("lsu", 1),
    OpClass.MMIO_STORE: ("lsu", 1),
    OpClass.MMIO_POLL: ("lsu", 1),
    OpClass.DMA_PROGRAM: ("lsu", 1),
    OpClass.HMMA_SET: ("tensor", 1),
    OpClass.HMMA_STEP: ("tensor", 2),
    OpClass.WGMMA_INIT: ("tensor", 1),
}


@dataclass
class IssueResult:
    """Outcome of replaying an instruction stream on one core."""

    cycles: int
    instructions_issued: int
    stall_cycles: int
    issued_by_class: Dict[OpClass, int] = field(default_factory=dict)
    unit_busy_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions_issued / self.cycles if self.cycles else 0.0

    @property
    def issue_slot_utilization(self) -> float:
        return min(1.0, self.ipc)


class IssueSimulator:
    """Replays warp programs through the issue stage of one SIMT core."""

    def __init__(self, core: CoreConfig, scheduler: str = "round_robin") -> None:
        self.core = core
        self.scheduler_kind = scheduler

    def _make_scheduler(self):
        if self.scheduler_kind == "round_robin":
            return RoundRobinScheduler()
        if self.scheduler_kind == "gto":
            return GreedyThenOldestScheduler()
        raise ValueError(f"unknown scheduler {self.scheduler_kind!r}")

    def simulate(
        self,
        programs: Sequence[WarpProgram],
        max_cycles: int = 50_000_000,
    ) -> IssueResult:
        """Simulate one program per warp until every warp has drained.

        ``programs`` holds the stream of each active warp; pass the same
        program multiple times for warps that execute identical code.
        """
        if not programs:
            return IssueResult(cycles=0, instructions_issued=0, stall_cycles=0)
        if len(programs) > self.core.warps:
            raise ValueError(
                f"{len(programs)} warp programs exceed the core's {self.core.warps} warp slots"
            )

        warps: List[WarpState] = [
            WarpState(warp_id=index, program=list(program.instructions))
            for index, program in enumerate(programs)
        ]
        scheduler = self._make_scheduler()
        unit_free_at: Dict[str, int] = {"alu": 0, "fpu": 0, "lsu": 0, "tensor": 0}
        unit_busy: Dict[str, int] = {"alu": 0, "fpu": 0, "lsu": 0, "tensor": 0}
        issued_by_class: Dict[OpClass, int] = {}

        cycle = 0
        issued_total = 0
        stall_cycles = 0
        while any(not warp.done for warp in warps):
            if cycle > max_cycles:
                raise RuntimeError("issue simulation exceeded the cycle limit")
            warp = self._select_issuable(scheduler, warps, unit_free_at, cycle)
            if warp is None:
                stall_cycles += 1
                cycle += 1
                continue

            instruction = warp.advance(cycle)
            issued_total += 1
            issued_by_class[instruction.op_class] = (
                issued_by_class.get(instruction.op_class, 0) + 1
            )

            unit = _UNIT_OCCUPANCY.get(instruction.op_class)
            if unit is not None:
                unit_name, occupancy = unit
                start = max(cycle, unit_free_at[unit_name])
                unit_free_at[unit_name] = start + occupancy
                unit_busy[unit_name] += occupancy

            if instruction.op_class in _BLOCKING:
                warp.block(cycle + instruction.latency)
            cycle += 1

        return IssueResult(
            cycles=cycle,
            instructions_issued=issued_total,
            stall_cycles=stall_cycles,
            issued_by_class=issued_by_class,
            unit_busy_cycles=unit_busy,
        )

    def _select_issuable(
        self,
        scheduler,
        warps: Sequence[WarpState],
        unit_free_at: Dict[str, int],
        cycle: int,
    ) -> Optional[WarpState]:
        """Pick an eligible warp whose next instruction has no structural hazard."""
        considered = 0
        while considered < len(warps):
            warp = scheduler.select(warps, cycle)
            if warp is None:
                return None
            instruction = warp.peek()
            unit = _UNIT_OCCUPANCY.get(instruction.op_class)
            if unit is None or unit_free_at[unit[0]] <= cycle:
                return warp
            # Structural hazard: temporarily block this warp for this cycle so
            # the scheduler considers others, then retry.
            warp.block(cycle + 1)
            considered += 1
        return None
