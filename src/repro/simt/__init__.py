"""Vortex-like SIMT core models.

The package provides two levels of modelling:

* A cycle-level issue-stage simulator (:mod:`repro.simt.issue`) that replays
  per-warp instruction streams through a warp scheduler with structural and
  latency hazards.  Kernel models use it to determine how many cycles a core
  needs to issue one steady-state iteration.
* Analytical helpers: the register-file capacity model and the occupancy
  calculator used to regenerate Table 1.
"""

from repro.simt.warp import WarpState
from repro.simt.scheduler import RoundRobinScheduler, GreedyThenOldestScheduler
from repro.simt.register_file import RegisterFile, TileAllocation
from repro.simt.issue import IssueResult, IssueSimulator
from repro.simt.core import VortexCore, CoreExecutionResult
from repro.simt.occupancy import OccupancyCalculator, OccupancyResult, GpuGenerationSpec

__all__ = [
    "WarpState",
    "RoundRobinScheduler",
    "GreedyThenOldestScheduler",
    "RegisterFile",
    "TileAllocation",
    "IssueResult",
    "IssueSimulator",
    "VortexCore",
    "CoreExecutionResult",
    "OccupancyCalculator",
    "OccupancyResult",
    "GpuGenerationSpec",
]
