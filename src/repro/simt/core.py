"""The Vortex SIMT core: issue timing plus energy-event accounting.

``VortexCore.execute`` replays a set of warp programs through the issue-stage
simulator and, alongside the cycle count, emits the energy events the core
generates while doing so.  Event names follow the component grouping of the
paper's Figure 10 breakdown:

* ``core.issue.*``      -- instruction fetch/decode/scoreboard/scheduling and
  register-file reads (operand collection happens at issue in Vortex).
* ``core.alu.*``        -- integer ALU operations (address generation, loops).
* ``core.fpu.*``        -- SIMT floating-point operations.
* ``core.lsu.*``        -- load/store unit occupancy.
* ``core.writeback.*``  -- register-file writes.
* ``core.other.*``      -- branches, barriers, everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.config.soc import CoreConfig
from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import WarpProgram
from repro.sim.stats import Counters
from repro.simt.issue import IssueResult, IssueSimulator

#: Map from instruction class to the Figure 10 component that executes it.
_EXECUTION_COMPONENT: Dict[OpClass, str] = {
    OpClass.ALU: "alu",
    OpClass.BRANCH: "other",
    OpClass.FPU: "fpu",
    OpClass.SFU: "fpu",
    OpClass.LOAD_GLOBAL: "lsu",
    OpClass.STORE_GLOBAL: "lsu",
    OpClass.LOAD_SHARED: "lsu",
    OpClass.STORE_SHARED: "lsu",
    OpClass.MMIO_STORE: "lsu",
    OpClass.MMIO_POLL: "lsu",
    OpClass.DMA_PROGRAM: "lsu",
    OpClass.BARRIER: "other",
    OpClass.VX_BAR: "other",
    OpClass.HMMA_SET: "other",
    OpClass.HMMA_STEP: "other",
    OpClass.WGMMA_INIT: "other",
    OpClass.WGMMA_WAIT: "other",
    OpClass.NOP: "other",
}


@dataclass
class CoreExecutionResult:
    """Cycles and energy events for one core executing a set of warp programs."""

    issue: IssueResult
    counters: Counters

    @property
    def cycles(self) -> int:
        return self.issue.cycles

    @property
    def instructions(self) -> int:
        return self.issue.instructions_issued


class VortexCore:
    """One Vortex SIMT core: issue timing + per-instruction energy events."""

    def __init__(self, config: CoreConfig, scheduler: str = "round_robin") -> None:
        self.config = config
        self._issue_simulator = IssueSimulator(config, scheduler=scheduler)

    def execute(self, programs: Sequence[WarpProgram]) -> CoreExecutionResult:
        """Replay ``programs`` (one per active warp) and collect energy events."""
        issue = self._issue_simulator.simulate(programs)
        counters = Counters()
        for program in programs:
            self._count_program(program, counters)
        return CoreExecutionResult(issue=issue, counters=counters)

    def count_events(self, programs: Sequence[WarpProgram]) -> Counters:
        """Energy events only (no timing), for analytical replication."""
        counters = Counters()
        for program in programs:
            self._count_program(program, counters)
        return counters

    def _count_program(self, program: WarpProgram, counters: Counters) -> None:
        lanes = self.config.lanes
        for instruction in program.instructions:
            self._count_instruction(instruction, lanes, counters)

    def _count_instruction(
        self, instruction: Instruction, lanes: int, counters: Counters
    ) -> None:
        counters.add("core.issue.instructions", 1)
        # Operand collection: register reads are per-lane for SIMT operands.
        counters.add("core.issue.rf_read_words", instruction.reg_reads * lanes)
        counters.add("core.writeback.rf_write_words", instruction.reg_writes * lanes)

        component = _EXECUTION_COMPONENT[instruction.op_class]
        if component == "alu":
            counters.add("core.alu.ops", lanes)
        elif component == "fpu":
            counters.add("core.fpu.ops", lanes)
        elif component == "lsu":
            counters.add("core.lsu.requests", 1)
            counters.add("core.lsu.bytes", instruction.bytes_accessed)
        else:
            counters.add("core.other.ops", 1)

        if instruction.op_class in (OpClass.LOAD_SHARED, OpClass.STORE_SHARED):
            counters.add("smem.core_words", max(1, instruction.bytes_accessed // 4))
        elif instruction.op_class in (OpClass.LOAD_GLOBAL, OpClass.STORE_GLOBAL):
            counters.add("l1.requests", 1)
            counters.add("l1.bytes", instruction.bytes_accessed)

    def issue_cycles(self, programs: Sequence[WarpProgram]) -> int:
        """Cycles needed to issue ``programs`` on this core."""
        return self._issue_simulator.simulate(programs).cycles
