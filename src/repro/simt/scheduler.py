"""Warp scheduling policies for the issue-stage simulator.

Vortex uses a simple round-robin scheduler; modern GPUs favour
greedy-then-oldest (GTO).  Both are provided so the effect of the policy can
be studied, although the paper's conclusions do not hinge on it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.simt.warp import WarpState


class RoundRobinScheduler:
    """Loose round-robin: resume scanning after the last warp that issued."""

    def __init__(self) -> None:
        self._last = -1

    def select(self, warps: Sequence[WarpState], cycle: int) -> Optional[WarpState]:
        count = len(warps)
        if count == 0:
            return None
        for offset in range(1, count + 1):
            warp = warps[(self._last + offset) % count]
            if warp.eligible(cycle):
                self._last = warp.warp_id
                return warp
        return None


class GreedyThenOldestScheduler:
    """Keep issuing from the same warp while it is eligible, else pick the oldest.

    "Oldest" is approximated by the warp that has issued the fewest
    instructions so far, which matches the intent of prioritizing lagging
    warps.
    """

    def __init__(self) -> None:
        self._current: Optional[int] = None

    def select(self, warps: Sequence[WarpState], cycle: int) -> Optional[WarpState]:
        if self._current is not None:
            warp = warps[self._current]
            if warp.eligible(cycle):
                return warp
        candidates: List[WarpState] = [warp for warp in warps if warp.eligible(cycle)]
        if not candidates:
            return None
        chosen = min(candidates, key=lambda warp: (warp.issued, warp.warp_id))
        self._current = chosen.warp_id
        return chosen
