"""Warp occupancy calculator (reproduces Table 1's occupancy statistics).

Table 1 of the paper reports register usage and warp occupancy of CUTLASS
GEMM kernels on V100/A100/H100.  Those numbers were profiled on real GPUs;
here we implement the standard CUDA occupancy calculation -- warps resident
per SM limited by the register file, shared memory and the warp slot count --
and feed it the paper's reported per-thread register usage to regenerate the
occupancy column analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuGenerationSpec:
    """Resources of one streaming multiprocessor of a datacenter GPU."""

    name: str
    registers_per_sm: int = 65536
    max_warps_per_sm: int = 64
    max_threads_per_block: int = 1024
    shared_memory_per_sm: int = 164 * 1024
    threads_per_warp: int = 32
    register_allocation_granularity: int = 256
    tensor_fp16_tflops_rel: float = 1.0
    cuda_fp32_tflops_rel: float = 1.0
    tensor_cores_rel: float = 1.0
    macs_per_tensor_core: int = 64


#: SM resources and relative throughput scaling for the GPUs in Table 1.
GENERATIONS: Dict[str, GpuGenerationSpec] = {
    "V100": GpuGenerationSpec(
        name="V100",
        max_warps_per_sm=64,
        shared_memory_per_sm=96 * 1024,
        tensor_fp16_tflops_rel=1.0,
        cuda_fp32_tflops_rel=1.0,
        tensor_cores_rel=1.0,
        macs_per_tensor_core=64,
    ),
    "A100": GpuGenerationSpec(
        name="A100",
        max_warps_per_sm=64,
        shared_memory_per_sm=164 * 1024,
        tensor_fp16_tflops_rel=2.5,
        cuda_fp32_tflops_rel=1.2,
        tensor_cores_rel=0.7,
        macs_per_tensor_core=256,
    ),
    "H100": GpuGenerationSpec(
        name="H100",
        max_warps_per_sm=64,
        shared_memory_per_sm=228 * 1024,
        tensor_fp16_tflops_rel=7.9,
        cuda_fp32_tflops_rel=4.3,
        tensor_cores_rel=0.8,
        macs_per_tensor_core=512,
    ),
}

#: Per-thread register usage of the CUTLASS kernels profiled in Table 1.
TABLE1_REGISTER_USAGE: Dict[str, int] = {"V100": 224, "A100": 221, "H100": 168}

#: Threads per block of the profiled CUTLASS kernels (one per architecture).
TABLE1_THREADS_PER_BLOCK: Dict[str, int] = {"V100": 256, "A100": 256, "H100": 384}


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel on one GPU."""

    gpu: str
    registers_per_thread: int
    warps_per_sm: int
    max_warps_per_sm: int
    limiting_factor: str

    @property
    def occupancy(self) -> float:
        """Resident warps as a fraction of the SM's warp slots."""
        return self.warps_per_sm / float(self.max_warps_per_sm)


class OccupancyCalculator:
    """Standard register/shared-memory/warp-slot occupancy calculation."""

    def __init__(self, spec: GpuGenerationSpec) -> None:
        self.spec = spec

    def _registers_per_warp(self, registers_per_thread: int) -> int:
        raw = registers_per_thread * self.spec.threads_per_warp
        granule = self.spec.register_allocation_granularity
        return ((raw + granule - 1) // granule) * granule

    def warps_limited_by_registers(self, registers_per_thread: int) -> int:
        if registers_per_thread <= 0:
            return self.spec.max_warps_per_sm
        per_warp = self._registers_per_warp(registers_per_thread)
        return max(0, self.spec.registers_per_sm // per_warp)

    def warps_limited_by_shared_memory(
        self, shared_memory_per_block: int, warps_per_block: int
    ) -> int:
        if shared_memory_per_block <= 0:
            return self.spec.max_warps_per_sm
        blocks = self.spec.shared_memory_per_sm // shared_memory_per_block
        return blocks * warps_per_block

    def calculate(
        self,
        registers_per_thread: int,
        threads_per_block: int = 256,
        shared_memory_per_block: int = 0,
    ) -> OccupancyResult:
        """Compute resident warps per SM and the limiting resource."""
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        warps_per_block = max(1, threads_per_block // self.spec.threads_per_warp)

        limits = {
            "warp_slots": self.spec.max_warps_per_sm,
            "registers": self.warps_limited_by_registers(registers_per_thread),
            "shared_memory": self.warps_limited_by_shared_memory(
                shared_memory_per_block, warps_per_block
            ),
        }
        # Resident warps come in whole thread blocks.
        feasible_blocks = min(limit // warps_per_block for limit in limits.values())
        warps = feasible_blocks * warps_per_block
        limiting = min(limits, key=lambda key: limits[key] // warps_per_block)
        return OccupancyResult(
            gpu=self.spec.name,
            registers_per_thread=registers_per_thread,
            warps_per_sm=warps,
            max_warps_per_sm=self.spec.max_warps_per_sm,
            limiting_factor=limiting,
        )


def table1_occupancies() -> Dict[str, OccupancyResult]:
    """Occupancy of the Table 1 CUTLASS kernels, computed from register usage."""
    results: Dict[str, OccupancyResult] = {}
    for gpu, spec in GENERATIONS.items():
        calculator = OccupancyCalculator(spec)
        results[gpu] = calculator.calculate(
            registers_per_thread=TABLE1_REGISTER_USAGE[gpu],
            threads_per_block=TABLE1_THREADS_PER_BLOCK[gpu],
        )
    return results
