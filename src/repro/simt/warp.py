"""Per-warp execution state used by the issue-stage simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import Instruction


@dataclass
class WarpState:
    """State of one warp inside the issue-stage simulator.

    A warp holds its instruction stream, a program counter, and a
    ``blocked_until`` cycle set when the warp must wait for a long-latency
    result (a dependent load, a synchronous matrix instruction, a barrier).
    """

    warp_id: int
    program: List[Instruction] = field(default_factory=list)
    pc: int = 0
    blocked_until: int = 0
    issued: int = 0
    stall_cycles: int = 0
    finished_at: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)

    def eligible(self, cycle: int) -> bool:
        """A warp may issue when it has instructions left and is not blocked."""
        return not self.done and cycle >= self.blocked_until

    def peek(self) -> Instruction:
        if self.done:
            raise IndexError(f"warp {self.warp_id} has no instructions left")
        return self.program[self.pc]

    def advance(self, cycle: int) -> Instruction:
        """Consume the next instruction at ``cycle`` and return it."""
        instruction = self.peek()
        self.pc += 1
        self.issued += 1
        if self.done:
            self.finished_at = cycle
        return instruction

    def block(self, until: int) -> None:
        """Block the warp until the given absolute cycle."""
        self.blocked_until = max(self.blocked_until, until)
