"""Register file capacity model.

The register file is SIMT-privatized across warps (Section 3.2.2): each warp
owns ``fp_bytes / warps`` bytes.  Core-coupled matrix units must fit both
operand fragments and the accumulator tile inside that per-warp slice, which
is exactly the scalability constraint Virgo removes.  The model exposes the
largest tile a given integration style can support, and tracks allocations so
tests can exercise the capacity and spill behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.config.soc import DataType, RegisterFileConfig


class RegisterAllocationError(Exception):
    """Raised when an allocation does not fit in the per-warp register space."""


@dataclass
class TileAllocation:
    """One named allocation inside a warp's register slice."""

    name: str
    bytes: int


@dataclass
class RegisterFile:
    """Per-core register file with per-warp privatized slices."""

    config: RegisterFileConfig
    warps: int
    _allocations: Dict[int, List[TileAllocation]] = field(default_factory=dict)

    @property
    def bytes_per_warp(self) -> int:
        return self.config.bytes_per_warp(self.warps)

    def allocated_bytes(self, warp_id: int) -> int:
        return sum(item.bytes for item in self._allocations.get(warp_id, []))

    def free_bytes(self, warp_id: int) -> int:
        return self.bytes_per_warp - self.allocated_bytes(warp_id)

    def allocate(self, warp_id: int, name: str, nbytes: int) -> TileAllocation:
        """Reserve ``nbytes`` in ``warp_id``'s slice or raise if it does not fit."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free_bytes(warp_id):
            raise RegisterAllocationError(
                f"warp {warp_id}: cannot allocate {nbytes} B ({name}); "
                f"only {self.free_bytes(warp_id)} B of {self.bytes_per_warp} B free"
            )
        allocation = TileAllocation(name=name, bytes=nbytes)
        self._allocations.setdefault(warp_id, []).append(allocation)
        return allocation

    def release(self, warp_id: int, name: str) -> None:
        items = self._allocations.get(warp_id, [])
        for index, item in enumerate(items):
            if item.name == name:
                del items[index]
                return
        raise KeyError(f"warp {warp_id} has no allocation named {name!r}")

    def reset(self) -> None:
        self._allocations.clear()


def max_tile_for_register_space(
    bytes_per_warp: int,
    dtype: DataType,
    operands_in_register_file: bool,
    accumulator_in_register_file: bool,
    square_k_factor: int = 2,
) -> Tuple[int, int, int]:
    """Largest square-ish (m, n, k) tile that fits in a warp's register slice.

    This reproduces the paper's tile-size derivations (Section 5.1): with 1 KiB
    of per-warp FP register space, a tightly-coupled unit fits two 8x16 FP16
    operands plus an 8x8 FP32 accumulator (tile 8x8x16); an operand-decoupled
    unit, which only keeps the accumulator in registers, fits a 16x16 FP32
    accumulator (tile 16x16x32 with k = ``square_k_factor`` * m).

    The search assumes m == n and k == square_k_factor * m, doubling m until
    the footprint no longer fits.
    """
    if bytes_per_warp <= 0:
        raise ValueError("bytes_per_warp must be positive")
    accum_bytes_per_elem = 4  # accumulators are FP32 in all designs
    best = (0, 0, 0)
    m = 1
    while m <= 1024:
        n = m
        k = square_k_factor * m
        footprint = 0
        if operands_in_register_file:
            footprint += dtype.bytes * (m * k + k * n)
        if accumulator_in_register_file:
            footprint += accum_bytes_per_elem * m * n
        if footprint <= bytes_per_warp:
            best = (m, n, k)
            m *= 2
        else:
            break
    if best == (0, 0, 0):
        raise RegisterAllocationError(
            f"no tile fits in {bytes_per_warp} B of per-warp register space"
        )
    return best
