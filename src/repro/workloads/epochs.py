"""Epoch-level compression primitives for continuous-batching serving.

The steady-state insight that powers the tile-loop level
(:mod:`repro.sim.steady_state`: execute one period, extrapolate the rest in
closed form, bit-identically) lifts to the *serving* level.  Between
transients -- arrivals, finishes, bucket crossings, preemptions, shedding,
injected faults, any control-plane decision point -- the continuous-batching
composition stream (the ordered (model, bucketed-context, unit) keys the
iteration memo uses) is piecewise *constant*: nothing in the system can
change until a request finishes its decode budget, crosses a KV bucket, or
a new arrival lands.  Once the iteration memo proves the composition's
outcome is known, the whole run of invariant iterations -- an **epoch** --
advances arithmetically: per-request step counts, span, energy, busy cycles
and KV-residency evolution, exactly the way ``execute_flash_loop``
extrapolates KV tiles.

Two granularities compose (both consumed by
:class:`repro.workloads.serving.ServingScheduler`, gated behind
``epoch_compression`` / ``--epoch-compression``):

* :class:`EpochRecord` -- a run of iterations with one invariant batch
  composition, extrapolated in closed form from one memoized outcome.  The
  horizon (:func:`epoch_horizon`) is the exact number of iterations until
  the first transient: the soonest finish, the soonest KV-bucket crossing,
  the next arrival's boundary, or (under fault injection) the next
  spiked/stalled iteration (:func:`clean_fault_run`).
* :class:`EpisodeRun` -- a vectorized run of *whole requests*: when the
  system is idle and consecutive same-shape arrivals are spaced farther
  apart than one request's total solo service time, each request's entire
  lifecycle replays a learned :class:`EpisodeTemplate` (the solo segment
  list recorded the first time that shape served alone), and every
  per-request stamp is one numpy add over the arrival vector.

Exactness is the whole point: every extrapolated quantity is an integer
advanced by ``n * delta`` (exact), except energy, which the exact loop
accumulates as a sequential float sum -- :func:`accumulate_energy`
reproduces that bit-for-bit via ``np.cumsum`` (strictly sequential, no
pairwise reassociation), so compressed and exact runs serialize
byte-identically (``tests/test_epochs.py``, the differential harness).

:class:`IterationTimeline` keeps the result surface honest without forcing
expansion: it is a lazy ``Sequence`` of
:class:`IterationRecord` whose aggregates (length, decode steps, batch
histogram) are O(#segments), and whose per-record iteration view expands
only when something (``to_dict``) actually walks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.graph import RequestSpec

__all__ = [
    "EpisodeRun",
    "EpisodeSegment",
    "EpisodeTemplate",
    "EpochRecord",
    "IterationRecord",
    "IterationTimeline",
    "accumulate_energy",
    "build_episode_template",
    "clean_fault_run",
    "epoch_horizon",
    "fresh_epoch_stats",
]


@dataclass
class IterationRecord:
    """One continuous-batching iteration: who ran, for how long."""

    index: int
    start_cycle: int
    span_cycles: int
    batch: int
    request_ids: List[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "span_cycles": self.span_cycles,
            "batch": self.batch,
            "request_ids": list(self.request_ids),
        }


@dataclass
class EpochRecord:
    """A run of ``count`` iterations with one invariant batch composition.

    Everything per-iteration is constant across the epoch -- the span, the
    batch, the composition -- so the concrete iteration records are a pure
    arithmetic function of (``index``, ``start_cycle``, ``span_cycles``) and
    expand lazily, byte-identical to the records exact simulation appends.
    """

    index: int
    start_cycle: int
    span_cycles: int
    count: int
    request_ids: List[str]

    @property
    def batch(self) -> int:
        return len(self.request_ids)

    @property
    def iteration_count(self) -> int:
        return self.count

    @property
    def decode_steps(self) -> int:
        return self.count * len(self.request_ids)

    @property
    def total_span(self) -> int:
        return self.count * self.span_cycles

    def record_at(self, offset: int) -> IterationRecord:
        return IterationRecord(
            index=self.index + offset,
            start_cycle=self.start_cycle + offset * self.span_cycles,
            span_cycles=self.span_cycles,
            batch=len(self.request_ids),
            request_ids=list(self.request_ids),
        )

    def records(self) -> Iterator[IterationRecord]:
        for offset in range(self.count):
            yield self.record_at(offset)


@dataclass(frozen=True)
class EpisodeSegment:
    """One invariant-composition stretch of a request's solo service.

    ``end_cycle`` is the iteration-relative cycle at which the request's
    decode step retires (its batch position's entry end); for a solo batch
    it doubles as the first-token offset of the segment's first iteration.
    """

    count: int
    span_cycles: int
    end_cycle: int
    kernel_count: int
    energy_uj: float
    resource_busy: Tuple[Tuple[str, int], ...]
    cache_lookups: int


@dataclass(frozen=True, eq=False)
class EpisodeTemplate:
    """The full solo-service shape of one request spec, in closed form.

    Learned by instrumenting the exact loop the first time a request of a
    given (model, prompt, decode-budget) shape serves alone from an idle
    system to a clean finish; every later same-shape request whose arrival
    spacing guarantees solo service replays it arithmetically.  All derived
    totals are precomputed once (:func:`build_episode_template`) so a run of
    R requests costs O(R) numpy work, not O(R x iterations).
    """

    segments: Tuple[EpisodeSegment, ...]
    total_iterations: int
    total_span: int
    #: First-token offset: the first segment's first iteration end.
    first_token_end: int
    #: Finish offset from the request's start: full span minus the last
    #: iteration's span plus that iteration's step-end cycle.
    finish_offset: int
    total_kernels: int
    total_lookups: int
    busy_totals: Tuple[Tuple[str, int], ...]
    #: Per-iteration energy sequence (float64, ``total_iterations`` long) --
    #: the exact addend order the sequential loop would accumulate.
    energy_pattern: np.ndarray


def build_episode_template(segments: Sequence[EpisodeSegment]) -> EpisodeTemplate:
    """Precompute an :class:`EpisodeTemplate`'s closed-form totals."""
    if not segments:
        raise ValueError("an episode template needs at least one segment")
    segs = tuple(segments)
    total_iterations = sum(segment.count for segment in segs)
    total_span = sum(segment.count * segment.span_cycles for segment in segs)
    busy: Dict[str, int] = {}
    for segment in segs:
        for resource, cycles in segment.resource_busy:
            busy[resource] = busy.get(resource, 0) + segment.count * cycles
    last = segs[-1]
    return EpisodeTemplate(
        segments=segs,
        total_iterations=total_iterations,
        total_span=total_span,
        first_token_end=segs[0].end_cycle,
        finish_offset=total_span - last.span_cycles + last.end_cycle,
        total_kernels=sum(segment.count * segment.kernel_count for segment in segs),
        total_lookups=sum(segment.count * segment.cache_lookups for segment in segs),
        busy_totals=tuple(sorted(busy.items())),
        energy_pattern=np.repeat(
            np.array([segment.energy_uj for segment in segs], dtype=np.float64),
            [segment.count for segment in segs],
        ),
    )


@dataclass(eq=False)
class EpisodeRun:
    """A vectorized run of whole requests, each replaying one template.

    ``arrivals`` holds each request's absolute start cycle (its arrival:
    the spacing precondition guarantees the system was idle, so admission
    is immediate and queueing is zero under every shipped policy).
    Iteration records expand lazily per request, per template segment.
    """

    index: int
    template: EpisodeTemplate
    arrivals: np.ndarray
    requests: List[RequestSpec]

    @property
    def request_count(self) -> int:
        return len(self.requests)

    @property
    def iteration_count(self) -> int:
        return len(self.requests) * self.template.total_iterations

    @property
    def decode_steps(self) -> int:
        # Solo service: every iteration decodes exactly one step.
        return self.iteration_count

    def record_at(self, offset: int) -> IterationRecord:
        per_request = self.template.total_iterations
        which, within = divmod(offset, per_request)
        start = int(self.arrivals[which])
        index = self.index + which * per_request
        for segment in self.template.segments:
            if within < segment.count:
                return IterationRecord(
                    index=index + within,
                    start_cycle=start + within * segment.span_cycles,
                    span_cycles=segment.span_cycles,
                    batch=1,
                    request_ids=[self.requests[which].request_id],
                )
            within -= segment.count
            index += segment.count
            start += segment.count * segment.span_cycles
        raise IndexError(offset)

    def records(self) -> Iterator[IterationRecord]:
        index = self.index
        for arrival, request in zip(self.arrivals.tolist(), self.requests):
            start = arrival
            ids = [request.request_id]
            for segment in self.template.segments:
                for _ in range(segment.count):
                    yield IterationRecord(
                        index=index,
                        start_cycle=start,
                        span_cycles=segment.span_cycles,
                        batch=1,
                        request_ids=list(ids),
                    )
                    index += 1
                    start += segment.span_cycles


#: A timeline segment: one exact iteration or one extrapolated run.
TimelineSegment = Union[IterationRecord, EpochRecord, EpisodeRun]


class IterationTimeline(Sequence):
    """A lazy sequence of :class:`IterationRecord` over mixed segments.

    Behaves like the plain ``List[IterationRecord]`` it replaces --
    ``len``, iteration, indexing and slicing all yield per-iteration
    records byte-identical to exact simulation's -- while storing
    extrapolated runs compressed.  Aggregates every hot consumer needs
    (iteration count, decode steps, the batch histogram inputs) are O(1)
    or O(#segments), so a million-iteration run never expands unless a
    caller explicitly serializes it.
    """

    __slots__ = ("_segments", "_iterations", "_decode_steps")

    def __init__(self, segments: Optional[Sequence[TimelineSegment]] = None) -> None:
        self._segments: List[TimelineSegment] = []
        self._iterations = 0
        self._decode_steps = 0
        for segment in segments or ():
            self.append(segment)

    def append(self, segment: TimelineSegment) -> None:
        if isinstance(segment, IterationRecord):
            self._iterations += 1
            self._decode_steps += segment.batch
        else:
            self._iterations += segment.iteration_count
            self._decode_steps += segment.decode_steps
        self._segments.append(segment)

    @property
    def segments(self) -> Tuple[TimelineSegment, ...]:
        return tuple(self._segments)

    @property
    def decode_steps(self) -> int:
        return self._decode_steps

    def batch_observations(self) -> Iterator[Tuple[int, int]]:
        """(batch, iteration count) pairs, one per segment -- the histogram
        feed that replaces one ``observe`` call per expanded iteration."""
        for segment in self._segments:
            if isinstance(segment, IterationRecord):
                yield segment.batch, 1
            elif isinstance(segment, EpochRecord):
                yield segment.batch, segment.count
            else:
                yield 1, segment.iteration_count

    def __len__(self) -> int:
        return self._iterations

    def __iter__(self) -> Iterator[IterationRecord]:
        for segment in self._segments:
            if isinstance(segment, IterationRecord):
                yield segment
            else:
                yield from segment.records()

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._iterations))]
        if index < 0:
            index += self._iterations
        if not 0 <= index < self._iterations:
            raise IndexError(index)
        for segment in self._segments:
            if isinstance(segment, IterationRecord):
                if index == 0:
                    return segment
                index -= 1
                continue
            if index < segment.iteration_count:
                return segment.record_at(index)
            index -= segment.iteration_count
        raise IndexError(index)  # pragma: no cover - guarded above


#: Addends per np.cumsum chunk: bounds peak memory while keeping the
#: accumulation one C-speed pass per ~2MB of float64s.
_ENERGY_CHUNK = 1 << 18


def accumulate_energy(total: float, pattern: np.ndarray, repeats: int = 1) -> float:
    """``total`` after sequentially adding ``pattern`` ``repeats`` times.

    Bit-identical to the Python loop ``for value in pattern * repeats:
    total += value``: ``np.cumsum`` over float64 is a strictly sequential
    left fold (no pairwise reassociation), and chunking carries the running
    total as the first addend of the next chunk -- the same dependence
    chain, evaluated at C speed.  This is what lets epoch extrapolation
    reproduce the exact loop's float energy accumulation byte-for-byte.
    """
    if repeats <= 0 or pattern.size == 0:
        return total
    # Short accumulations (an epoch's repeated scalar, a small episode run)
    # are cheaper as a plain Python fold than as array setup + cumsum; the
    # result is the same sequential left fold either way.
    if pattern.size * repeats <= 1024:
        for value in pattern.tolist() * repeats:
            total += value
        return total
    per_chunk = max(1, _ENERGY_CHUNK // pattern.size)
    done = 0
    while done < repeats:
        chunk = min(per_chunk, repeats - done)
        addends = np.empty(1 + chunk * pattern.size, dtype=np.float64)
        addends[0] = total
        addends[1:] = np.tile(pattern, chunk)
        total = float(np.cumsum(addends)[-1])
        done += chunk
    return total


def accumulate_energy_scalar(total: float, value: float, repeats: int) -> float:
    """:func:`accumulate_energy` for a single repeated addend.

    An epoch repeats one iteration outcome, so the common case is a short
    fold of one float -- not worth building a one-element array for.  The
    addend sequence is identical either way, so this stays bit-exact.
    """
    if repeats <= 1024:
        for _ in range(repeats):
            total += value
        return total
    return accumulate_energy(total, np.array([value], dtype=np.float64), repeats)


def epoch_horizon(
    remaining_steps: Sequence[int],
    bucket_headroom: Sequence[int],
    span_cycles: int,
    now: int,
    next_arrival: Optional[int],
) -> int:
    """Iterations until the current batch composition must change.

    The composition is invariant until the first transient:

    * a finish -- request ``k`` retires after ``remaining_steps[k]`` more
      iterations, and the epoch may *include* that iteration (the finish
      lands exactly at its end);
    * a KV-bucket crossing -- request ``k``'s context stays inside its
      current bucket for ``bucket_headroom[k]`` more iterations
      (``bucket - context + 1``: the step at ``context == bucket`` is the
      last one sharing the kernel shape);
    * the next arrival -- iteration ``j`` (0-based) starts at
      ``now + j * span``; the epoch may only cover boundaries strictly
      before the arrival, i.e. ``ceil((arrival - now) / span)`` iterations.

    Returns at least 1 (the current iteration always runs).
    """
    horizon = min(remaining_steps)
    headroom = min(bucket_headroom)
    if headroom < horizon:
        horizon = headroom
    if next_arrival is not None and span_cycles > 0:
        until_arrival = -((next_arrival - now) // -span_cycles)
        if until_arrival < horizon:
            horizon = until_arrival
    return max(1, horizon)


def clean_fault_run(injector, start_index: int, limit: int) -> int:
    """Consecutive fault-free iteration indices from ``start_index``.

    Fault draws are pure per-index functions of the seeded plan
    (:class:`repro.faults.FaultInjector`), so probing ahead consumes no
    state; a spiked or stalled iteration breaks the epoch there, keeping
    injected faults exact under compression instead of silently skipped.
    """
    clean = 0
    while clean < limit:
        index = start_index + clean
        if injector.iteration_spike(index) is not None or injector.iteration_stall(index):
            break
        clean += 1
    return clean


def fresh_epoch_stats(enabled: bool) -> Dict[str, object]:
    """The run-local epoch-compression diagnostics, zeroed.

    ``executed_iterations`` counts iterations the exact loop processed
    (memo miss or single replay); ``extrapolated_iterations`` counts those
    covered by epoch/episode closed forms.  Their sum is the run's
    iteration count -- enforced by ``tests/test_epochs.py``.
    """
    return {
        "enabled": enabled,
        "epochs": 0,
        "episode_runs": 0,
        "executed_iterations": 0,
        "extrapolated_iterations": 0,
        "extrapolated_requests": 0,
    }
