"""Continuous-batching serving: time-multiplexed decode over merged schedules.

This module adds the first *time-multiplexed* scheduling dimension to the
workloads stack: requests enter and leave the kernel schedule mid-simulation.
A :class:`~repro.workloads.graph.ServingTrace` supplies a stream of
decode-phase requests (GPT / GQA / MoE mixes, arrival cycles, prompt lengths,
decode budgets); the :class:`ServingScheduler` runs iteration-level
continuous batching over it:

1. at every iteration boundary, requests whose arrival cycle has passed join
   the in-flight batch (queueing delay is the wait for that boundary);
2. each in-flight request contributes its *next* decode step -- a one-token
   model graph whose KV context is the prompt length plus the steps completed
   so far, rounded up to the trace's ``context_bucket`` (a paged-KV model
   that keeps the kernel-shape working set finite);
3. the per-request step schedules are merged position-interleaved into one
   kernel schedule (:func:`repro.workloads.lowering.merge_schedules`) and
   executed on the taskgraph scheduler, so independent requests overlap
   across the matrix units and SIMT cores exactly the way MoE expert chains
   already do within a layer;
4. requests that completed their decode budget retire; the clock advances by
   the iteration makespan and the loop repeats until the trace drains.

Every per-kernel simulation flows through the process-wide timing cache and
the steady-state-compressed kernel schedulers, lowered per-step schedules
are memoized per (model spec, bucketed context), and whole *iterations* are
memoized process-wide by their batch composition -- the ordered (model,
bucketed context, unit) sequence plus the design fingerprint
(:meth:`ServingScheduler._memo_key`).  KV bucketing makes compositions
repeat, so after the first few iterations a serving run replays recorded
outcomes: no merging, no list scheduling, no kernel simulation.
``ServingRunResult.iteration_memo`` reports the per-run hit/miss split; the
memo is invalidated whenever the timing cache is cleared and bypassed while
it is disabled.

Above the batcher sits a pluggable *control plane*
(:mod:`repro.workloads.control`): a :class:`SchedulingPolicy` decides at
every iteration boundary which queued requests to shed, which in-flight
requests to preempt, and which to admit under a KV-budget.  The default
``fcfs`` policy admits everything unconditionally -- byte-identical to the
scheduler before the control plane existed -- while ``kv-budget`` and
``preemptive-slo`` trade per-request SLO classes
(:class:`~repro.workloads.control.SloClass`) against an HBM budget.  Every
request then lands in exactly one disposition -- ``met`` / ``violated`` /
``shed`` / ``timed_out`` -- and the fraction of arrivals meeting their SLO
is the run's goodput.  A seeded :class:`~repro.faults.FaultPlan` can
additionally inject kernel latency spikes, iteration stalls and arrival
bursts, deterministically, to measure how gracefully each policy degrades.

The result (:class:`ServingRunResult`) carries per-request records --
arrival, admission, time to first token, finish -- from which the analysis
layer (:mod:`repro.analysis.serving`) derives latency percentiles, TTFT,
queueing delay, goodput and per-unit occupancy under load.

>>> from repro.workloads import run_serving
>>> result = run_serving("poisson-mixed", "virgo")
>>> len(result.requests), result.iterations  # doctest: +SKIP
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config.presets import DesignKind, make_design
from repro.config.soc import DataType, DesignConfig
from repro.faults import FaultInjector, FaultPlan
from repro.kernels.heterogeneous import small_unit_config
from repro.workloads.control import (
    PolicyContext,
    SchedulingPolicy,
    evaluate_disposition,
    request_kv_bytes,
    resolve_policy,
)
from repro.obs import CapturedSpans, MetricsRegistry, occupancy_percent, phase, trace_recorder
from repro.obs.trace import REQUESTS_PROCESS, SCHEDULER_PROCESS, UNITS_PROCESS
from repro.perf import design_fingerprint, timing_cache
from repro.workloads.epochs import (
    EpisodeRun,
    EpisodeSegment,
    EpisodeTemplate,
    EpochRecord,
    IterationRecord,
    IterationTimeline,
    accumulate_energy,
    accumulate_energy_scalar,
    build_episode_template,
    clean_fault_run,
    epoch_horizon,
    fresh_epoch_stats,
)
from repro.workloads.graph import RequestSpec, ServingTrace, bucket_context
from repro.workloads.lowering import (
    MATRIX_RESOURCE,
    SMALL_MATRIX_RESOURCE,
    KernelSchedule,
    execute_schedule,
    lower_graph,
    merge_schedules,
)
from repro.workloads.models import ModelSpec, build_model, resolve_trace, scaled_spec


#: Terminal states a request can land in.  Finished requests are judged
#: against their SLO targets (``met`` / ``violated``); ``shed`` requests were
#: dropped from the admission queue without ever receiving service, and
#: ``timed_out`` requests received some service, were preempted, and then hit
#: their queue deadline before re-admission.
DISPOSITIONS = ("met", "violated", "shed", "timed_out")


@dataclass
class RequestResult:
    """Lifecycle record of one request through a serving run.

    All cycle stamps are absolute simulation cycles; derived metrics
    (latency, TTFT, queueing delay) are properties so they can never drift
    from the stamps they are defined by.  Under a non-default policy stamps
    can be ``None`` -- a shed request was never admitted and has no finish --
    and ``disposition`` records the terminal state; under the default FCFS
    policy with no SLOs every stamp is set and ``disposition`` stays
    ``None``, keeping the encoding byte-identical to the pre-control-plane
    scheduler.
    """

    request_id: str
    arrival_cycle: int
    admitted_cycle: Optional[int]
    first_token_cycle: Optional[int]
    finish_cycle: Optional[int]
    prompt_len: int
    decode_steps: int
    model_family: str
    disposition: Optional[str] = None
    slo_class: Optional[str] = None
    preemptions: int = 0
    #: Cycle at which a shed/timed-out request left the system.
    terminal_cycle: Optional[int] = None

    @property
    def latency_cycles(self) -> Optional[int]:
        """Arrival to last decode step retired: the end-to-end latency."""
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.arrival_cycle

    @property
    def ttft_cycles(self) -> Optional[int]:
        """Arrival to first decode step retired: time to first token."""
        if self.first_token_cycle is None:
            return None
        return self.first_token_cycle - self.arrival_cycle

    @property
    def queueing_cycles(self) -> Optional[int]:
        """Arrival to first admission: the wait for an iteration boundary."""
        if self.admitted_cycle is None:
            return None
        return self.admitted_cycle - self.arrival_cycle

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def to_dict(self) -> Dict[str, object]:
        encoded: Dict[str, object] = {
            "request_id": self.request_id,
            "model_family": self.model_family,
            "arrival_cycle": self.arrival_cycle,
            "admitted_cycle": self.admitted_cycle,
            "first_token_cycle": self.first_token_cycle,
            "finish_cycle": self.finish_cycle,
            "prompt_len": self.prompt_len,
            "decode_steps": self.decode_steps,
            "latency_cycles": self.latency_cycles,
            "ttft_cycles": self.ttft_cycles,
            "queueing_cycles": self.queueing_cycles,
        }
        # Control-plane keys appear only when a disposition was assigned
        # (non-default policy, SLO-classed trace, or fault injection), so the
        # default path keeps the exact historical encoding -- the serving
        # goldens pin this.
        if self.disposition is not None:
            encoded["disposition"] = self.disposition
            encoded["slo_class"] = self.slo_class
            encoded["preemptions"] = self.preemptions
            encoded["terminal_cycle"] = self.terminal_cycle
        return encoded


@dataclass
class ServingRunResult:
    """Outcome of one trace on one design under continuous batching.

    ``total_cycles`` is the absolute end of the last iteration (the trace
    makespan, including idle gaps while the system waits for arrivals);
    ``serving_cycles`` sums only the iteration spans, i.e. cycles during
    which at least one request was being decoded.
    """

    trace: str
    design: DesignConfig
    heterogeneous: bool
    context_bucket: int
    total_cycles: int
    serving_cycles: int
    requests: List[RequestResult]
    #: Per-iteration records.  Under epoch compression this is an
    #: :class:`~repro.workloads.epochs.IterationTimeline` holding
    #: extrapolated runs compressed; it behaves exactly like the list it
    #: replaces (``len``, iteration, indexing), expanding records lazily.
    iterations: Sequence[IterationRecord]
    kernel_count: int
    energy_uj: float
    resource_busy: Dict[str, int] = field(default_factory=dict)
    #: Timing-cache activity attributable to this run; diagnostic only and
    #: excluded from :meth:`to_dict` so the canonical encoding stays
    #: byte-stable across cache states (same contract as ModelRunResult).
    timing_cache: Dict[str, int] = field(default_factory=dict)
    #: Iteration-memo activity ("hits"/"misses"): how many iterations reused
    #: a previously executed batch composition instead of merging and
    #: scheduling afresh.  Diagnostic only, excluded from :meth:`to_dict`
    #: for the same byte-stability reason.
    iteration_memo: Dict[str, int] = field(default_factory=dict)
    #: Epoch-compression activity (:func:`~repro.workloads.epochs.
    #: fresh_epoch_stats`): how many iterations/requests were covered by
    #: closed-form epoch and episode extrapolation instead of the exact
    #: loop.  Diagnostic only -- like ``timing_cache``/``iteration_memo``
    #: it is excluded from :meth:`to_dict`, which stays byte-identical
    #: with compression on, off, or absent.
    epochs: Dict[str, object] = field(default_factory=dict)
    #: Unified metrics collected during the run (:mod:`repro.obs.metrics`).
    #: ``to_dict`` embeds the non-diagnostic snapshot; cache/memo hit rates
    #: are diagnostic and reported via ``snapshot(include_diagnostic=True)``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry, compare=False)
    #: Scheduling policy the run used ("fcfs" unless overridden).
    policy: str = "fcfs"
    #: True when the control plane could alter behaviour (non-default policy,
    #: SLO-classed trace, or fault injection).  Gates every new ``to_dict``
    #: key so default runs stay byte-identical to the pre-control-plane
    #: encoding.
    control_active: bool = False
    #: Fraction of arrivals whose SLO was met (``None`` on default runs).
    goodput: Optional[float] = None
    #: Disposition histogram: every arrival lands in exactly one bucket.
    dispositions: Dict[str, int] = field(default_factory=dict)
    #: Total evictions performed by the policy across the run.
    preemption_count: int = 0
    #: The fault plan injected into the run, if any.
    fault_plan: Optional[FaultPlan] = None

    @property
    def design_name(self) -> str:
        return self.design.name

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def decode_steps_executed(self) -> int:
        if isinstance(self.iterations, IterationTimeline):
            return self.iterations.decode_steps
        return sum(record.batch for record in self.iterations)

    @property
    def mean_batch(self) -> float:
        if not self.iterations:
            return 0.0
        return self.decode_steps_executed / len(self.iterations)

    @property
    def tokens_per_kilocycle(self) -> float:
        """Decode throughput over the busy (serving) span."""
        if self.serving_cycles <= 0:
            return 0.0
        return 1000.0 * self.decode_steps_executed / self.serving_cycles

    def to_dict(self) -> Dict[str, object]:
        encoded: Dict[str, object] = {
            "kind": "serving",
            "trace": self.trace,
            "design": self.design_name,
            "heterogeneous": self.heterogeneous,
            "context_bucket": self.context_bucket,
            "total_cycles": self.total_cycles,
            "serving_cycles": self.serving_cycles,
            "iteration_count": self.iteration_count,
            "decode_steps_executed": self.decode_steps_executed,
            "mean_batch": self.mean_batch,
            "tokens_per_kilocycle": self.tokens_per_kilocycle,
            "kernel_count": self.kernel_count,
            "energy_uj": self.energy_uj,
            "resource_busy_cycles": dict(self.resource_busy),
            "requests": [request.to_dict() for request in self.requests],
            "iterations": [record.to_dict() for record in self.iterations],
            "metrics": self.metrics.snapshot(),
        }
        if self.control_active:
            encoded["policy"] = self.policy
            encoded["goodput"] = self.goodput
            encoded["dispositions"] = dict(self.dispositions)
            encoded["preemption_count"] = self.preemption_count
            encoded["faults"] = self.fault_plan.to_dict() if self.fault_plan else None
        return encoded


@dataclass
class _InFlight:
    """Mutable per-request state while the request is in the batch.

    ``admitted_cycle`` is the *first* admission (queueing delay measures the
    initial wait, not re-admissions); ``resident_since`` is the latest
    (re-)admission, the preemption policies' eviction-ordering key.
    ``pending_penalty`` is the KV re-read cost a just-re-admitted request
    pays before its next step completes -- consumed by the first iteration
    after re-admission.
    """

    request: RequestSpec
    admitted_cycle: int
    steps_done: int = 0
    first_token_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None
    resident_since: int = 0
    pending_penalty: int = 0
    preemptions: int = 0

    @property
    def prefix(self) -> str:
        return f"{self.request.request_id}/"


@dataclass
class _Queued:
    """A request waiting for admission (fresh arrival or preempted)."""

    request: RequestSpec
    enqueued_cycle: int
    steps_done: int = 0
    preempted: bool = False
    admitted_cycle: Optional[int] = None
    first_token_cycle: Optional[int] = None
    preemptions: int = 0
    evicted_cycle: Optional[int] = None


@dataclass(frozen=True)
class _IterationOutcome:
    """Everything a continuous-batching iteration contributes to the run.

    ``entry_end_cycles`` holds, per batch position, the iteration-relative
    cycle at which that request's decode step retires (the latest end of any
    of its kernels in the merged placement).  ``cache_hits``/``cache_misses``
    record the timing-cache activity of the executing pass; a memo replay
    skips those probes, so it credits ``cache_lookups`` back as hits (a
    re-execution against the now-warm cache would hit on every probe).
    """

    span_cycles: int
    entry_end_cycles: Tuple[int, ...]
    kernel_count: int
    energy_uj: float
    resource_busy: Tuple[Tuple[str, int], ...]
    cache_hits: int
    cache_misses: int

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses


#: Namespace of the process-wide iteration memo inside the timing cache.
#: Keys are fully content-addressed -- design fingerprint, unit layout,
#: dtype and the *ordered* batch composition (the list scheduler packs
#: kernels in insertion order, so order is part of the content).  Living in
#: a :meth:`~repro.perf.TimingCache.namespace` ties the memo's lifecycle to
#: the kernel entries its outcomes were computed from: clearing the timing
#: cache (tests, cold-path measurement) drops the memo too, and persistent
#: snapshots carry it across processes so repeat ``serve`` invocations
#: replay iterations instead of re-merging and re-scheduling them.
_MEMO_NAMESPACE = "serving.iteration_memo"


def _iteration_memo() -> Dict[tuple, _IterationOutcome]:
    return timing_cache().namespace(_MEMO_NAMESPACE)


#: Namespace of the learned episode templates (epoch compression's
#: request-granular tier).  A template is the solo-service segment list of
#: one request shape -- (design fingerprint, unit layout, dtype, context
#: bucket, model spec, prompt length, decode budget) -- recorded by
#: instrumenting the exact loop the first time that shape serves alone from
#: an idle system to a clean finish.  Living in the same
#: :meth:`~repro.perf.TimingCache.namespace` mechanism as the iteration
#: memo ties both to one lifecycle: templates are only ever finalized after
#: every composition they cover landed in the memo, so a surviving template
#: implies surviving memo entries and episode replays can credit exact
#: hit/lookup totals.
_EPISODE_NAMESPACE = "serving.episodes"


def _episode_templates() -> Dict[tuple, EpisodeTemplate]:
    return timing_cache().namespace(_EPISODE_NAMESPACE)


def _pending_arrays(
    pending: List[RequestSpec],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vector views over the pending stream for the episode run walk.

    ``shape_ids`` groups requests by ``(model object, prompt_len,
    decode_steps)``; keying the model by object identity is deliberately
    conservative -- equal-but-distinct spec objects split a run at the
    boundary, which only shortens the extrapolated stretch, never changes a
    result (the zoo and stream builders reuse one spec object anyway).
    """
    arrivals = np.fromiter(
        (request.arrival_cycle for request in pending),
        dtype=np.int64,
        count=len(pending),
    )
    ids: Dict[tuple, int] = {}
    shapes = np.fromiter(
        (
            ids.setdefault(
                (id(request.model), request.prompt_len, request.decode_steps),
                len(ids),
            )
            for request in pending
        ),
        dtype=np.int64,
        count=len(pending),
    )
    return arrivals, np.diff(arrivals), shapes


def _episode_run_length(
    start: int, total_span: int, gaps: np.ndarray, shape_ids: np.ndarray
) -> int:
    """Length of the maximal undisturbed same-shape run from ``start``.

    Request ``k`` belongs to the run iff it matches the head's shape and the
    following arrival (if any) lands at least ``total_span`` cycles later --
    by which point ``k``'s solo service has fully drained, so ``k`` can
    never share an iteration with its successor.  A closer successor
    excludes ``k`` itself (it would be disturbed mid-service).  Scans in
    geometrically growing numpy chunks so short runs cost a few dozen
    comparisons while million-long runs stay one vector pass.
    """
    n = len(shape_ids)
    sid = shape_ids[start]
    j = start
    chunk = 64
    while j < n:
        stop = min(n, j + chunk)
        bad = shape_ids[j:stop] != sid
        gap_stop = min(stop, n - 1)
        if gap_stop > j:
            np.logical_or(
                bad[: gap_stop - j],
                gaps[j:gap_stop] < total_span,
                out=bad[: gap_stop - j],
            )
        hits = np.flatnonzero(bad)
        if hits.size:
            return j + int(hits[0]) - start
        j = stop
        chunk = min(chunk * 8, 65536)
    return n - start


def _serving_metrics(
    requests: List[RequestResult],
    iterations: Sequence[IterationRecord],
    total_cycles: int,
    serving_cycles: int,
    kernel_count: int,
    resource_busy: Dict[str, int],
    cache_stats: Dict[str, int],
    memo_stats: Dict[str, int],
    control_active: bool = False,
    goodput: Optional[float] = None,
    dispositions: Optional[Dict[str, int]] = None,
    preemption_count: int = 0,
    epoch_stats: Optional[Dict[str, object]] = None,
    queue_waits: Optional[Tuple[int, List[int]]] = None,
) -> MetricsRegistry:
    """The unified metrics registry for one serving run.

    Everything non-diagnostic is a pure function of the run's outcome
    (requests, iterations, busy cycles) and therefore identical whether
    iterations executed or replayed from the memo -- the property that keeps
    ``to_dict`` byte-stable across cache states.  Cache and memo activity is
    process-dependent and registered diagnostic.
    """
    metrics = MetricsRegistry()
    metrics.counter("serving.requests").inc(len(requests))
    metrics.counter("serving.iterations").inc(len(iterations))
    timeline = iterations if isinstance(iterations, IterationTimeline) else None
    metrics.counter("serving.decode_steps").inc(
        timeline.decode_steps
        if timeline is not None
        else sum(record.batch for record in iterations)
    )
    metrics.counter("serving.kernels").inc(kernel_count)
    metrics.gauge("serving.makespan_cycles").set(total_cycles)
    metrics.gauge("serving.serving_cycles").set(serving_cycles)
    # Histogram snapshots are order-insensitive (count/total/min/max), so
    # bulk observation over compressed segments reproduces the per-record
    # loop's snapshot exactly without expanding extrapolated runs.
    batch = metrics.histogram("serving.batch")
    if timeline is not None:
        for value, count in timeline.batch_observations():
            batch.observe_many(value, count)
    else:
        for record in iterations:
            batch.observe(record.batch)
    queueing = metrics.histogram("serving.queue_wait_cycles")
    if queue_waits is not None:
        # Precomputed during the scheduler's result merge: a bulk count of
        # known-zero waits (episode-replayed requests are admitted on
        # arrival) plus the individually tracked waits.  Snapshot-identical
        # to the per-request loop because histograms are order-insensitive.
        zero_count, waits = queue_waits
        queueing.observe_many(0, zero_count)
        for wait in waits:
            queueing.observe(wait)
    else:
        for request in requests:
            admitted = request.admitted_cycle
            if admitted is not None:
                queueing.observe(admitted - request.arrival_cycle)
    if control_active:
        metrics.gauge("serving.goodput").set(goodput if goodput is not None else 0.0)
        for disposition in DISPOSITIONS:
            metrics.counter(f"serving.dispositions.{disposition}").inc(
                (dispositions or {}).get(disposition, 0)
            )
        metrics.counter("serving.preemptions").inc(preemption_count)
    for resource, busy in sorted(resource_busy.items()):
        metrics.counter(f"unit.busy_cycles.{resource}").inc(busy)
    occupancy = occupancy_percent(resource_busy, serving_cycles)
    for resource, percent in occupancy.items():
        metrics.gauge(f"unit.occupancy_percent.{resource}").set(percent)
    metrics.counter("iteration_memo.hits", diagnostic=True).inc(memo_stats["hits"])
    metrics.counter("iteration_memo.misses", diagnostic=True).inc(memo_stats["misses"])
    metrics.counter("timing_cache.hits", diagnostic=True).inc(cache_stats["hits"])
    metrics.counter("timing_cache.misses", diagnostic=True).inc(cache_stats["misses"])
    if epoch_stats is not None:
        metrics.counter("epoch.runs", diagnostic=True).inc(
            int(epoch_stats["epochs"]) + int(epoch_stats["episode_runs"])
        )
        metrics.counter("epoch.extrapolated_iterations", diagnostic=True).inc(
            int(epoch_stats["extrapolated_iterations"])
        )
    return metrics


class ServingScheduler:
    """Iteration-level continuous batching on one design configuration.

    The scheduler is reusable across traces; it memoizes lowered per-step
    schedules per (model spec, bucketed context), so repeated steps -- and
    repeated *requests* with the same network -- cost schedule assembly, not
    lowering, and their kernels resolve from the timing cache.
    """

    def __init__(
        self,
        design: Union[str, DesignKind, DesignConfig] = DesignKind.VIRGO,
        heterogeneous: bool = False,
        dtype: DataType = DataType.FP16,
        iteration_memo: bool = True,
        policy: Union[str, SchedulingPolicy, None] = None,
        kv_budget: Optional[int] = None,
        epoch_compression: bool = True,
    ) -> None:
        if isinstance(design, str):
            design = DesignKind(design.lower())
        self.design = make_design(design, dtype) if isinstance(design, DesignKind) else design
        self.heterogeneous = heterogeneous
        self.dtype = dtype
        self.iteration_memo = iteration_memo
        self.epoch_compression = epoch_compression
        self.policy = resolve_policy(policy, kv_budget)
        self._design_fp: Optional[str] = None
        self._step_schedules: Dict[Tuple[ModelSpec, str], KernelSchedule] = {}
        # The previous iteration's first-fit-decreasing unit packing, reused
        # verbatim while the in-flight composition is unchanged (the common
        # steady-state case between arrivals/retirements/bucket crossings).
        self._units_signature: Optional[tuple] = None
        self._units: Tuple[str, ...] = ()
        # Request-granular unit spreading, mirroring the MoE expert spread
        # (see lowering._moe_expert_resource): with the default 4x throughput
        # ratio, one request in five rides the half-size unit, so both matrix
        # units draw down the decode batch concurrently.  The single-kernel
        # heuristic (every small GEMM onto the small unit) would funnel the
        # *entire* batch there -- in decode all GEMMs are small -- and leave
        # the big unit idle.
        self._unit_stride = 0
        if heterogeneous:
            large_mpc = self.design.matrix_unit.macs_per_cycle
            small_mpc = max(1, small_unit_config(self.design.matrix_unit).macs_per_cycle)
            self._unit_stride = max(2, round(large_mpc / small_mpc) + 1)

    def iteration_units(
        self,
        trace: ServingTrace,
        active: List[_InFlight],
        contexts: Optional[List[int]] = None,
    ) -> List[str]:
        """Per-iteration matrix-unit assignment for the active batch.

        The small unit receives requests first-fit-decreasing under a work
        budget of ``1/stride`` of the batch's total matrix work -- the
        balance point at which both units finish together, given the small
        unit is ``stride - 1`` times slower.  Re-deciding every iteration
        (and budgeting by work, not request count) keeps two guarantees a
        pin-for-life policy breaks: a request decoding in a small or
        draining batch is never stranded on the slow unit while the big
        unit idles (a lone request always exceeds the fractional budget),
        and the small unit's busy time -- at most ``(stride-1)/stride`` of
        the batch's total work -- stays below the sum of the isolated
        makespans for every trace shape, with ``1/stride`` to spare.

        The packing is a pure function of the batch's (model, bucketed
        context) composition, so when that composition matches the previous
        iteration's exactly -- no arrival, retirement or bucket crossing --
        the previous assignment is reused instead of re-running the repack.
        ``contexts`` optionally supplies the per-request bucketed contexts
        the caller already computed.
        """
        if contexts is None:
            contexts = [
                trace.bucketed_context(state.request.context_at(state.steps_done))
                for state in active
            ]
        units = [MATRIX_RESOURCE] * len(active)
        if not self._unit_stride or len(active) < 2:
            return units
        signature = tuple(
            (state.request.request_id, state.request.model, context)
            for state, context in zip(active, contexts)
        )
        if signature == self._units_signature:
            return list(self._units)
        work = [
            (
                self.step_schedule(
                    state.request, context, MATRIX_RESOURCE
                ).ideal_mac_cycles,
                state.request.request_id,
                index,
            )
            for index, (state, context) in enumerate(zip(active, contexts))
        ]
        budget = sum(estimate for estimate, _, _ in work) / self._unit_stride
        filled = 0.0
        for estimate, _, index in sorted(work, key=lambda item: (-item[0], item[1])):
            if filled + estimate <= budget:
                units[index] = SMALL_MATRIX_RESOURCE
                filled += estimate
        self._units_signature = signature
        self._units = tuple(units)
        return units

    def step_schedule(
        self, request: RequestSpec, context: int, unit: str = MATRIX_RESOURCE
    ) -> KernelSchedule:
        """The (memoized) one-decode-step schedule at a bucketed context.

        ``unit`` pins every matrix-unit kernel of the step onto one matrix
        unit (requests, not kernels, are the parallelism grain in serving);
        flash/SIMT kernels are unaffected.
        """
        spec = scaled_spec(request.model, phase="decode", context_len=context)
        schedule = self._step_schedules.get((spec, unit))
        if schedule is None:
            with phase("lower", model=request.model.family, context=context):
                schedule = lower_graph(
                    build_model(spec),
                    self.design,
                    heterogeneous=self.heterogeneous,
                    dtype=self.dtype,
                )
            if self.heterogeneous:
                schedule = replace(
                    schedule,
                    invocations=[
                        replace(inv, resource=unit)
                        if inv.kind == "gemm"
                        and inv.resource in (MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE)
                        else inv
                        for inv in schedule.invocations
                    ],
                )
            self._step_schedules[(spec, unit)] = schedule
        return schedule

    def _memo_key(
        self,
        contexts: List[int],
        active: List[_InFlight],
        units: List[str],
        penalties: Optional[List[int]] = None,
    ) -> tuple:
        """Content key of one iteration's merged schedule.

        Covers everything that can influence the merged placement *and* the
        iteration's effective span: the design (by fingerprint), the unit
        layout, the dtype and the *ordered* sequence of (request model,
        bucketed context, unit, pending KV re-read penalty) tuples --
        ordered, not a plain multiset, because the list scheduler reserves
        resources in insertion order, so the batch order is part of the
        schedule content.  The penalty element folds preemption state into
        the key (``docs/perf-contract.md`` contract 4): an iteration whose
        batch includes a just-re-admitted request never aliases a
        penalty-free composition, so memo on/off runs stay byte-identical
        under preemption.  Request identities are deliberately absent:
        prefixes rename kernels but never move them.
        """
        if penalties is None:
            penalties = [0] * len(active)
        return (
            self._design_fingerprint(),
            self.heterogeneous,
            self.dtype,
            tuple(
                (state.request.model, context, unit, penalty)
                for state, context, unit, penalty in zip(active, contexts, units, penalties)
            ),
        )

    def _design_fingerprint(self) -> str:
        """The design's content fingerprint, computed once per scheduler."""
        if self._design_fp is None:
            self._design_fp = design_fingerprint(self.design)
        return self._design_fp

    def _episode_key(self, trace: ServingTrace, request: RequestSpec) -> tuple:
        """Content key of a request shape's solo-service episode template.

        Everything that can influence a solo run's outcome: the design (by
        fingerprint), unit layout, dtype, the trace's KV bucket, and the
        request's (model spec, prompt length, decode budget).  The SLO class
        is deliberately absent: a solo arrival at an idle-system boundary is
        admitted immediately with zero queueing under every shipped policy
        (nothing to shed at age zero, nothing to evict, budget trivially
        satisfied -- and the progress safety valve force-admits regardless),
        and dispositions are evaluated post-loop from the stamps, so the
        service outcome is SLO-independent.
        """
        return (
            self._design_fingerprint(),
            self.heterogeneous,
            self.dtype,
            trace.context_bucket,
            request.model,
            request.prompt_len,
            request.decode_steps,
        )

    def _execute_iteration(
        self,
        trace: ServingTrace,
        active: List[_InFlight],
        contexts: List[int],
        units: List[str],
        label: str,
        duration_scale: float = 1.0,
    ) -> _IterationOutcome:
        """Merge, schedule and execute one iteration's batch for real."""
        with phase("merge", batch=len(active)):
            entries = [
                (state.prefix, self.step_schedule(state.request, context, unit))
                for state, context, unit in zip(active, contexts, units)
            ]
            merged = merge_schedules(entries, model=label)
        result = execute_schedule(merged, duration_scale=duration_scale)
        # Per-request completion inside the iteration: the latest end of any
        # of the request's (prefixed) layers in the merged placement, found
        # in one pass over the layers instead of one scan per request.
        ends: Dict[str, int] = {}
        for layer in result.layers:
            prefix = layer.layer.split("/", 1)[0] + "/"
            if layer.end > ends.get(prefix, -1):
                ends[prefix] = layer.end
        return _IterationOutcome(
            span_cycles=result.total_cycles,
            entry_end_cycles=tuple(ends[state.prefix] for state in active),
            kernel_count=result.kernel_count,
            energy_uj=result.active_energy_uj,
            resource_busy=tuple(sorted(result.resource_busy.items())),
            cache_hits=result.timing_cache.get("hits", 0),
            cache_misses=result.timing_cache.get("misses", 0),
        )

    def _readmission_penalty(self, entry: _Queued, ctx: PolicyContext) -> int:
        """KV re-read cost of re-admitting a preempted request, in cycles.

        Eviction drops the request's KV state from HBM residency; coming
        back, the state streams in again over the DRAM channel -- capacity
        bytes over channel bandwidth, plus the channel latency.
        """
        return self.kv_reload_penalty(entry.request, entry.steps_done, ctx.trace)

    # -- External-driver hooks -------------------------------------------
    #
    # The fleet router (repro.workloads.fleet) steps replicas incrementally
    # between fleet events instead of calling :meth:`run` once per trace.
    # These hooks expose the scheduler's building blocks -- one iteration's
    # outcome with memo replay, the KV reload cost a requeued request pays,
    # and the batch's resident KV footprint -- without touching the main
    # loop, so single-SoC serve runs stay byte-identical to their goldens.

    def kv_reload_penalty(self, request: RequestSpec, steps_done: int, trace: ServingTrace) -> int:
        """Cycles to stream the request's KV state back into HBM residency.

        The cost a preempted request pays on re-admission, and the explicit
        re-prefill cost a failed-over request pays on its new replica (the
        crashed replica's KV is gone; the prompt-plus-progress state streams
        in over the DRAM channel at its current bucketed context).
        """
        dram = self.design.soc.dram
        context = trace.bucketed_context(request.context_at(steps_done))
        kv_bytes = request_kv_bytes(request.model, context, self.dtype)
        return int(math.ceil(kv_bytes / dram.bandwidth_bytes_per_cycle)) + dram.latency_cycles

    def resident_kv_bytes(self, trace: ServingTrace, active: Sequence[_InFlight]) -> int:
        """Total KV bytes resident for the active batch (router introspection)."""
        return sum(
            request_kv_bytes(
                state.request.model,
                trace.bucketed_context(state.request.context_at(state.steps_done)),
                self.dtype,
            )
            for state in active
        )

    def iteration_outcome(
        self,
        trace: ServingTrace,
        active: List[_InFlight],
        duration_scale: float = 1.0,
    ) -> Tuple[_IterationOutcome, bool]:
        """One continuous-batching iteration for an external driver.

        Computes the batch's contexts, unit packing and pending penalties,
        consults the process-wide iteration memo, and returns ``(outcome,
        replayed)``.  A scaled iteration (``duration_scale != 1`` -- the
        slowdown-fault path) bypasses the memo in *both* directions, the
        same no-cache-poisoning rule spiked iterations follow in
        :meth:`run`.  The caller owns stat bookkeeping: on replay it should
        credit ``outcome.cache_lookups`` back to the timing cache (times the
        number of extrapolated repeats) so memoized and executing runs
        report the same lookup totals.
        """
        contexts = [
            trace.bucketed_context(state.request.context_at(state.steps_done))
            for state in active
        ]
        units = self.iteration_units(trace, active, contexts)
        penalties = [state.pending_penalty for state in active]
        memo = (
            _iteration_memo()
            if self.iteration_memo and timing_cache().enabled and duration_scale == 1.0
            else None
        )
        key = self._memo_key(contexts, active, units, penalties) if memo is not None else None
        outcome = memo.get(key) if memo is not None else None
        if outcome is not None:
            return outcome, True
        label = f"fleet:{trace.name}"
        with phase("serving.iteration", batch=len(active)):
            outcome = self._execute_iteration(
                trace, active, contexts, units, label=label, duration_scale=duration_scale
            )
        if memo is not None:
            memo[key] = outcome
        return outcome, False

    def run(
        self,
        trace: Union[str, ServingTrace],
        faults: Optional[FaultPlan] = None,
    ) -> ServingRunResult:
        """Continuous-batch ``trace`` to completion and report per-request metrics."""
        trace = resolve_trace(trace) if isinstance(trace, str) else trace
        injector = FaultInjector(faults) if faults is not None and faults.active else None
        if injector is not None:
            trace = injector.perturb_trace(trace)
        # The control plane is "active" -- and its extra result fields are
        # populated -- only when something can deviate from historical
        # behaviour.  Default FCFS runs over SLO-free traces without faults
        # take the exact pre-control-plane path, which pins the goldens.
        control_active = (
            self.policy.name != "fcfs"
            or injector is not None
            or any(request.slo is not None for request in trace.requests)
        )
        ctx = PolicyContext(
            design=self.design,
            dtype=self.dtype,
            trace=trace,
            kv_budget_bytes=self.design.soc.dram.hbm_capacity_bytes,
        )
        pending: List[RequestSpec] = list(trace.sorted_requests())
        pend_i = 0
        n_pending = len(pending)
        queued: List[_Queued] = []
        active: List[_InFlight] = []
        finished: Dict[str, _InFlight] = {}
        terminated: Dict[str, Tuple[_Queued, str, int]] = {}
        preemption_count = 0

        now = 0
        serving_cycles = 0
        kernel_count = 0
        energy_uj = 0.0
        resource_busy: Dict[str, int] = {}
        cache = timing_cache()
        cache_stats = {"hits": 0, "misses": 0}
        memo_stats = {"hits": 0, "misses": 0}
        memo_table = _iteration_memo() if self.iteration_memo else None
        iterations = IterationTimeline()
        recorder = trace_recorder()

        # Epoch compression rides on top of the iteration memo (an epoch is
        # a proven run of memo hits), so it degrades to exact simulation
        # whenever the memo is off or the cache disabled.  Episode replay
        # additionally requires no fault injector: faults are drawn per
        # iteration *index*, so epochs can probe ahead for a clean run
        # (clean_fault_run) but whole-request replay cannot skip the draw.
        compress = self.epoch_compression and memo_table is not None
        epoch_stats = fresh_epoch_stats(compress)
        episodes = _episode_templates() if compress and injector is None else None
        # Episode-template learning state: while exactly one request serves
        # alone from its arrival boundary, record its (outcome, run length)
        # segment stream; any deviation -- a second request, a fault, a
        # pending penalty, a memo bypass -- aborts the recording.
        learn_key: Optional[tuple] = None
        learn_rid: Optional[str] = None
        learn_segments: List[list] = []
        # Episode replay bookkeeping: (first pending index, request count,
        # template) per run, merged positionally with the exact results
        # after the loop (``pending`` preserves trace order).
        episode_meta: List[Tuple[int, int, EpisodeTemplate]] = []
        # Numpy views over the pending stream for the episode run-length
        # walk, built lazily on the first template match.
        arrivals_np: Optional[np.ndarray] = None
        gaps_np: Optional[np.ndarray] = None
        shape_ids: Optional[np.ndarray] = None

        def learn_record(outcome: _IterationOutcome, count: int) -> None:
            # Consecutive iterations of one composition replay the *same*
            # memo object, so identity merging recovers the segment runs.
            if learn_segments and learn_segments[-1][0] is outcome:
                learn_segments[-1][1] += count
            else:
                learn_segments.append([outcome, count])

        def learn_abort() -> None:
            nonlocal learn_key
            learn_key = None
            learn_segments.clear()

        def learn_finalize(state: _InFlight) -> None:
            nonlocal learn_key
            # The sum check is a safety net: a recording that survived to
            # the finish covered every decode step by construction.
            if sum(count for _, count in learn_segments) == state.request.decode_steps:
                episodes[learn_key] = build_episode_template(
                    [
                        EpisodeSegment(
                            count=count,
                            span_cycles=recorded.span_cycles,
                            end_cycle=recorded.entry_end_cycles[0],
                            kernel_count=recorded.kernel_count,
                            energy_uj=recorded.energy_uj,
                            resource_busy=recorded.resource_busy,
                            cache_lookups=recorded.cache_lookups,
                        )
                        for recorded, count in learn_segments
                    ]
                )
            learn_key = None
            learn_segments.clear()
        # Iteration-relative kernel span shapes captured at memo-miss time,
        # keyed like the memo itself.  The merged placement is a pure
        # function of the composition, so a memo hit replays the captured
        # shape shifted to the new iteration start -- the placement the memo
        # skipped rebuilding.  Compositions warmed before tracing started
        # have no shape to replay and fall back to synthesized per-unit
        # epoch spans.
        span_shapes: Dict[tuple, CapturedSpans] = {}

        while pend_i < n_pending or queued or active:
            # Episode fast path: the system is idle with no backlog and the
            # next arrival's whole solo service is already templated --
            # replay entire requests in closed form, vectorized over the
            # maximal run of same-shape arrivals spaced at least one
            # solo-service span apart (so no request in the run can be
            # disturbed by the next).
            if (
                episodes is not None
                and cache.enabled
                and not active
                and not queued
                and pend_i < n_pending
                and pending[pend_i].arrival_cycle >= now
            ):
                template = episodes.get(self._episode_key(trace, pending[pend_i]))
                if template is not None:
                    if shape_ids is None:
                        # Stream builders stash their arrival/gap/shape
                        # arrays on the trace; fall back to deriving them.
                        cached = trace.__dict__.get("_stream_arrays")
                        if cached is not None and len(cached[0]) == n_pending:
                            arrivals_np, gaps_np, shape_ids = cached
                        else:
                            arrivals_np, gaps_np, shape_ids = _pending_arrays(
                                pending
                            )
                    # Scalar pre-check: the head itself is disturbed when its
                    # successor lands inside its solo span -- the common
                    # rejection after an overlap cluster, not worth a walk.
                    if (
                        pend_i + 1 < n_pending
                        and gaps_np[pend_i] < template.total_span
                    ):
                        count = 0
                    else:
                        count = _episode_run_length(
                            pend_i, template.total_span, gaps_np, shape_ids
                        )
                    if count:
                        run_arrivals = arrivals_np[pend_i : pend_i + count]
                        iterations.append(
                            EpisodeRun(
                                index=len(iterations),
                                template=template,
                                arrivals=run_arrivals,
                                requests=pending[pend_i : pend_i + count],
                            )
                        )
                        episode_meta.append((pend_i, count, template))
                        replay_iters = count * template.total_iterations
                        memo_stats["hits"] += replay_iters
                        lookups = count * template.total_lookups
                        cache.credit_hits(lookups)
                        cache_stats["hits"] += lookups
                        kernel_count += count * template.total_kernels
                        serving_cycles += count * template.total_span
                        for resource, busy in template.busy_totals:
                            resource_busy[resource] = (
                                resource_busy.get(resource, 0) + count * busy
                            )
                        energy_uj = accumulate_energy(
                            energy_uj, template.energy_pattern, count
                        )
                        now = int(run_arrivals[-1]) + template.total_span
                        epoch_stats["episode_runs"] += 1
                        epoch_stats["extrapolated_iterations"] += replay_iters
                        epoch_stats["extrapolated_requests"] += count
                        pend_i += count
                        if recorder is not None:
                            start = int(run_arrivals[0])
                            recorder.add_span(
                                f"episode x{count}",
                                process=SCHEDULER_PROCESS,
                                track="iterations",
                                start=start,
                                duration=now - start,
                                category="epoch",
                                args={
                                    "requests": count,
                                    "iterations": replay_iters,
                                    "memo": "extrapolated",
                                    "kernels": count * template.total_kernels,
                                },
                            )
                            for resource, busy in template.busy_totals:
                                recorder.add_span(
                                    "epoch (extrapolated)",
                                    process=UNITS_PROCESS,
                                    track=resource,
                                    start=start,
                                    duration=now - start,
                                    category="epoch",
                                    args={
                                        "busy_cycles": count * busy,
                                        "kernels": count * template.total_kernels,
                                    },
                                )
                        continue
            # Arrivals: iteration-level continuous batching enqueues every
            # request whose arrival has passed at the iteration boundary.
            while pend_i < n_pending and pending[pend_i].arrival_cycle <= now:
                request = pending[pend_i]
                pend_i += 1
                queued.append(_Queued(request=request, enqueued_cycle=request.arrival_cycle))

            # Control plane: shed hopeless waiters, preempt for higher
            # priorities, admit under the iteration budget.  The default
            # FCFS policy sheds nothing, evicts nothing and admits the whole
            # queue, reproducing the historical loop exactly.
            for entry in self.policy.shed(queued, now, ctx):
                queued.remove(entry)
                disposition = "timed_out" if entry.preempted else "shed"
                terminated[entry.request.request_id] = (entry, disposition, now)
            if queued and active:
                for state in self.policy.evict(active, queued, now, ctx):
                    active.remove(state)
                    preemption_count += 1
                    queued.append(
                        _Queued(
                            request=state.request,
                            enqueued_cycle=now,
                            steps_done=state.steps_done,
                            preempted=True,
                            admitted_cycle=state.admitted_cycle,
                            first_token_cycle=state.first_token_cycle,
                            preemptions=state.preemptions + 1,
                            evicted_cycle=now,
                        )
                    )
            if queued:
                admitted = self.policy.admit(queued, active, now, ctx)
                if not admitted and not active:
                    # Progress safety valve: with nothing decoding and
                    # nothing admissible, force the oldest waiter in even
                    # over budget -- the scheduler must never deadlock on a
                    # request too large for the configured budget.
                    admitted = [
                        min(queued, key=lambda e: (e.enqueued_cycle, e.request.request_id))
                    ]
                for entry in admitted:
                    queued.remove(entry)
                    penalty = (
                        self._readmission_penalty(entry, ctx) if entry.preempted else 0
                    )
                    if recorder is not None and entry.evicted_cycle is not None:
                        recorder.add_span(
                            "preempted",
                            process=REQUESTS_PROCESS,
                            track=entry.request.request_id,
                            start=entry.evicted_cycle,
                            duration=now - entry.evicted_cycle,
                            category="preempted",
                            args={"readmission_penalty_cycles": penalty},
                        )
                    active.append(
                        _InFlight(
                            request=entry.request,
                            admitted_cycle=(
                                entry.admitted_cycle
                                if entry.admitted_cycle is not None
                                else now
                            ),
                            steps_done=entry.steps_done,
                            first_token_cycle=entry.first_token_cycle,
                            resident_since=now,
                            pending_penalty=penalty,
                            preemptions=entry.preemptions,
                        )
                    )
            if not active:
                if pend_i < n_pending:
                    now = pending[pend_i].arrival_cycle
                continue

            contexts = [
                trace.bucketed_context(state.request.context_at(state.steps_done))
                for state in active
            ]
            units = self.iteration_units(trace, active, contexts)
            penalties = [state.pending_penalty for state in active]

            # Fault injection: a spiked iteration executes with scaled kernel
            # durations and bypasses the memo in both directions -- no read
            # (a clean replay would dodge the spike) and no write (the
            # poisoned outcome must not leak into clean iterations) -- so
            # memo on/off runs stay byte-identical under faults.
            index = len(iterations)
            spike = injector.iteration_spike(index) if injector is not None else None
            stall = injector.iteration_stall(index) if injector is not None else 0

            # Iteration memoization: KV bucketing makes batch compositions
            # repeat within (and across) runs, and the merged schedule is a
            # pure function of the composition -- so a repeated composition
            # replays the recorded outcome instead of re-merging and
            # re-scheduling.  Disabled alongside the timing cache: the cold
            # path must measure real work.
            memo = memo_table if cache.enabled and spike is None else None
            key = (
                self._memo_key(contexts, active, units, penalties)
                if memo is not None
                else None
            )
            outcome = memo.get(key) if memo is not None else None
            replayed = outcome is not None
            if outcome is None:
                label = f"serve:{trace.name}#{index}"
                with phase("serving.iteration", index=index, batch=len(active)):
                    if recorder is not None:
                        marker = recorder.mark()
                        with recorder.time_offset(now):
                            outcome = self._execute_iteration(
                                trace, active, contexts, units, label=label,
                                duration_scale=spike if spike is not None else 1.0,
                            )
                        if key is not None:
                            span_shapes[key] = recorder.capture(marker, base=now)
                    else:
                        outcome = self._execute_iteration(
                            trace, active, contexts, units, label=label,
                            duration_scale=spike if spike is not None else 1.0,
                        )
                if memo is not None:
                    memo[key] = outcome
                memo_stats["misses"] += 1
                cache_stats["hits"] += outcome.cache_hits
                cache_stats["misses"] += outcome.cache_misses
                horizon = 1
            else:
                # Epoch extrapolation: on a memo hit with an empty queue, no
                # pending penalties and no stall, the composition provably
                # recurs -- the control plane is a no-op at every boundary
                # until the first transient (soonest finish, KV-bucket
                # crossing, next arrival, or injected fault), and every
                # per-iteration quantity is constant.  The horizon is the
                # exact count of such iterations; covering them in one
                # arithmetic step is what turns steady traffic into O(1)
                # epochs, mirroring execute_flash_loop's KV-tile
                # extrapolation one level down.
                horizon = 1
                span = outcome.span_cycles
                if (
                    compress
                    and stall == 0
                    and not queued
                    and span > 0
                    and not any(penalties)
                ):
                    horizon = epoch_horizon(
                        [s.request.decode_steps - s.steps_done for s in active],
                        [
                            context - s.request.context_at(s.steps_done) + 1
                            for s, context in zip(active, contexts)
                        ],
                        span,
                        now,
                        pending[pend_i].arrival_cycle if pend_i < n_pending else None,
                    )
                    if injector is not None and horizon > 1:
                        horizon = 1 + clean_fault_run(injector, index + 1, horizon - 1)
                memo_stats["hits"] += horizon
                # Replaying the outcome skips the per-kernel cache probes the
                # execution would have performed (all hits on a warm cache);
                # credit them so memoized and non-memoized runs report the
                # same lookup totals.
                lookups = horizon * outcome.cache_lookups
                cache.credit_hits(lookups)
                cache_stats["hits"] += lookups
                if horizon == 1 and recorder is not None:
                    shape = span_shapes.get(key)
                    if shape is not None:
                        recorder.replay(shape, base=now)
                    else:
                        for resource, busy in outcome.resource_busy:
                            recorder.add_span(
                                "epoch (memoized)",
                                process=UNITS_PROCESS,
                                track=resource,
                                start=now,
                                duration=outcome.span_cycles,
                                category="epoch",
                                args={
                                    "busy_cycles": busy,
                                    "kernels": outcome.kernel_count,
                                },
                            )

            # Episode-template learning: start on the first iteration of a
            # request serving alone from its arrival boundary, keep
            # recording while the solo run stays undisturbed, abort on any
            # deviation.  Epoch hits record their whole run in one segment.
            if learn_key is not None:
                if (
                    len(active) == 1
                    and active[0].request.request_id == learn_rid
                    and key is not None
                    and stall == 0
                    and not queued
                    and penalties[0] == 0
                ):
                    learn_record(outcome, horizon)
                else:
                    learn_abort()
            elif (
                episodes is not None
                and len(active) == 1
                and not queued
                and key is not None
                and stall == 0
                and penalties[0] == 0
                and active[0].steps_done == 0
                and active[0].admitted_cycle == active[0].request.arrival_cycle
                and now == active[0].request.arrival_cycle
            ):
                candidate = self._episode_key(trace, active[0].request)
                if candidate not in episodes:
                    learn_key = candidate
                    learn_rid = active[0].request.request_id
                    learn_record(outcome, horizon)

            if horizon >= 2:
                # Whole-epoch bookkeeping, byte-identical to running the
                # horizon's iterations one by one: integer quantities
                # advance by exact multiples, energy replays the identical
                # sequential float sum (accumulate_energy), and the record
                # stays compressed in the timeline.
                for state, end in zip(active, outcome.entry_end_cycles):
                    if state.first_token_cycle is None:
                        state.first_token_cycle = now + end
                    state.steps_done += horizon
                    if state.steps_done == state.request.decode_steps:
                        state.finish_cycle = now + (horizon - 1) * span + end
                        finished[state.request.request_id] = state
                if learn_key is not None and active[0].finish_cycle is not None:
                    learn_finalize(active[0])
                if recorder is not None:
                    recorder.add_span(
                        f"epoch x{horizon}",
                        process=SCHEDULER_PROCESS,
                        track="iterations",
                        start=now,
                        duration=horizon * span,
                        category="epoch",
                        args={
                            "batch": len(active),
                            "requests": [s.request.request_id for s in active],
                            "iterations": horizon,
                            "span_cycles": span,
                            "memo": "extrapolated",
                            "kernels": horizon * outcome.kernel_count,
                        },
                    )
                    for resource, busy in outcome.resource_busy:
                        recorder.add_span(
                            "epoch (extrapolated)",
                            process=UNITS_PROCESS,
                            track=resource,
                            start=now,
                            duration=horizon * span,
                            category="epoch",
                            args={
                                "busy_cycles": horizon * busy,
                                "kernels": horizon * outcome.kernel_count,
                            },
                        )
                iterations.append(
                    EpochRecord(
                        index=index,
                        start_cycle=now,
                        span_cycles=span,
                        count=horizon,
                        request_ids=[s.request.request_id for s in active],
                    )
                )
                serving_cycles += horizon * span
                kernel_count += horizon * outcome.kernel_count
                energy_uj = accumulate_energy_scalar(
                    energy_uj, outcome.energy_uj, horizon
                )
                for resource, busy in outcome.resource_busy:
                    resource_busy[resource] = (
                        resource_busy.get(resource, 0) + horizon * busy
                    )
                epoch_stats["epochs"] += 1
                epoch_stats["extrapolated_iterations"] += horizon
                now += horizon * span
                active = [state for state in active if state.finish_cycle is None]
                continue

            # The iteration's effective span: the merged schedule's makespan,
            # stretched by any re-admission penalty serialized in front of a
            # request's step, plus an injected stall.  All zero on the
            # default path, where effective == outcome.span_cycles exactly.
            effective_span = outcome.span_cycles
            for state, end in zip(active, outcome.entry_end_cycles):
                if state.pending_penalty:
                    effective_span = max(effective_span, end + state.pending_penalty)
            effective_span += stall

            for state, end in zip(active, outcome.entry_end_cycles):
                done_at = now + state.pending_penalty + end
                if recorder is not None:
                    recorder.add_span(
                        f"step {state.steps_done}",
                        process=REQUESTS_PROCESS,
                        track=state.request.request_id,
                        start=now,
                        duration=state.pending_penalty + end,
                        category="decode_step",
                        args={"iteration": index},
                    )
                state.steps_done += 1
                state.pending_penalty = 0
                if state.first_token_cycle is None:
                    state.first_token_cycle = done_at
                if state.steps_done == state.request.decode_steps:
                    state.finish_cycle = done_at
                    finished[state.request.request_id] = state
            # A surviving recording implies the learner is active[0] (any
            # batch growth or identity change aborted it above).
            if learn_key is not None and active[0].finish_cycle is not None:
                learn_finalize(active[0])

            if recorder is not None:
                recorder.add_span(
                    f"iteration {index}",
                    process=SCHEDULER_PROCESS,
                    track="iterations",
                    start=now,
                    duration=effective_span,
                    category="iteration",
                    args={
                        "batch": len(active),
                        "requests": [state.request.request_id for state in active],
                        "memo": "replay" if replayed else ("miss" if memo is not None else "off"),
                        "kernels": outcome.kernel_count,
                    },
                )
                if stall:
                    recorder.add_span(
                        "stall (fault)",
                        process=SCHEDULER_PROCESS,
                        track="iterations",
                        start=now + effective_span - stall,
                        duration=stall,
                        category="fault",
                        args={"iteration": index},
                    )
            iterations.append(
                IterationRecord(
                    index=index,
                    start_cycle=now,
                    span_cycles=effective_span,
                    batch=len(active),
                    request_ids=[state.request.request_id for state in active],
                )
            )
            epoch_stats["executed_iterations"] += 1
            serving_cycles += effective_span
            kernel_count += outcome.kernel_count
            energy_uj += outcome.energy_uj
            for resource, busy in outcome.resource_busy:
                resource_busy[resource] = resource_busy.get(resource, 0) + busy

            now += effective_span
            active = [state for state in active if state.finish_cycle is None]

        specs = trace.sorted_requests()
        requests: List[RequestResult] = []
        zero_wait = 0
        queue_waits: List[int] = []
        meta_pos = 0
        position = 0
        total_requests = len(specs)
        while position < total_requests:
            if meta_pos < len(episode_meta) and episode_meta[meta_pos][0] == position:
                # Episode-replayed requests: ``pending`` preserved trace
                # order, so each run covers a contiguous span of the sorted
                # stream and its stamps are pure offsets from the arrival.
                start, count, template = episode_meta[meta_pos]
                meta_pos += 1
                ttft = template.first_token_end
                latency = template.finish_offset
                zero_wait += count
                run_specs = specs[start : start + count]
                head = run_specs[0]
                # Prototype with every run-constant field resolved; the
                # per-request loop below only patches the five that vary.
                # This is the per-request hot path of a compressed
                # million-request run, hence the dataclass-__init__ bypass.
                proto = {
                    "request_id": "",
                    "arrival_cycle": 0,
                    "admitted_cycle": 0,
                    "first_token_cycle": 0,
                    "finish_cycle": 0,
                    "prompt_len": head.prompt_len,
                    "decode_steps": head.decode_steps,
                    "model_family": head.model.family,
                    "disposition": None,
                    "slo_class": None,
                    "preemptions": 0,
                    "terminal_cycle": None,
                }
                disposition_for: Dict[object, Optional[str]] = {}
                new_result = RequestResult.__new__
                append = requests.append
                for request in run_specs:
                    arrival = request.arrival_cycle
                    finish = arrival + latency
                    fields = dict(proto)
                    fields["request_id"] = request.request_id
                    fields["arrival_cycle"] = arrival
                    fields["admitted_cycle"] = arrival
                    fields["first_token_cycle"] = arrival + ttft
                    fields["finish_cycle"] = finish
                    if control_active:
                        # ttft/latency (and decode budget) are constant
                        # across the run, so the verdict only varies with
                        # the SLO class.
                        if request.slo in disposition_for:
                            disposition = disposition_for[request.slo]
                        else:
                            disposition = evaluate_disposition(request, ttft, latency)
                            disposition_for[request.slo] = disposition
                        fields["disposition"] = disposition
                        fields["slo_class"] = (
                            request.slo.name if request.slo is not None else None
                        )
                        fields["terminal_cycle"] = finish
                    result = new_result(RequestResult)
                    result.__dict__ = fields
                    append(result)
                position += count
                continue
            request = specs[position]
            position += 1
            rid = request.request_id
            slo_name = request.slo.name if request.slo is not None else None
            if rid in finished:
                state = finished[rid]
                if state.admitted_cycle is not None:
                    queue_waits.append(state.admitted_cycle - request.arrival_cycle)
                disposition = (
                    evaluate_disposition(
                        request,
                        state.first_token_cycle - request.arrival_cycle,
                        state.finish_cycle - request.arrival_cycle,
                    )
                    if control_active
                    else None
                )
                requests.append(
                    RequestResult(
                        request_id=rid,
                        arrival_cycle=request.arrival_cycle,
                        admitted_cycle=state.admitted_cycle,
                        first_token_cycle=state.first_token_cycle,
                        finish_cycle=state.finish_cycle,
                        prompt_len=request.prompt_len,
                        decode_steps=request.decode_steps,
                        model_family=request.model.family,
                        disposition=disposition,
                        slo_class=slo_name if control_active else None,
                        preemptions=state.preemptions,
                        terminal_cycle=state.finish_cycle if control_active else None,
                    )
                )
            else:
                entry, disposition, cycle = terminated[rid]
                if entry.admitted_cycle is not None:
                    queue_waits.append(entry.admitted_cycle - request.arrival_cycle)
                requests.append(
                    RequestResult(
                        request_id=rid,
                        arrival_cycle=request.arrival_cycle,
                        admitted_cycle=entry.admitted_cycle,
                        first_token_cycle=entry.first_token_cycle,
                        finish_cycle=None,
                        prompt_len=request.prompt_len,
                        decode_steps=request.decode_steps,
                        model_family=request.model.family,
                        disposition=disposition,
                        slo_class=slo_name,
                        preemptions=entry.preemptions,
                        terminal_cycle=cycle,
                    )
                )
        goodput: Optional[float] = None
        dispositions: Dict[str, int] = {}
        if control_active:
            dispositions = {name: 0 for name in DISPOSITIONS}
            for result in requests:
                dispositions[result.disposition] += 1
            goodput = dispositions["met"] / len(requests) if requests else 0.0
        if recorder is not None:
            # Request lifecycle timeline: a queue span (arrival to admission)
            # followed by a decode span (admission to finish) that nests the
            # per-step spans recorded during the loop, one track per request.
            # Shed/timed-out requests get a single terminal span instead.
            for request in requests:
                if not request.finished:
                    recorder.add_span(
                        request.disposition,
                        process=REQUESTS_PROCESS,
                        track=request.request_id,
                        start=request.arrival_cycle,
                        duration=request.terminal_cycle - request.arrival_cycle,
                        category=request.disposition,
                        args={"preemptions": request.preemptions},
                    )
                    continue
                recorder.add_span(
                    "queue",
                    process=REQUESTS_PROCESS,
                    track=request.request_id,
                    start=request.arrival_cycle,
                    duration=request.queueing_cycles,
                    category="queue",
                )
                recorder.add_span(
                    "decode",
                    process=REQUESTS_PROCESS,
                    track=request.request_id,
                    start=request.admitted_cycle,
                    duration=request.finish_cycle - request.admitted_cycle,
                    category="decode",
                    args={
                        "model": request.model_family,
                        "prompt_len": request.prompt_len,
                        "decode_steps": request.decode_steps,
                        "ttft_cycles": request.ttft_cycles,
                    },
                )
        return ServingRunResult(
            trace=trace.name,
            design=self.design,
            heterogeneous=self.heterogeneous,
            context_bucket=trace.context_bucket,
            total_cycles=now,
            serving_cycles=serving_cycles,
            requests=requests,
            iterations=iterations,
            kernel_count=kernel_count,
            energy_uj=energy_uj,
            resource_busy=resource_busy,
            timing_cache=cache_stats,
            iteration_memo=memo_stats,
            epochs=epoch_stats,
            metrics=_serving_metrics(
                requests, iterations, now, serving_cycles, kernel_count,
                resource_busy, cache_stats, memo_stats,
                control_active=control_active,
                goodput=goodput,
                dispositions=dispositions,
                preemption_count=preemption_count,
                epoch_stats=epoch_stats,
                queue_waits=(zero_wait, queue_waits),
            ),
            policy=self.policy.name,
            control_active=control_active,
            goodput=goodput,
            dispositions=dispositions,
            preemption_count=preemption_count,
            fault_plan=faults if injector is not None else None,
        )

    def isolated_step_spans(
        self, request: RequestSpec, context_bucket: int
    ) -> List[int]:
        """Each decode step's makespan when the request runs entirely alone.

        Uses the same per-step schedules (and KV bucketing) as the batched
        run, so the comparison isolates *contention and overlap* rather than
        differing kernel shapes.  The sum of the spans is the request's
        isolated latency; it lower-bounds the latency any batched run can
        give the request, and summing across requests upper-bounds the
        merged serving span (both enforced by the property suite).
        """
        spans = []
        for step in range(request.decode_steps):
            context = bucket_context(request.context_at(step), context_bucket)
            # Alone, a request always gets the full-size unit: the isolated
            # baseline is best-effort single-request serving, not a replay of
            # whatever unit the batched run happened to pin it to.
            schedule = self.step_schedule(request, context, MATRIX_RESOURCE)
            spans.append(execute_schedule(schedule).total_cycles)
        return spans

    def isolated_cycles(self, request: RequestSpec, context_bucket: int) -> int:
        """The request's isolated end-to-end decode latency (sum of step spans)."""
        return sum(self.isolated_step_spans(request, context_bucket))


def run_serving(
    trace: Union[str, ServingTrace],
    design: Union[str, DesignKind, DesignConfig] = DesignKind.VIRGO,
    heterogeneous: bool = False,
    dtype: DataType = DataType.FP16,
    iteration_memo: bool = True,
    policy: Union[str, SchedulingPolicy, None] = None,
    kv_budget: Optional[int] = None,
    faults: Union[str, FaultPlan, None] = None,
    fault_seed: int = 0,
    epoch_compression: bool = True,
) -> ServingRunResult:
    """Continuous-batch a serving trace on one design (zoo name or explicit).

    ``iteration_memo=False`` disables the process-wide iteration memo (every
    iteration merges and schedules afresh); results are identical either way
    -- the memo is a pure accelerator, enforced by the property suite.
    ``policy`` selects the admission policy (``fcfs`` / ``kv-budget`` /
    ``preemptive-slo``), ``kv_budget`` overrides the design's HBM capacity
    for the budgeted policies, and ``faults`` injects a seeded
    :class:`~repro.faults.FaultPlan` (or an ``--inject``-style spec string,
    parsed with ``fault_seed``).
    """
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults, seed=fault_seed)
    scheduler = ServingScheduler(
        design,
        heterogeneous=heterogeneous,
        dtype=dtype,
        iteration_memo=iteration_memo,
        policy=policy,
        kv_budget=kv_budget,
        epoch_compression=epoch_compression,
    )
    with phase("serving.run", trace=trace if isinstance(trace, str) else trace.name):
        return scheduler.run(trace, faults=faults)
