"""Continuous-batching serving: time-multiplexed decode over merged schedules.

This module adds the first *time-multiplexed* scheduling dimension to the
workloads stack: requests enter and leave the kernel schedule mid-simulation.
A :class:`~repro.workloads.graph.ServingTrace` supplies a stream of
decode-phase requests (GPT / GQA / MoE mixes, arrival cycles, prompt lengths,
decode budgets); the :class:`ServingScheduler` runs iteration-level
continuous batching over it:

1. at every iteration boundary, requests whose arrival cycle has passed join
   the in-flight batch (queueing delay is the wait for that boundary);
2. each in-flight request contributes its *next* decode step -- a one-token
   model graph whose KV context is the prompt length plus the steps completed
   so far, rounded up to the trace's ``context_bucket`` (a paged-KV model
   that keeps the kernel-shape working set finite);
3. the per-request step schedules are merged position-interleaved into one
   kernel schedule (:func:`repro.workloads.lowering.merge_schedules`) and
   executed on the taskgraph scheduler, so independent requests overlap
   across the matrix units and SIMT cores exactly the way MoE expert chains
   already do within a layer;
4. requests that completed their decode budget retire; the clock advances by
   the iteration makespan and the loop repeats until the trace drains.

Every per-kernel simulation flows through the process-wide timing cache and
the steady-state-compressed kernel schedulers, lowered per-step schedules
are memoized per (model spec, bucketed context), and whole *iterations* are
memoized process-wide by their batch composition -- the ordered (model,
bucketed context, unit) sequence plus the design fingerprint
(:meth:`ServingScheduler._memo_key`).  KV bucketing makes compositions
repeat, so after the first few iterations a serving run replays recorded
outcomes: no merging, no list scheduling, no kernel simulation.
``ServingRunResult.iteration_memo`` reports the per-run hit/miss split; the
memo is invalidated whenever the timing cache is cleared and bypassed while
it is disabled.

Above the batcher sits a pluggable *control plane*
(:mod:`repro.workloads.control`): a :class:`SchedulingPolicy` decides at
every iteration boundary which queued requests to shed, which in-flight
requests to preempt, and which to admit under a KV-budget.  The default
``fcfs`` policy admits everything unconditionally -- byte-identical to the
scheduler before the control plane existed -- while ``kv-budget`` and
``preemptive-slo`` trade per-request SLO classes
(:class:`~repro.workloads.control.SloClass`) against an HBM budget.  Every
request then lands in exactly one disposition -- ``met`` / ``violated`` /
``shed`` / ``timed_out`` -- and the fraction of arrivals meeting their SLO
is the run's goodput.  A seeded :class:`~repro.faults.FaultPlan` can
additionally inject kernel latency spikes, iteration stalls and arrival
bursts, deterministically, to measure how gracefully each policy degrades.

The result (:class:`ServingRunResult`) carries per-request records --
arrival, admission, time to first token, finish -- from which the analysis
layer (:mod:`repro.analysis.serving`) derives latency percentiles, TTFT,
queueing delay, goodput and per-unit occupancy under load.

>>> from repro.workloads import run_serving
>>> result = run_serving("poisson-mixed", "virgo")
>>> len(result.requests), result.iterations  # doctest: +SKIP
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.config.presets import DesignKind, make_design
from repro.config.soc import DataType, DesignConfig
from repro.faults import FaultInjector, FaultPlan
from repro.kernels.heterogeneous import small_unit_config
from repro.workloads.control import (
    PolicyContext,
    SchedulingPolicy,
    evaluate_disposition,
    resolve_policy,
)
from repro.obs import CapturedSpans, MetricsRegistry, occupancy_percent, phase, trace_recorder
from repro.obs.trace import REQUESTS_PROCESS, SCHEDULER_PROCESS, UNITS_PROCESS
from repro.perf import design_fingerprint, timing_cache
from repro.workloads.graph import RequestSpec, ServingTrace, bucket_context
from repro.workloads.lowering import (
    MATRIX_RESOURCE,
    SMALL_MATRIX_RESOURCE,
    KernelSchedule,
    execute_schedule,
    lower_graph,
    merge_schedules,
)
from repro.workloads.models import ModelSpec, build_model, resolve_trace, scaled_spec


#: Terminal states a request can land in.  Finished requests are judged
#: against their SLO targets (``met`` / ``violated``); ``shed`` requests were
#: dropped from the admission queue without ever receiving service, and
#: ``timed_out`` requests received some service, were preempted, and then hit
#: their queue deadline before re-admission.
DISPOSITIONS = ("met", "violated", "shed", "timed_out")


@dataclass
class RequestResult:
    """Lifecycle record of one request through a serving run.

    All cycle stamps are absolute simulation cycles; derived metrics
    (latency, TTFT, queueing delay) are properties so they can never drift
    from the stamps they are defined by.  Under a non-default policy stamps
    can be ``None`` -- a shed request was never admitted and has no finish --
    and ``disposition`` records the terminal state; under the default FCFS
    policy with no SLOs every stamp is set and ``disposition`` stays
    ``None``, keeping the encoding byte-identical to the pre-control-plane
    scheduler.
    """

    request_id: str
    arrival_cycle: int
    admitted_cycle: Optional[int]
    first_token_cycle: Optional[int]
    finish_cycle: Optional[int]
    prompt_len: int
    decode_steps: int
    model_family: str
    disposition: Optional[str] = None
    slo_class: Optional[str] = None
    preemptions: int = 0
    #: Cycle at which a shed/timed-out request left the system.
    terminal_cycle: Optional[int] = None

    @property
    def latency_cycles(self) -> Optional[int]:
        """Arrival to last decode step retired: the end-to-end latency."""
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.arrival_cycle

    @property
    def ttft_cycles(self) -> Optional[int]:
        """Arrival to first decode step retired: time to first token."""
        if self.first_token_cycle is None:
            return None
        return self.first_token_cycle - self.arrival_cycle

    @property
    def queueing_cycles(self) -> Optional[int]:
        """Arrival to first admission: the wait for an iteration boundary."""
        if self.admitted_cycle is None:
            return None
        return self.admitted_cycle - self.arrival_cycle

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def to_dict(self) -> Dict[str, object]:
        encoded: Dict[str, object] = {
            "request_id": self.request_id,
            "model_family": self.model_family,
            "arrival_cycle": self.arrival_cycle,
            "admitted_cycle": self.admitted_cycle,
            "first_token_cycle": self.first_token_cycle,
            "finish_cycle": self.finish_cycle,
            "prompt_len": self.prompt_len,
            "decode_steps": self.decode_steps,
            "latency_cycles": self.latency_cycles,
            "ttft_cycles": self.ttft_cycles,
            "queueing_cycles": self.queueing_cycles,
        }
        # Control-plane keys appear only when a disposition was assigned
        # (non-default policy, SLO-classed trace, or fault injection), so the
        # default path keeps the exact historical encoding -- the serving
        # goldens pin this.
        if self.disposition is not None:
            encoded["disposition"] = self.disposition
            encoded["slo_class"] = self.slo_class
            encoded["preemptions"] = self.preemptions
            encoded["terminal_cycle"] = self.terminal_cycle
        return encoded


@dataclass
class IterationRecord:
    """One continuous-batching iteration: who ran, for how long."""

    index: int
    start_cycle: int
    span_cycles: int
    batch: int
    request_ids: List[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "span_cycles": self.span_cycles,
            "batch": self.batch,
            "request_ids": list(self.request_ids),
        }


@dataclass
class ServingRunResult:
    """Outcome of one trace on one design under continuous batching.

    ``total_cycles`` is the absolute end of the last iteration (the trace
    makespan, including idle gaps while the system waits for arrivals);
    ``serving_cycles`` sums only the iteration spans, i.e. cycles during
    which at least one request was being decoded.
    """

    trace: str
    design: DesignConfig
    heterogeneous: bool
    context_bucket: int
    total_cycles: int
    serving_cycles: int
    requests: List[RequestResult]
    iterations: List[IterationRecord]
    kernel_count: int
    energy_uj: float
    resource_busy: Dict[str, int] = field(default_factory=dict)
    #: Timing-cache activity attributable to this run; diagnostic only and
    #: excluded from :meth:`to_dict` so the canonical encoding stays
    #: byte-stable across cache states (same contract as ModelRunResult).
    timing_cache: Dict[str, int] = field(default_factory=dict)
    #: Iteration-memo activity ("hits"/"misses"): how many iterations reused
    #: a previously executed batch composition instead of merging and
    #: scheduling afresh.  Diagnostic only, excluded from :meth:`to_dict`
    #: for the same byte-stability reason.
    iteration_memo: Dict[str, int] = field(default_factory=dict)
    #: Unified metrics collected during the run (:mod:`repro.obs.metrics`).
    #: ``to_dict`` embeds the non-diagnostic snapshot; cache/memo hit rates
    #: are diagnostic and reported via ``snapshot(include_diagnostic=True)``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry, compare=False)
    #: Scheduling policy the run used ("fcfs" unless overridden).
    policy: str = "fcfs"
    #: True when the control plane could alter behaviour (non-default policy,
    #: SLO-classed trace, or fault injection).  Gates every new ``to_dict``
    #: key so default runs stay byte-identical to the pre-control-plane
    #: encoding.
    control_active: bool = False
    #: Fraction of arrivals whose SLO was met (``None`` on default runs).
    goodput: Optional[float] = None
    #: Disposition histogram: every arrival lands in exactly one bucket.
    dispositions: Dict[str, int] = field(default_factory=dict)
    #: Total evictions performed by the policy across the run.
    preemption_count: int = 0
    #: The fault plan injected into the run, if any.
    fault_plan: Optional[FaultPlan] = None

    @property
    def design_name(self) -> str:
        return self.design.name

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def decode_steps_executed(self) -> int:
        return sum(record.batch for record in self.iterations)

    @property
    def mean_batch(self) -> float:
        if not self.iterations:
            return 0.0
        return self.decode_steps_executed / len(self.iterations)

    @property
    def tokens_per_kilocycle(self) -> float:
        """Decode throughput over the busy (serving) span."""
        if self.serving_cycles <= 0:
            return 0.0
        return 1000.0 * self.decode_steps_executed / self.serving_cycles

    def to_dict(self) -> Dict[str, object]:
        encoded: Dict[str, object] = {
            "kind": "serving",
            "trace": self.trace,
            "design": self.design_name,
            "heterogeneous": self.heterogeneous,
            "context_bucket": self.context_bucket,
            "total_cycles": self.total_cycles,
            "serving_cycles": self.serving_cycles,
            "iteration_count": self.iteration_count,
            "decode_steps_executed": self.decode_steps_executed,
            "mean_batch": self.mean_batch,
            "tokens_per_kilocycle": self.tokens_per_kilocycle,
            "kernel_count": self.kernel_count,
            "energy_uj": self.energy_uj,
            "resource_busy_cycles": dict(self.resource_busy),
            "requests": [request.to_dict() for request in self.requests],
            "iterations": [record.to_dict() for record in self.iterations],
            "metrics": self.metrics.snapshot(),
        }
        if self.control_active:
            encoded["policy"] = self.policy
            encoded["goodput"] = self.goodput
            encoded["dispositions"] = dict(self.dispositions)
            encoded["preemption_count"] = self.preemption_count
            encoded["faults"] = self.fault_plan.to_dict() if self.fault_plan else None
        return encoded


@dataclass
class _InFlight:
    """Mutable per-request state while the request is in the batch.

    ``admitted_cycle`` is the *first* admission (queueing delay measures the
    initial wait, not re-admissions); ``resident_since`` is the latest
    (re-)admission, the preemption policies' eviction-ordering key.
    ``pending_penalty`` is the KV re-read cost a just-re-admitted request
    pays before its next step completes -- consumed by the first iteration
    after re-admission.
    """

    request: RequestSpec
    admitted_cycle: int
    steps_done: int = 0
    first_token_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None
    resident_since: int = 0
    pending_penalty: int = 0
    preemptions: int = 0

    @property
    def prefix(self) -> str:
        return f"{self.request.request_id}/"


@dataclass
class _Queued:
    """A request waiting for admission (fresh arrival or preempted)."""

    request: RequestSpec
    enqueued_cycle: int
    steps_done: int = 0
    preempted: bool = False
    admitted_cycle: Optional[int] = None
    first_token_cycle: Optional[int] = None
    preemptions: int = 0
    evicted_cycle: Optional[int] = None


@dataclass(frozen=True)
class _IterationOutcome:
    """Everything a continuous-batching iteration contributes to the run.

    ``entry_end_cycles`` holds, per batch position, the iteration-relative
    cycle at which that request's decode step retires (the latest end of any
    of its kernels in the merged placement).  ``cache_hits``/``cache_misses``
    record the timing-cache activity of the executing pass; a memo replay
    skips those probes, so it credits ``cache_lookups`` back as hits (a
    re-execution against the now-warm cache would hit on every probe).
    """

    span_cycles: int
    entry_end_cycles: Tuple[int, ...]
    kernel_count: int
    energy_uj: float
    resource_busy: Tuple[Tuple[str, int], ...]
    cache_hits: int
    cache_misses: int

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses


#: Namespace of the process-wide iteration memo inside the timing cache.
#: Keys are fully content-addressed -- design fingerprint, unit layout,
#: dtype and the *ordered* batch composition (the list scheduler packs
#: kernels in insertion order, so order is part of the content).  Living in
#: a :meth:`~repro.perf.TimingCache.namespace` ties the memo's lifecycle to
#: the kernel entries its outcomes were computed from: clearing the timing
#: cache (tests, cold-path measurement) drops the memo too, and persistent
#: snapshots carry it across processes so repeat ``serve`` invocations
#: replay iterations instead of re-merging and re-scheduling them.
_MEMO_NAMESPACE = "serving.iteration_memo"


def _iteration_memo() -> Dict[tuple, _IterationOutcome]:
    return timing_cache().namespace(_MEMO_NAMESPACE)


def _serving_metrics(
    requests: List[RequestResult],
    iterations: List[IterationRecord],
    total_cycles: int,
    serving_cycles: int,
    kernel_count: int,
    resource_busy: Dict[str, int],
    cache_stats: Dict[str, int],
    memo_stats: Dict[str, int],
    control_active: bool = False,
    goodput: Optional[float] = None,
    dispositions: Optional[Dict[str, int]] = None,
    preemption_count: int = 0,
) -> MetricsRegistry:
    """The unified metrics registry for one serving run.

    Everything non-diagnostic is a pure function of the run's outcome
    (requests, iterations, busy cycles) and therefore identical whether
    iterations executed or replayed from the memo -- the property that keeps
    ``to_dict`` byte-stable across cache states.  Cache and memo activity is
    process-dependent and registered diagnostic.
    """
    metrics = MetricsRegistry()
    metrics.counter("serving.requests").inc(len(requests))
    metrics.counter("serving.iterations").inc(len(iterations))
    metrics.counter("serving.decode_steps").inc(
        sum(record.batch for record in iterations)
    )
    metrics.counter("serving.kernels").inc(kernel_count)
    metrics.gauge("serving.makespan_cycles").set(total_cycles)
    metrics.gauge("serving.serving_cycles").set(serving_cycles)
    batch = metrics.histogram("serving.batch")
    for record in iterations:
        batch.observe(record.batch)
    queueing = metrics.histogram("serving.queue_wait_cycles")
    for request in requests:
        if request.queueing_cycles is not None:
            queueing.observe(request.queueing_cycles)
    if control_active:
        metrics.gauge("serving.goodput").set(goodput if goodput is not None else 0.0)
        for disposition in DISPOSITIONS:
            metrics.counter(f"serving.dispositions.{disposition}").inc(
                (dispositions or {}).get(disposition, 0)
            )
        metrics.counter("serving.preemptions").inc(preemption_count)
    for resource, busy in sorted(resource_busy.items()):
        metrics.counter(f"unit.busy_cycles.{resource}").inc(busy)
    occupancy = occupancy_percent(resource_busy, serving_cycles)
    for resource, percent in occupancy.items():
        metrics.gauge(f"unit.occupancy_percent.{resource}").set(percent)
    metrics.counter("iteration_memo.hits", diagnostic=True).inc(memo_stats["hits"])
    metrics.counter("iteration_memo.misses", diagnostic=True).inc(memo_stats["misses"])
    metrics.counter("timing_cache.hits", diagnostic=True).inc(cache_stats["hits"])
    metrics.counter("timing_cache.misses", diagnostic=True).inc(cache_stats["misses"])
    return metrics


class ServingScheduler:
    """Iteration-level continuous batching on one design configuration.

    The scheduler is reusable across traces; it memoizes lowered per-step
    schedules per (model spec, bucketed context), so repeated steps -- and
    repeated *requests* with the same network -- cost schedule assembly, not
    lowering, and their kernels resolve from the timing cache.
    """

    def __init__(
        self,
        design: Union[str, DesignKind, DesignConfig] = DesignKind.VIRGO,
        heterogeneous: bool = False,
        dtype: DataType = DataType.FP16,
        iteration_memo: bool = True,
        policy: Union[str, SchedulingPolicy, None] = None,
        kv_budget: Optional[int] = None,
    ) -> None:
        if isinstance(design, str):
            design = DesignKind(design.lower())
        self.design = make_design(design, dtype) if isinstance(design, DesignKind) else design
        self.heterogeneous = heterogeneous
        self.dtype = dtype
        self.iteration_memo = iteration_memo
        self.policy = resolve_policy(policy, kv_budget)
        self._step_schedules: Dict[Tuple[ModelSpec, str], KernelSchedule] = {}
        # The previous iteration's first-fit-decreasing unit packing, reused
        # verbatim while the in-flight composition is unchanged (the common
        # steady-state case between arrivals/retirements/bucket crossings).
        self._units_signature: Optional[tuple] = None
        self._units: Tuple[str, ...] = ()
        # Request-granular unit spreading, mirroring the MoE expert spread
        # (see lowering._moe_expert_resource): with the default 4x throughput
        # ratio, one request in five rides the half-size unit, so both matrix
        # units draw down the decode batch concurrently.  The single-kernel
        # heuristic (every small GEMM onto the small unit) would funnel the
        # *entire* batch there -- in decode all GEMMs are small -- and leave
        # the big unit idle.
        self._unit_stride = 0
        if heterogeneous:
            large_mpc = self.design.matrix_unit.macs_per_cycle
            small_mpc = max(1, small_unit_config(self.design.matrix_unit).macs_per_cycle)
            self._unit_stride = max(2, round(large_mpc / small_mpc) + 1)

    def iteration_units(
        self,
        trace: ServingTrace,
        active: List[_InFlight],
        contexts: Optional[List[int]] = None,
    ) -> List[str]:
        """Per-iteration matrix-unit assignment for the active batch.

        The small unit receives requests first-fit-decreasing under a work
        budget of ``1/stride`` of the batch's total matrix work -- the
        balance point at which both units finish together, given the small
        unit is ``stride - 1`` times slower.  Re-deciding every iteration
        (and budgeting by work, not request count) keeps two guarantees a
        pin-for-life policy breaks: a request decoding in a small or
        draining batch is never stranded on the slow unit while the big
        unit idles (a lone request always exceeds the fractional budget),
        and the small unit's busy time -- at most ``(stride-1)/stride`` of
        the batch's total work -- stays below the sum of the isolated
        makespans for every trace shape, with ``1/stride`` to spare.

        The packing is a pure function of the batch's (model, bucketed
        context) composition, so when that composition matches the previous
        iteration's exactly -- no arrival, retirement or bucket crossing --
        the previous assignment is reused instead of re-running the repack.
        ``contexts`` optionally supplies the per-request bucketed contexts
        the caller already computed.
        """
        if contexts is None:
            contexts = [
                trace.bucketed_context(state.request.context_at(state.steps_done))
                for state in active
            ]
        units = [MATRIX_RESOURCE] * len(active)
        if not self._unit_stride or len(active) < 2:
            return units
        signature = tuple(
            (state.request.request_id, state.request.model, context)
            for state, context in zip(active, contexts)
        )
        if signature == self._units_signature:
            return list(self._units)
        work = [
            (
                self.step_schedule(
                    state.request, context, MATRIX_RESOURCE
                ).ideal_mac_cycles,
                state.request.request_id,
                index,
            )
            for index, (state, context) in enumerate(zip(active, contexts))
        ]
        budget = sum(estimate for estimate, _, _ in work) / self._unit_stride
        filled = 0.0
        for estimate, _, index in sorted(work, key=lambda item: (-item[0], item[1])):
            if filled + estimate <= budget:
                units[index] = SMALL_MATRIX_RESOURCE
                filled += estimate
        self._units_signature = signature
        self._units = tuple(units)
        return units

    def step_schedule(
        self, request: RequestSpec, context: int, unit: str = MATRIX_RESOURCE
    ) -> KernelSchedule:
        """The (memoized) one-decode-step schedule at a bucketed context.

        ``unit`` pins every matrix-unit kernel of the step onto one matrix
        unit (requests, not kernels, are the parallelism grain in serving);
        flash/SIMT kernels are unaffected.
        """
        spec = scaled_spec(request.model, phase="decode", context_len=context)
        schedule = self._step_schedules.get((spec, unit))
        if schedule is None:
            with phase("lower", model=request.model.family, context=context):
                schedule = lower_graph(
                    build_model(spec),
                    self.design,
                    heterogeneous=self.heterogeneous,
                    dtype=self.dtype,
                )
            if self.heterogeneous:
                schedule = replace(
                    schedule,
                    invocations=[
                        replace(inv, resource=unit)
                        if inv.kind == "gemm"
                        and inv.resource in (MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE)
                        else inv
                        for inv in schedule.invocations
                    ],
                )
            self._step_schedules[(spec, unit)] = schedule
        return schedule

    def _memo_key(
        self,
        contexts: List[int],
        active: List[_InFlight],
        units: List[str],
        penalties: Optional[List[int]] = None,
    ) -> tuple:
        """Content key of one iteration's merged schedule.

        Covers everything that can influence the merged placement *and* the
        iteration's effective span: the design (by fingerprint), the unit
        layout, the dtype and the *ordered* sequence of (request model,
        bucketed context, unit, pending KV re-read penalty) tuples --
        ordered, not a plain multiset, because the list scheduler reserves
        resources in insertion order, so the batch order is part of the
        schedule content.  The penalty element folds preemption state into
        the key (``docs/perf-contract.md`` contract 4): an iteration whose
        batch includes a just-re-admitted request never aliases a
        penalty-free composition, so memo on/off runs stay byte-identical
        under preemption.  Request identities are deliberately absent:
        prefixes rename kernels but never move them.
        """
        if penalties is None:
            penalties = [0] * len(active)
        return (
            design_fingerprint(self.design),
            self.heterogeneous,
            self.dtype,
            tuple(
                (state.request.model, context, unit, penalty)
                for state, context, unit, penalty in zip(active, contexts, units, penalties)
            ),
        )

    def _execute_iteration(
        self,
        trace: ServingTrace,
        active: List[_InFlight],
        contexts: List[int],
        units: List[str],
        label: str,
        duration_scale: float = 1.0,
    ) -> _IterationOutcome:
        """Merge, schedule and execute one iteration's batch for real."""
        with phase("merge", batch=len(active)):
            entries = [
                (state.prefix, self.step_schedule(state.request, context, unit))
                for state, context, unit in zip(active, contexts, units)
            ]
            merged = merge_schedules(entries, model=label)
        result = execute_schedule(merged, duration_scale=duration_scale)
        # Per-request completion inside the iteration: the latest end of any
        # of the request's (prefixed) layers in the merged placement, found
        # in one pass over the layers instead of one scan per request.
        ends: Dict[str, int] = {}
        for layer in result.layers:
            prefix = layer.layer.split("/", 1)[0] + "/"
            if layer.end > ends.get(prefix, -1):
                ends[prefix] = layer.end
        return _IterationOutcome(
            span_cycles=result.total_cycles,
            entry_end_cycles=tuple(ends[state.prefix] for state in active),
            kernel_count=result.kernel_count,
            energy_uj=result.active_energy_uj,
            resource_busy=tuple(sorted(result.resource_busy.items())),
            cache_hits=result.timing_cache.get("hits", 0),
            cache_misses=result.timing_cache.get("misses", 0),
        )

    def _readmission_penalty(self, entry: _Queued, ctx: PolicyContext) -> int:
        """KV re-read cost of re-admitting a preempted request, in cycles.

        Eviction drops the request's KV state from HBM residency; coming
        back, the state streams in again over the DRAM channel -- capacity
        bytes over channel bandwidth, plus the channel latency.
        """
        dram = self.design.soc.dram
        kv_bytes = ctx.kv_bytes(entry.request, entry.steps_done)
        return int(math.ceil(kv_bytes / dram.bandwidth_bytes_per_cycle)) + dram.latency_cycles

    def run(
        self,
        trace: Union[str, ServingTrace],
        faults: Optional[FaultPlan] = None,
    ) -> ServingRunResult:
        """Continuous-batch ``trace`` to completion and report per-request metrics."""
        trace = resolve_trace(trace) if isinstance(trace, str) else trace
        injector = FaultInjector(faults) if faults is not None and faults.active else None
        if injector is not None:
            trace = injector.perturb_trace(trace)
        # The control plane is "active" -- and its extra result fields are
        # populated -- only when something can deviate from historical
        # behaviour.  Default FCFS runs over SLO-free traces without faults
        # take the exact pre-control-plane path, which pins the goldens.
        control_active = (
            self.policy.name != "fcfs"
            or injector is not None
            or any(request.slo is not None for request in trace.requests)
        )
        ctx = PolicyContext(
            design=self.design,
            dtype=self.dtype,
            trace=trace,
            kv_budget_bytes=self.design.soc.dram.hbm_capacity_bytes,
        )
        pending: List[RequestSpec] = list(trace.sorted_requests())
        queued: List[_Queued] = []
        active: List[_InFlight] = []
        finished: Dict[str, _InFlight] = {}
        terminated: Dict[str, Tuple[_Queued, str, int]] = {}
        preemption_count = 0

        now = 0
        serving_cycles = 0
        kernel_count = 0
        energy_uj = 0.0
        resource_busy: Dict[str, int] = {}
        cache = timing_cache()
        cache_stats = {"hits": 0, "misses": 0}
        memo_stats = {"hits": 0, "misses": 0}
        memo_table = _iteration_memo() if self.iteration_memo else None
        iterations: List[IterationRecord] = []
        recorder = trace_recorder()
        # Iteration-relative kernel span shapes captured at memo-miss time,
        # keyed like the memo itself.  The merged placement is a pure
        # function of the composition, so a memo hit replays the captured
        # shape shifted to the new iteration start -- the placement the memo
        # skipped rebuilding.  Compositions warmed before tracing started
        # have no shape to replay and fall back to synthesized per-unit
        # epoch spans.
        span_shapes: Dict[tuple, CapturedSpans] = {}

        while pending or queued or active:
            # Arrivals: iteration-level continuous batching enqueues every
            # request whose arrival has passed at the iteration boundary.
            while pending and pending[0].arrival_cycle <= now:
                request = pending.pop(0)
                queued.append(_Queued(request=request, enqueued_cycle=request.arrival_cycle))

            # Control plane: shed hopeless waiters, preempt for higher
            # priorities, admit under the iteration budget.  The default
            # FCFS policy sheds nothing, evicts nothing and admits the whole
            # queue, reproducing the historical loop exactly.
            for entry in self.policy.shed(queued, now, ctx):
                queued.remove(entry)
                disposition = "timed_out" if entry.preempted else "shed"
                terminated[entry.request.request_id] = (entry, disposition, now)
            if queued and active:
                for state in self.policy.evict(active, queued, now, ctx):
                    active.remove(state)
                    preemption_count += 1
                    queued.append(
                        _Queued(
                            request=state.request,
                            enqueued_cycle=now,
                            steps_done=state.steps_done,
                            preempted=True,
                            admitted_cycle=state.admitted_cycle,
                            first_token_cycle=state.first_token_cycle,
                            preemptions=state.preemptions + 1,
                            evicted_cycle=now,
                        )
                    )
            if queued:
                admitted = self.policy.admit(queued, active, now, ctx)
                if not admitted and not active:
                    # Progress safety valve: with nothing decoding and
                    # nothing admissible, force the oldest waiter in even
                    # over budget -- the scheduler must never deadlock on a
                    # request too large for the configured budget.
                    admitted = [
                        min(queued, key=lambda e: (e.enqueued_cycle, e.request.request_id))
                    ]
                for entry in admitted:
                    queued.remove(entry)
                    penalty = (
                        self._readmission_penalty(entry, ctx) if entry.preempted else 0
                    )
                    if recorder is not None and entry.evicted_cycle is not None:
                        recorder.add_span(
                            "preempted",
                            process=REQUESTS_PROCESS,
                            track=entry.request.request_id,
                            start=entry.evicted_cycle,
                            duration=now - entry.evicted_cycle,
                            category="preempted",
                            args={"readmission_penalty_cycles": penalty},
                        )
                    active.append(
                        _InFlight(
                            request=entry.request,
                            admitted_cycle=(
                                entry.admitted_cycle
                                if entry.admitted_cycle is not None
                                else now
                            ),
                            steps_done=entry.steps_done,
                            first_token_cycle=entry.first_token_cycle,
                            resident_since=now,
                            pending_penalty=penalty,
                            preemptions=entry.preemptions,
                        )
                    )
            if not active:
                if pending:
                    now = pending[0].arrival_cycle
                continue

            contexts = [
                trace.bucketed_context(state.request.context_at(state.steps_done))
                for state in active
            ]
            units = self.iteration_units(trace, active, contexts)
            penalties = [state.pending_penalty for state in active]

            # Fault injection: a spiked iteration executes with scaled kernel
            # durations and bypasses the memo in both directions -- no read
            # (a clean replay would dodge the spike) and no write (the
            # poisoned outcome must not leak into clean iterations) -- so
            # memo on/off runs stay byte-identical under faults.
            index = len(iterations)
            spike = injector.iteration_spike(index) if injector is not None else None
            stall = injector.iteration_stall(index) if injector is not None else 0

            # Iteration memoization: KV bucketing makes batch compositions
            # repeat within (and across) runs, and the merged schedule is a
            # pure function of the composition -- so a repeated composition
            # replays the recorded outcome instead of re-merging and
            # re-scheduling.  Disabled alongside the timing cache: the cold
            # path must measure real work.
            memo = memo_table if cache.enabled and spike is None else None
            key = (
                self._memo_key(contexts, active, units, penalties)
                if memo is not None
                else None
            )
            outcome = memo.get(key) if memo is not None else None
            replayed = outcome is not None
            if outcome is None:
                label = f"serve:{trace.name}#{index}"
                with phase("serving.iteration", index=index, batch=len(active)):
                    if recorder is not None:
                        marker = recorder.mark()
                        with recorder.time_offset(now):
                            outcome = self._execute_iteration(
                                trace, active, contexts, units, label=label,
                                duration_scale=spike if spike is not None else 1.0,
                            )
                        if key is not None:
                            span_shapes[key] = recorder.capture(marker, base=now)
                    else:
                        outcome = self._execute_iteration(
                            trace, active, contexts, units, label=label,
                            duration_scale=spike if spike is not None else 1.0,
                        )
                if memo is not None:
                    memo[key] = outcome
                memo_stats["misses"] += 1
                cache_stats["hits"] += outcome.cache_hits
                cache_stats["misses"] += outcome.cache_misses
            else:
                memo_stats["hits"] += 1
                # Replaying the outcome skips the per-kernel cache probes the
                # execution would have performed (all hits on a warm cache);
                # credit them so memoized and non-memoized runs report the
                # same lookup totals.
                cache.credit_hits(outcome.cache_lookups)
                cache_stats["hits"] += outcome.cache_lookups
                if recorder is not None:
                    shape = span_shapes.get(key)
                    if shape is not None:
                        recorder.replay(shape, base=now)
                    else:
                        for resource, busy in outcome.resource_busy:
                            recorder.add_span(
                                "epoch (memoized)",
                                process=UNITS_PROCESS,
                                track=resource,
                                start=now,
                                duration=outcome.span_cycles,
                                category="epoch",
                                args={
                                    "busy_cycles": busy,
                                    "kernels": outcome.kernel_count,
                                },
                            )

            # The iteration's effective span: the merged schedule's makespan,
            # stretched by any re-admission penalty serialized in front of a
            # request's step, plus an injected stall.  All zero on the
            # default path, where effective == outcome.span_cycles exactly.
            effective_span = outcome.span_cycles
            for state, end in zip(active, outcome.entry_end_cycles):
                if state.pending_penalty:
                    effective_span = max(effective_span, end + state.pending_penalty)
            effective_span += stall

            for state, end in zip(active, outcome.entry_end_cycles):
                done_at = now + state.pending_penalty + end
                if recorder is not None:
                    recorder.add_span(
                        f"step {state.steps_done}",
                        process=REQUESTS_PROCESS,
                        track=state.request.request_id,
                        start=now,
                        duration=state.pending_penalty + end,
                        category="decode_step",
                        args={"iteration": index},
                    )
                state.steps_done += 1
                state.pending_penalty = 0
                if state.first_token_cycle is None:
                    state.first_token_cycle = done_at
                if state.steps_done == state.request.decode_steps:
                    state.finish_cycle = done_at
                    finished[state.request.request_id] = state

            if recorder is not None:
                recorder.add_span(
                    f"iteration {index}",
                    process=SCHEDULER_PROCESS,
                    track="iterations",
                    start=now,
                    duration=effective_span,
                    category="iteration",
                    args={
                        "batch": len(active),
                        "requests": [state.request.request_id for state in active],
                        "memo": "replay" if replayed else ("miss" if memo is not None else "off"),
                        "kernels": outcome.kernel_count,
                    },
                )
                if stall:
                    recorder.add_span(
                        "stall (fault)",
                        process=SCHEDULER_PROCESS,
                        track="iterations",
                        start=now + effective_span - stall,
                        duration=stall,
                        category="fault",
                        args={"iteration": index},
                    )
            iterations.append(
                IterationRecord(
                    index=index,
                    start_cycle=now,
                    span_cycles=effective_span,
                    batch=len(active),
                    request_ids=[state.request.request_id for state in active],
                )
            )
            serving_cycles += effective_span
            kernel_count += outcome.kernel_count
            energy_uj += outcome.energy_uj
            for resource, busy in outcome.resource_busy:
                resource_busy[resource] = resource_busy.get(resource, 0) + busy

            now += effective_span
            active = [state for state in active if state.finish_cycle is None]

        requests: List[RequestResult] = []
        for request in trace.sorted_requests():
            rid = request.request_id
            slo_name = request.slo.name if request.slo is not None else None
            if rid in finished:
                state = finished[rid]
                disposition = (
                    evaluate_disposition(
                        request,
                        state.first_token_cycle - request.arrival_cycle,
                        state.finish_cycle - request.arrival_cycle,
                    )
                    if control_active
                    else None
                )
                requests.append(
                    RequestResult(
                        request_id=rid,
                        arrival_cycle=request.arrival_cycle,
                        admitted_cycle=state.admitted_cycle,
                        first_token_cycle=state.first_token_cycle,
                        finish_cycle=state.finish_cycle,
                        prompt_len=request.prompt_len,
                        decode_steps=request.decode_steps,
                        model_family=request.model.family,
                        disposition=disposition,
                        slo_class=slo_name if control_active else None,
                        preemptions=state.preemptions,
                        terminal_cycle=state.finish_cycle if control_active else None,
                    )
                )
            else:
                entry, disposition, cycle = terminated[rid]
                requests.append(
                    RequestResult(
                        request_id=rid,
                        arrival_cycle=request.arrival_cycle,
                        admitted_cycle=entry.admitted_cycle,
                        first_token_cycle=entry.first_token_cycle,
                        finish_cycle=None,
                        prompt_len=request.prompt_len,
                        decode_steps=request.decode_steps,
                        model_family=request.model.family,
                        disposition=disposition,
                        slo_class=slo_name,
                        preemptions=entry.preemptions,
                        terminal_cycle=cycle,
                    )
                )
        goodput: Optional[float] = None
        dispositions: Dict[str, int] = {}
        if control_active:
            dispositions = {name: 0 for name in DISPOSITIONS}
            for result in requests:
                dispositions[result.disposition] += 1
            goodput = dispositions["met"] / len(requests) if requests else 0.0
        if recorder is not None:
            # Request lifecycle timeline: a queue span (arrival to admission)
            # followed by a decode span (admission to finish) that nests the
            # per-step spans recorded during the loop, one track per request.
            # Shed/timed-out requests get a single terminal span instead.
            for request in requests:
                if not request.finished:
                    recorder.add_span(
                        request.disposition,
                        process=REQUESTS_PROCESS,
                        track=request.request_id,
                        start=request.arrival_cycle,
                        duration=request.terminal_cycle - request.arrival_cycle,
                        category=request.disposition,
                        args={"preemptions": request.preemptions},
                    )
                    continue
                recorder.add_span(
                    "queue",
                    process=REQUESTS_PROCESS,
                    track=request.request_id,
                    start=request.arrival_cycle,
                    duration=request.queueing_cycles,
                    category="queue",
                )
                recorder.add_span(
                    "decode",
                    process=REQUESTS_PROCESS,
                    track=request.request_id,
                    start=request.admitted_cycle,
                    duration=request.finish_cycle - request.admitted_cycle,
                    category="decode",
                    args={
                        "model": request.model_family,
                        "prompt_len": request.prompt_len,
                        "decode_steps": request.decode_steps,
                        "ttft_cycles": request.ttft_cycles,
                    },
                )
        return ServingRunResult(
            trace=trace.name,
            design=self.design,
            heterogeneous=self.heterogeneous,
            context_bucket=trace.context_bucket,
            total_cycles=now,
            serving_cycles=serving_cycles,
            requests=requests,
            iterations=iterations,
            kernel_count=kernel_count,
            energy_uj=energy_uj,
            resource_busy=resource_busy,
            timing_cache=cache_stats,
            iteration_memo=memo_stats,
            metrics=_serving_metrics(
                requests, iterations, now, serving_cycles, kernel_count,
                resource_busy, cache_stats, memo_stats,
                control_active=control_active,
                goodput=goodput,
                dispositions=dispositions,
                preemption_count=preemption_count,
            ),
            policy=self.policy.name,
            control_active=control_active,
            goodput=goodput,
            dispositions=dispositions,
            preemption_count=preemption_count,
            fault_plan=faults if injector is not None else None,
        )

    def isolated_step_spans(
        self, request: RequestSpec, context_bucket: int
    ) -> List[int]:
        """Each decode step's makespan when the request runs entirely alone.

        Uses the same per-step schedules (and KV bucketing) as the batched
        run, so the comparison isolates *contention and overlap* rather than
        differing kernel shapes.  The sum of the spans is the request's
        isolated latency; it lower-bounds the latency any batched run can
        give the request, and summing across requests upper-bounds the
        merged serving span (both enforced by the property suite).
        """
        spans = []
        for step in range(request.decode_steps):
            context = bucket_context(request.context_at(step), context_bucket)
            # Alone, a request always gets the full-size unit: the isolated
            # baseline is best-effort single-request serving, not a replay of
            # whatever unit the batched run happened to pin it to.
            schedule = self.step_schedule(request, context, MATRIX_RESOURCE)
            spans.append(execute_schedule(schedule).total_cycles)
        return spans

    def isolated_cycles(self, request: RequestSpec, context_bucket: int) -> int:
        """The request's isolated end-to-end decode latency (sum of step spans)."""
        return sum(self.isolated_step_spans(request, context_bucket))


def run_serving(
    trace: Union[str, ServingTrace],
    design: Union[str, DesignKind, DesignConfig] = DesignKind.VIRGO,
    heterogeneous: bool = False,
    dtype: DataType = DataType.FP16,
    iteration_memo: bool = True,
    policy: Union[str, SchedulingPolicy, None] = None,
    kv_budget: Optional[int] = None,
    faults: Union[str, FaultPlan, None] = None,
    fault_seed: int = 0,
) -> ServingRunResult:
    """Continuous-batch a serving trace on one design (zoo name or explicit).

    ``iteration_memo=False`` disables the process-wide iteration memo (every
    iteration merges and schedules afresh); results are identical either way
    -- the memo is a pure accelerator, enforced by the property suite.
    ``policy`` selects the admission policy (``fcfs`` / ``kv-budget`` /
    ``preemptive-slo``), ``kv_budget`` overrides the design's HBM capacity
    for the budgeted policies, and ``faults`` injects a seeded
    :class:`~repro.faults.FaultPlan` (or an ``--inject``-style spec string,
    parsed with ``fault_seed``).
    """
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults, seed=fault_seed)
    scheduler = ServingScheduler(
        design,
        heterogeneous=heterogeneous,
        dtype=dtype,
        iteration_memo=iteration_memo,
        policy=policy,
        kv_budget=kv_budget,
    )
    with phase("serving.run", trace=trace if isinstance(trace, str) else trace.name):
        return scheduler.run(trace, faults=faults)
