"""End-to-end model workloads lowered onto the kernel timing models.

This subsystem turns whole networks -- not single kernels -- into the unit
of experiment, so cluster-level questions (does disaggregation still win
when decode-phase GEMMs are skinny? what fraction of a serving step is
softmax?) can be answered directly.

Pipeline
--------
1. :mod:`repro.workloads.graph` -- a declarative layer-graph IR with shape
   inference over (batch, sequence, features, heads);
2. :mod:`repro.workloads.models` -- a model zoo building GPT-style decoders
   (prefill and decode as separate graphs), Mixtral-style MoE decoders with
   expert-parallel FFN blocks, BERT-style encoders and a GEMM-chain baseline
   from a :class:`~repro.workloads.models.ModelSpec`;
3. :mod:`repro.workloads.lowering` -- lowers each layer onto the existing
   GEMM / FlashAttention / SIMT kernel models, schedules the resulting
   dependency graph on the cluster's resources, and aggregates a
   :class:`~repro.workloads.lowering.ModelRunResult`;
4. :mod:`repro.workloads.serving` -- iteration-level continuous batching
   over :class:`~repro.workloads.graph.ServingTrace` request streams: every
   in-flight request's next decode step is merged into one kernel schedule
   per iteration, so independent requests overlap on the matrix/SIMT units
   and per-request latency percentiles fall out of the placement;
5. :mod:`repro.workloads.batch` -- fans (model, design) and (trace, design)
   sweeps over a process pool with a content-hashed on-disk JSON result
   cache (:func:`~repro.workloads.batch.moe_sweep_jobs` crosses the MoE
   routing knobs, :func:`~repro.workloads.batch.serving_sweep_jobs` the
   serving batch mixes).

Per-kernel timings flow through the process-wide timing cache
(:mod:`repro.perf`; per-run hit/miss stats land in
``ModelRunResult.timing_cache``) and, for GEMMs, through the steady-state
compressed scheduler (``full_expansion=True`` on
:func:`repro.kernels.gemm.simulate_gemm` keeps the expanded oracle path).
``docs/perf-contract.md`` states both contracts precisely.

Usage
-----
>>> from repro.workloads import run_model
>>> result = run_model("gpt-prefill", "virgo")
>>> result.total_cycles, result.mac_utilization_percent  # doctest: +SKIP

From the command line::

    python -m repro model --list
    python -m repro model --name gpt-prefill --design virgo
    python -m repro model --name moe-decode --design virgo --hetero --moe-breakdown
    python -m repro model --batch --names gpt-prefill,gpt-decode \\
        --designs virgo,ampere --cache-dir /tmp/repro-cache
    python -m repro serve --trace poisson-mixed --latency-report
"""

from repro.workloads.control import (
    POLICIES,
    SLO_CLASSES,
    FcfsPolicy,
    KvBudgetPolicy,
    PolicyContext,
    PreemptiveSloPolicy,
    SchedulingPolicy,
    SloClass,
    policy_names,
    request_kv_bytes,
    resolve_policy,
    resolve_slo,
)
from repro.workloads.epochs import (
    EpisodeRun,
    EpisodeTemplate,
    EpochRecord,
    IterationRecord,
    IterationTimeline,
)
from repro.workloads.graph import (
    AttentionLayer,
    ElementwiseLayer,
    Layer,
    LayerGraph,
    LayerKind,
    LinearLayer,
    MoeBlock,
    MoeFfnLayer,
    NormLayer,
    RequestSpec,
    ServingTrace,
    TensorShape,
    build_request_stream,
    build_stream_trace,
)
from repro.workloads.fleet import (
    FLEET_DISPOSITIONS,
    ROUTER_POLICIES,
    FleetRequestResult,
    FleetRunResult,
    ReplicaReport,
    RouterConfig,
    backoff_cycles,
    resolve_fleet_designs,
    resolve_router_policy,
    run_fleet,
)
from repro.workloads.models import (
    FLEET_ZOO,
    MODEL_ZOO,
    REQUEST_MODELS,
    TRACE_ZOO,
    ModelSpec,
    bert_encoder,
    build_model,
    bursty_trace,
    fleet_names,
    gemm_chain,
    gpt_decoder,
    model_names,
    resolve_fleet,
    moe_decoder,
    poisson_stream_trace,
    poisson_trace,
    resolve_spec,
    resolve_trace,
    scaled_spec,
    slo_trace,
    trace_names,
    uniform_trace,
    varlen_trace,
)
from repro.workloads.lowering import (
    KernelInvocation,
    KernelSchedule,
    LayerRunResult,
    ModelRunResult,
    execute_schedule,
    lower_graph,
    merge_schedules,
    run_model,
)
from repro.workloads.serving import (
    DISPOSITIONS,
    RequestResult,
    ServingRunResult,
    ServingScheduler,
    run_serving,
)
from repro.workloads.batch import (
    BatchJob,
    BatchOutcome,
    BatchReport,
    FleetJob,
    ResultCache,
    ServingJob,
    fleet_sweep_jobs,
    moe_sweep_jobs,
    run_batch,
    serving_sweep_jobs,
    sweep_jobs,
)

__all__ = [
    "EpisodeRun",
    "EpisodeTemplate",
    "EpochRecord",
    "IterationRecord",
    "IterationTimeline",
    "POLICIES",
    "SLO_CLASSES",
    "FcfsPolicy",
    "KvBudgetPolicy",
    "PolicyContext",
    "PreemptiveSloPolicy",
    "SchedulingPolicy",
    "SloClass",
    "policy_names",
    "request_kv_bytes",
    "resolve_policy",
    "resolve_slo",
    "AttentionLayer",
    "ElementwiseLayer",
    "Layer",
    "LayerGraph",
    "LayerKind",
    "LinearLayer",
    "MoeBlock",
    "MoeFfnLayer",
    "NormLayer",
    "RequestSpec",
    "ServingTrace",
    "TensorShape",
    "build_request_stream",
    "build_stream_trace",
    "FLEET_DISPOSITIONS",
    "ROUTER_POLICIES",
    "FleetRequestResult",
    "FleetRunResult",
    "ReplicaReport",
    "RouterConfig",
    "backoff_cycles",
    "resolve_fleet_designs",
    "resolve_router_policy",
    "run_fleet",
    "FLEET_ZOO",
    "MODEL_ZOO",
    "REQUEST_MODELS",
    "TRACE_ZOO",
    "ModelSpec",
    "bert_encoder",
    "build_model",
    "bursty_trace",
    "gemm_chain",
    "gpt_decoder",
    "model_names",
    "moe_decoder",
    "poisson_stream_trace",
    "poisson_trace",
    "resolve_spec",
    "resolve_trace",
    "scaled_spec",
    "slo_trace",
    "trace_names",
    "uniform_trace",
    "varlen_trace",
    "KernelInvocation",
    "KernelSchedule",
    "LayerRunResult",
    "ModelRunResult",
    "execute_schedule",
    "lower_graph",
    "merge_schedules",
    "run_model",
    "DISPOSITIONS",
    "RequestResult",
    "ServingRunResult",
    "ServingScheduler",
    "run_serving",
    "BatchJob",
    "BatchOutcome",
    "BatchReport",
    "FleetJob",
    "ResultCache",
    "ServingJob",
    "fleet_names",
    "fleet_sweep_jobs",
    "moe_sweep_jobs",
    "resolve_fleet",
    "run_batch",
    "serving_sweep_jobs",
    "sweep_jobs",
]
