"""Model zoo: build full layer graphs from a handful of hyperparameters.

Four families cover the scenario space the evaluation cares about:

* GPT-style decoder blocks, with the **prefill** phase (full-sequence causal
  attention) and the **decode** phase (one query token against a long KV
  context) built as separate graphs, since their kernel mixes differ sharply;
* Mixtral-style **MoE decoders**: the same attention sublayers, but every
  dense FFN replaced by an expert-parallel routed mixture
  (:class:`~repro.workloads.graph.MoeFfnLayer`) whose independent expert
  GEMM pairs give the scheduler a graph wide enough to keep the matrix and
  SIMT units busy simultaneously;
* BERT-style encoder blocks (bidirectional attention, no mask);
* a GEMM-chain baseline (an MLP / im2col-style CNN stand-in) that exercises
  the matrix-unit path with no attention at all.

All builders take a :class:`ModelSpec` so a design-space sweep can vary
hidden size, depth, head layout (including GQA/MQA via ``kv_heads``),
sequence length and batch from one record -- and so the batch runner can
content-hash the exact workload it ran.

The serving-trace zoo at the bottom of the module builds request *streams*
for the continuous-batching scheduler (:mod:`repro.workloads.serving`):
deterministic poisson / bursty / uniform arrival families over mixes of the
decode-phase request presets in :data:`REQUEST_MODELS`.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.graph import (
    AttentionLayer,
    ElementwiseLayer,
    LayerGraph,
    LinearLayer,
    MoeBlock,
    MoeFfnLayer,
    NormLayer,
    RequestSpec,
    ServingTrace,
    TensorShape,
    build_request_stream,
    build_stream_trace,
)
from repro.workloads.control import SloClass, resolve_slo

#: FLOPs per element of a GeLU evaluated with the tanh approximation.
GELU_FLOPS = 8.0
#: FLOPs per element of a residual add.
RESIDUAL_FLOPS = 1.0


@dataclass(frozen=True)
class ModelSpec:
    """Hyperparameters of one model workload instance.

    ``phase`` selects prefill vs decode for GPT models; ``context_len`` is
    the KV length decode attends over (ignored for other phases).
    """

    family: str = "gpt"
    batch: int = 1
    seq_len: int = 256
    hidden: int = 512
    blocks: int = 2
    heads: int = 8
    kv_heads: int = 0  # 0 = same as heads; 1 = MQA; in between = GQA
    ffn_mult: int = 4
    phase: str = "prefill"
    context_len: int = 0  # decode KV length (0 = seq_len); prefill: prior context
    # Mixture-of-experts hyperparameters (family "moe"; ignored elsewhere).
    experts: int = 0  # 0 = dense FFN
    top_k: int = 2
    capacity_factor: float = 1.0
    shared_experts: int = 0  # DeepSeek-style always-on dense experts
    # Attention mask variants (GPT/MoE families).
    window: int = 0  # sliding-window attention width; 0 = unwindowed
    seq_lens: Tuple[int, ...] = ()  # ragged prefill batch packed varlen

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ValueError(
                f"hidden ({self.hidden}) must be divisible by heads ({self.heads})"
            )
        if self.batch <= 0 or self.seq_len <= 0 or self.blocks <= 0:
            raise ValueError("batch, seq_len and blocks must be positive")
        if self.family == "moe" and self.experts <= 0:
            raise ValueError("moe models need a positive expert count")
        if self.experts and not 0 < self.top_k <= self.experts:
            raise ValueError(
                f"top_k ({self.top_k}) must be in 1..experts ({self.experts})"
            )
        if self.window < 0:
            raise ValueError(f"window ({self.window}) must be >= 0")
        if self.phase == "prefill" and self.context_len:
            if self.context_len < self.seq_len:
                raise ValueError(
                    f"prefill over prior context needs context_len "
                    f"({self.context_len}) >= seq_len ({self.seq_len})"
                )
        if self.seq_lens:
            if self.phase != "prefill":
                raise ValueError("seq_lens describes a ragged prefill batch")
            if self.batch != 1:
                raise ValueError("varlen packs the ragged batch; use batch=1")
            if self.context_len:
                raise ValueError("varlen batches carry no prior context")
            if sum(self.seq_lens) != self.seq_len:
                raise ValueError(
                    f"seq_lens {self.seq_lens} must sum to seq_len {self.seq_len}"
                )

    def __hash__(self) -> int:
        """The generated field-tuple hash, computed once and pinned.

        Serving memo keys hash the spec at every iteration boundary;
        the instance is frozen, so caching is observationally identical
        to the dataclass-generated ``__hash__`` (same tuple, same value).
        """
        cached = self.__dict__.get("_spec_hash")
        if cached is None:
            cached = hash(
                (
                    self.family,
                    self.batch,
                    self.seq_len,
                    self.hidden,
                    self.blocks,
                    self.heads,
                    self.kv_heads,
                    self.ffn_mult,
                    self.phase,
                    self.context_len,
                    self.experts,
                    self.top_k,
                    self.capacity_factor,
                    self.shared_experts,
                    self.window,
                    self.seq_lens,
                )
            )
            object.__setattr__(self, "_spec_hash", cached)
        return cached

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def ffn_hidden(self) -> int:
        return self.ffn_mult * self.hidden

    @property
    def effective_kv_heads(self) -> int:
        return self.kv_heads or self.heads

    @property
    def qkv_features(self) -> int:
        """Output width of the fused QKV projection (GQA shrinks K/V)."""
        return (self.heads + 2 * self.effective_kv_heads) * self.head_dim

    def to_dict(self) -> Dict[str, object]:
        # The mask fields are emitted only when set: every pre-existing spec
        # encodes byte-identically, so unmasked goldens and content-hashed
        # cache keys stay stable (same pattern as ``RequestSpec.slo``).
        encoded = asdict(self)
        if not self.window:
            del encoded["window"]
        if not self.seq_lens:
            del encoded["seq_lens"]
        else:
            encoded["seq_lens"] = list(self.seq_lens)
        return encoded


def _transformer_block(
    graph: LayerGraph,
    spec: ModelSpec,
    index: int,
    previous: str,
    phase: str,
    causal: bool,
    kv_seq: int,
    moe: bool = False,
) -> str:
    """Append one pre-norm transformer block; returns the output layer name.

    ``moe=True`` replaces the dense FFN sublayer with an expert-parallel
    :class:`~repro.workloads.graph.MoeFfnLayer` (or
    :class:`~repro.workloads.graph.MoeBlock` when ``spec.shared_experts``
    asks for always-on dense experts).
    """
    prefix = f"block{index}"
    deps = (previous,) if previous else ()

    graph.add(NormLayer(name=f"{prefix}.ln1", deps=deps, phase=phase))
    # The fused QKV projection keeps its full width; attention then operates
    # on the query slice (heads x head_dim), which is what reaches the output
    # projection -- the K/V slices feed the score GEMMs inside the attention
    # node itself.
    graph.add(
        LinearLayer(
            name=f"{prefix}.qkv",
            deps=(f"{prefix}.ln1",),
            phase=phase,
            in_features=spec.hidden,
            out_features=spec.qkv_features,
        )
    )
    graph.add(
        ElementwiseLayer(
            name=f"{prefix}.qkv_split",
            deps=(f"{prefix}.qkv",),
            phase=phase,
            flops_per_element=0.0,
            operator="slice",
        )
    )
    graph.add(
        _AttentionOnQuerySlice(
            name=f"{prefix}.attn",
            deps=(f"{prefix}.qkv_split",),
            phase=phase,
            heads=spec.heads,
            head_dim=spec.head_dim,
            kv_heads=spec.kv_heads,
            kv_seq=kv_seq,
            causal=causal,
            window=spec.window if causal else 0,
            seq_lens=spec.seq_lens if causal else (),
            query_features=spec.qkv_features,
        )
    )
    graph.add(
        LinearLayer(
            name=f"{prefix}.proj",
            deps=(f"{prefix}.attn",),
            phase=phase,
            in_features=spec.hidden,
            out_features=spec.hidden,
        )
    )
    residual_deps = (f"{prefix}.proj", previous) if previous else (f"{prefix}.proj",)
    graph.add(
        ElementwiseLayer(
            name=f"{prefix}.residual1",
            deps=residual_deps,
            phase=phase,
            flops_per_element=RESIDUAL_FLOPS,
        )
    )

    graph.add(NormLayer(name=f"{prefix}.ln2", deps=(f"{prefix}.residual1",), phase=phase))
    if moe:
        moe_kwargs = dict(
            name=f"{prefix}.moe",
            deps=(f"{prefix}.ln2",),
            phase=phase,
            in_features=spec.hidden,
            expert_hidden=spec.ffn_hidden,
            experts=spec.experts,
            top_k=spec.top_k,
            capacity_factor=spec.capacity_factor,
            activation_flops=GELU_FLOPS,
        )
        if spec.shared_experts:
            graph.add(MoeBlock(shared_experts=spec.shared_experts, **moe_kwargs))
        else:
            graph.add(MoeFfnLayer(**moe_kwargs))
        graph.add(
            ElementwiseLayer(
                name=f"{prefix}.residual2",
                deps=(f"{prefix}.moe", f"{prefix}.residual1"),
                phase=phase,
                flops_per_element=RESIDUAL_FLOPS,
            )
        )
        return f"{prefix}.residual2"
    graph.add(
        LinearLayer(
            name=f"{prefix}.ffn_up",
            deps=(f"{prefix}.ln2",),
            phase=phase,
            in_features=spec.hidden,
            out_features=spec.ffn_hidden,
        )
    )
    graph.add(
        ElementwiseLayer(
            name=f"{prefix}.gelu",
            deps=(f"{prefix}.ffn_up",),
            phase=phase,
            flops_per_element=GELU_FLOPS,
            operator="gelu",
        )
    )
    graph.add(
        LinearLayer(
            name=f"{prefix}.ffn_down",
            deps=(f"{prefix}.gelu",),
            phase=phase,
            in_features=spec.ffn_hidden,
            out_features=spec.hidden,
        )
    )
    graph.add(
        ElementwiseLayer(
            name=f"{prefix}.residual2",
            deps=(f"{prefix}.ffn_down", f"{prefix}.residual1"),
            phase=phase,
            flops_per_element=RESIDUAL_FLOPS,
        )
    )
    return f"{prefix}.residual2"


@dataclass(frozen=True)
class _AttentionOnQuerySlice(AttentionLayer):
    """Attention fed by a fused-QKV activation: validates the fused width,
    emits the query-width output that the rest of the block consumes."""

    query_features: int = 0

    def infer_shape(self, inputs):  # type: ignore[override]
        shape = inputs[0]
        if self.query_features and shape.features != self.query_features:
            raise ValueError(
                f"attention layer {self.name!r} expects the fused QKV width "
                f"{self.query_features}, got {shape.features}"
            )
        self.validate_ragged(shape)
        return shape.with_features(self.model_dim)


def _decoder_shape(spec: ModelSpec) -> Tuple[TensorShape, int]:
    """Activation shape and attention KV length for a GPT/MoE decoder spec.

    Decode: single-token queries over the ``context_len`` KV cache.
    Prefill: full-sequence causal attention; ``context_len`` (if set) adds
    prior KV context (chunked prefill), and ``seq_lens`` packs a ragged
    batch varlen (batch 1, sequences concatenated).
    """
    if spec.phase == "decode":
        kv_seq = spec.context_len or spec.seq_len
        return TensorShape(batch=spec.batch, seq=1, features=spec.hidden), kv_seq
    kv_seq = spec.context_len or 0
    return (
        TensorShape(batch=spec.batch, seq=spec.seq_len, features=spec.hidden),
        kv_seq,
    )


def gpt_decoder(spec: ModelSpec) -> LayerGraph:
    """GPT-style stack of pre-norm decoder blocks.

    ``spec.phase == "prefill"`` builds causal full-sequence attention --
    over prior KV context when ``context_len`` is set (chunked prefill),
    sliding-window when ``window`` is set, varlen-packed when ``seq_lens``
    describes a ragged batch; ``spec.phase == "decode"`` builds single-token
    queries (seq 1) attending over ``context_len`` cached KV entries -- the
    kernel mix that dominates serving, where every GEMM degenerates to a
    skinny matrix-vector shape.
    """
    shape, kv_seq = _decoder_shape(spec)
    graph = LayerGraph(f"gpt-{spec.phase}", shape)
    previous = ""
    for index in range(spec.blocks):
        previous = _transformer_block(
            graph,
            spec,
            index,
            previous,
            phase=spec.phase,
            # Decode is causal attention too: the single query's mask row is
            # trivially full, but a sliding window still prunes old keys.
            causal=True,
            kv_seq=kv_seq,
        )
    graph.add(NormLayer(name="final_ln", deps=(previous,), phase=spec.phase))
    return graph


def moe_decoder(spec: ModelSpec) -> LayerGraph:
    """Mixtral-style decoder: GPT attention sublayers + expert-parallel FFNs.

    Every block's dense FFN is replaced by a routed mixture of
    ``spec.experts`` experts (``spec.top_k`` active per token,
    ``spec.capacity_factor`` padding); ``spec.shared_experts`` adds
    DeepSeek-style always-on dense experts.  Decode-phase specs want
    ``batch * top_k >= experts`` so every expert is active and the emitted
    kernel graph is as wide as the expert count.
    """
    shape, kv_seq = _decoder_shape(spec)
    graph = LayerGraph(f"moe-{spec.phase}", shape)
    previous = ""
    for index in range(spec.blocks):
        previous = _transformer_block(
            graph,
            spec,
            index,
            previous,
            phase=spec.phase,
            causal=True,  # decode included -- see gpt_decoder
            kv_seq=kv_seq,
            moe=True,
        )
    graph.add(NormLayer(name="final_ln", deps=(previous,), phase=spec.phase))
    return graph


def bert_encoder(spec: ModelSpec) -> LayerGraph:
    """BERT-style bidirectional encoder: full-sequence attention, no mask."""
    shape = TensorShape(batch=spec.batch, seq=spec.seq_len, features=spec.hidden)
    graph = LayerGraph("bert-encoder", shape)
    previous = ""
    for index in range(spec.blocks):
        previous = _transformer_block(
            graph, spec, index, previous, phase="encode", causal=False, kv_seq=0
        )
    graph.add(NormLayer(name="final_ln", deps=(previous,), phase="encode"))
    return graph


def gemm_chain(spec: ModelSpec) -> LayerGraph:
    """MLP / im2col-CNN-style chain: alternating projections and activations.

    Widths alternate hidden <-> ffn_hidden so both fat and skinny GEMMs
    appear, which is what distinguishes the designs' scheduling behaviour.
    """
    shape = TensorShape(batch=spec.batch, seq=spec.seq_len, features=spec.hidden)
    graph = LayerGraph("gemm-chain", shape)
    previous = ""
    width = spec.hidden
    for index in range(spec.blocks):
        next_width = spec.ffn_hidden if index % 2 == 0 else spec.hidden
        deps = (previous,) if previous else ()
        graph.add(
            LinearLayer(
                name=f"fc{index}",
                deps=deps,
                phase="forward",
                in_features=width,
                out_features=next_width,
            )
        )
        graph.add(
            ElementwiseLayer(
                name=f"relu{index}",
                deps=(f"fc{index}",),
                phase="forward",
                flops_per_element=1.0,
                operator="relu",
            )
        )
        previous = f"relu{index}"
        width = next_width
    return graph


#: Zoo entries: name -> (spec, builder).  Sizes are kept modest so a full
#: model run completes in seconds while still spanning dozens of kernels.
_BUILDERS: Dict[str, Callable[[ModelSpec], LayerGraph]] = {
    "gpt": gpt_decoder,
    "moe": moe_decoder,
    "bert": bert_encoder,
    "mlp": gemm_chain,
}

MODEL_ZOO: Dict[str, ModelSpec] = {
    "gpt-prefill": ModelSpec(family="gpt", phase="prefill", seq_len=256, hidden=512,
                             blocks=2, heads=8),
    "gpt-decode": ModelSpec(family="gpt", phase="decode", seq_len=256, hidden=512,
                            blocks=2, heads=8, context_len=1024),
    "gpt-gqa-prefill": ModelSpec(family="gpt", phase="prefill", seq_len=256, hidden=512,
                                 blocks=2, heads=8, kv_heads=2),
    # Masked-attention variants (exact per-tile accounting, no 0.5 scaling):
    # chunked prefill over prior KV context, sliding-window attention, and a
    # ragged batch packed varlen (no bucket padding waste).
    "gpt-prefill-history": ModelSpec(family="gpt", phase="prefill", seq_len=128,
                                     hidden=512, blocks=2, heads=8, context_len=384),
    "gpt-prefill-sw": ModelSpec(family="gpt", phase="prefill", seq_len=256, hidden=512,
                                blocks=2, heads=8, window=64),
    "gpt-prefill-varlen": ModelSpec(family="gpt", phase="prefill", seq_len=320,
                                    hidden=512, blocks=2, heads=8,
                                    seq_lens=(96, 160, 64)),
    "bert-base-ish": ModelSpec(family="bert", phase="encode", seq_len=128, hidden=768,
                               blocks=2, heads=12),
    "mlp-chain": ModelSpec(family="mlp", phase="forward", seq_len=64, hidden=1024,
                           blocks=4, heads=8),
    # Mixtral-style expert-parallel variants.  Decode batches are sized so
    # batch * top_k >= experts: every expert is active and the lowered graph
    # is as wide as the expert count (the dual-unit overlap showcase).
    "moe-prefill": ModelSpec(family="moe", phase="prefill", seq_len=256, hidden=512,
                             blocks=2, heads=8, experts=8, top_k=2),
    "moe-decode": ModelSpec(family="moe", phase="decode", batch=4, seq_len=256,
                            hidden=512, blocks=2, heads=8, context_len=1024,
                            experts=8, top_k=2),
    "moe-decode-16x2": ModelSpec(family="moe", phase="decode", batch=8, seq_len=256,
                                 hidden=512, blocks=2, heads=8, context_len=1024,
                                 experts=16, top_k=2),
    "moe-decode-top1": ModelSpec(family="moe", phase="decode", batch=8, seq_len=256,
                                 hidden=512, blocks=2, heads=8, context_len=1024,
                                 experts=8, top_k=1),
    "moe-prefill-cap15": ModelSpec(family="moe", phase="prefill", seq_len=256,
                                   hidden=512, blocks=2, heads=8, experts=8,
                                   top_k=2, capacity_factor=1.5),
    "moe-shared-decode": ModelSpec(family="moe", phase="decode", batch=4, seq_len=256,
                                   hidden=512, blocks=2, heads=8, context_len=1024,
                                   experts=8, top_k=2, shared_experts=1),
}


def model_names() -> List[str]:
    return sorted(MODEL_ZOO)


def resolve_spec(name: str) -> ModelSpec:
    """Look up a zoo entry, raising with the valid names on a miss."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        valid = ", ".join(model_names())
        raise KeyError(f"unknown model {name!r}; choose one of: {valid}") from None


def build_model(spec_or_name) -> LayerGraph:
    """Build the layer graph for a zoo name or an explicit :class:`ModelSpec`."""
    spec = resolve_spec(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    try:
        builder = _BUILDERS[spec.family]
    except KeyError:
        valid = ", ".join(sorted(_BUILDERS))
        raise ValueError(f"unknown model family {spec.family!r}; one of: {valid}") from None
    return builder(spec)


def scaled_spec(base: ModelSpec, **overrides) -> ModelSpec:
    """A copy of ``base`` with hyperparameters overridden (sweep helper)."""
    return replace(base, **overrides)


# --------------------------------------------------------------------------- #
# Serving-trace zoo: request streams for the continuous-batching scheduler
# --------------------------------------------------------------------------- #

#: Per-request network presets.  Requests are single sequences (batch 1) and
#: deliberately small -- a serving run executes one merged schedule per decode
#: iteration, so the interesting structure is the request mix, not the size.
REQUEST_MODELS: Dict[str, ModelSpec] = {
    "gpt-request": ModelSpec(family="gpt", phase="decode", batch=1, seq_len=64,
                             hidden=256, blocks=1, heads=4),
    "gqa-request": ModelSpec(family="gpt", phase="decode", batch=1, seq_len=64,
                             hidden=256, blocks=1, heads=4, kv_heads=1),
    "moe-request": ModelSpec(family="moe", phase="decode", batch=1, seq_len=64,
                             hidden=256, blocks=1, heads=4, experts=4, top_k=2),
}


def _cycle(values: Sequence, index: int):
    return values[index % len(values)]


def poisson_trace(
    name: str,
    models: Sequence[ModelSpec],
    requests: int = 8,
    mean_interarrival: float = 20_000.0,
    prompt_lens: Sequence[int] = (64, 128, 256),
    decode_steps: Sequence[int] = (3, 5, 8),
    seed: int = 20250730,
    context_bucket: int = 64,
) -> ServingTrace:
    """Poisson arrivals: exponential interarrival gaps from a seeded RNG.

    Prompt lengths and decode budgets rotate deterministically through the
    given menus so the trace content is a pure function of its arguments --
    the batch runner content-hashes traces, so builders must be reproducible.
    """
    rng = random.Random(seed)
    arrival = 0
    specs = []
    for index in range(requests):
        arrival += int(rng.expovariate(1.0 / mean_interarrival))
        specs.append(
            RequestSpec(
                request_id=f"r{index}",
                model=_cycle(models, index),
                arrival_cycle=arrival,
                prompt_len=_cycle(prompt_lens, index),
                decode_steps=_cycle(decode_steps, index),
            )
        )
    return ServingTrace(name=name, requests=tuple(specs), context_bucket=context_bucket)


def bursty_trace(
    name: str,
    models: Sequence[ModelSpec],
    bursts: int = 3,
    burst_size: int = 3,
    burst_gap: int = 120_000,
    prompt_lens: Sequence[int] = (64, 192),
    decode_steps: Sequence[int] = (4, 6),
    context_bucket: int = 64,
) -> ServingTrace:
    """Bursty arrivals: ``bursts`` groups of simultaneous requests, far apart.

    Each burst lands at once (the co-residency stress case), then the system
    drains before the next burst -- the trace family that exposes both the
    deep-batch and the near-empty regimes in one run.
    """
    specs = []
    for burst in range(bursts):
        for slot in range(burst_size):
            index = burst * burst_size + slot
            specs.append(
                RequestSpec(
                    request_id=f"b{burst}.{slot}",
                    model=_cycle(models, index),
                    arrival_cycle=burst * burst_gap,
                    prompt_len=_cycle(prompt_lens, index),
                    decode_steps=_cycle(decode_steps, index),
                )
            )
    return ServingTrace(name=name, requests=tuple(specs), context_bucket=context_bucket)


def uniform_trace(
    name: str,
    models: Sequence[ModelSpec],
    requests: int = 6,
    interarrival: int = 15_000,
    prompt_len: int = 128,
    decode_steps: int = 4,
    context_bucket: int = 64,
) -> ServingTrace:
    """Uniform arrivals: a fixed gap between requests (closed-loop clients)."""
    specs = tuple(
        RequestSpec(
            request_id=f"u{index}",
            model=_cycle(models, index),
            arrival_cycle=index * interarrival,
            prompt_len=prompt_len,
            decode_steps=decode_steps,
        )
        for index in range(requests)
    )
    return ServingTrace(name=name, requests=specs, context_bucket=context_bucket)


def poisson_stream_trace(
    name: str,
    requests: int = 1_000_000,
    mean_interarrival: float = 60_000_000.0,
    model: Optional[ModelSpec] = None,
    prompt_len: int = 105,
    decode_steps: int = 24,
    seed: int = 20250807,
    context_bucket: int = 64,
) -> ServingTrace:
    """A million-request-scale poisson trace, built in bulk.

    The epoch-compression stress shape: uniform request specs under a
    stationary poisson arrival process, constructed through the bulk
    builders (:func:`~repro.workloads.graph.build_request_stream`) so trace
    construction itself stays O(seconds) at a million requests.  The
    default prompt/decode pair (105 + 24 steps under a 64-wide bucket)
    keeps every decode step of a request inside one KV bucket, so a solo
    request's whole service is a single invariant composition -- the shape
    the episode templates compress best.  Content is a pure function of the
    arguments (seeded numpy RNG), matching the batch runner's
    content-hashing requirement.
    """
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, requests).astype(np.int64)
    gaps[0] = 0
    arrivals = np.cumsum(gaps)
    stream = build_request_stream(
        model if model is not None else REQUEST_MODELS["gpt-request"],
        arrivals,
        prompt_len=prompt_len,
        decode_steps=decode_steps,
        id_prefix="p",
    )
    trace = build_stream_trace(name, stream, context_bucket=context_bucket)
    # Pre-stash the episode-walk arrays (arrivals, inter-arrival gaps,
    # shape ids -- uniform stream, so all zero): the scheduler would
    # otherwise re-derive them with an O(n) python pass per run.
    trace.__dict__["_stream_arrays"] = (
        arrivals,
        gaps[1:],
        np.zeros(requests, dtype=np.int64),
    )
    return trace


def slo_trace(
    name: str,
    base: Union[str, ServingTrace],
    classes: Sequence = ("interactive", "standard", "batch"),
) -> ServingTrace:
    """A copy of ``base`` (zoo name or explicit) with SLO classes round-robin.

    ``classes`` accepts :class:`~repro.workloads.control.SloClass` instances
    or built-in class names (:data:`~repro.workloads.control.SLO_CLASSES`).
    Round-robin over the request tuple keeps the assignment a pure function
    of the trace content, so the batch runner's content hashing still holds.
    """
    if isinstance(base, str):
        base = resolve_trace(base)
    resolved: List[SloClass] = [resolve_slo(entry) for entry in classes]
    specs = tuple(
        replace(request, slo=_cycle(resolved, index))
        for index, request in enumerate(base.requests)
    )
    return replace(base, name=name, requests=specs)


def _mixed_models() -> Tuple[ModelSpec, ...]:
    return (
        REQUEST_MODELS["gpt-request"],
        REQUEST_MODELS["moe-request"],
        REQUEST_MODELS["gqa-request"],
    )


TRACE_ZOO: Dict[str, ServingTrace] = {
    # Poisson arrivals over a GPT/GQA/MoE decode mix: the headline scenario.
    "poisson-mixed": poisson_trace("poisson-mixed", _mixed_models()),
    # All requests at cycle 0: the offline / maximum-co-residency case the
    # serving benchmark uses to measure merged-vs-isolated makespan.  Ten
    # co-resident requests give the heterogeneous unit assignment enough
    # granularity to fill the small unit's work budget.
    "offline-mixed": bursty_trace(
        "offline-mixed", _mixed_models(), bursts=1, burst_size=10
    ),
    "bursty-gpt": bursty_trace(
        "bursty-gpt", (REQUEST_MODELS["gpt-request"], REQUEST_MODELS["gqa-request"])
    ),
    "uniform-moe": uniform_trace("uniform-moe", (REQUEST_MODELS["moe-request"],)),
}

# SLO-classed variants: the same arrival streams with interactive / standard /
# batch classes attached round-robin, for exercising the admission policies
# and the goodput metric.  Defined after the base entries so they reuse them.
TRACE_ZOO["bursty-slo"] = slo_trace("bursty-slo", TRACE_ZOO["bursty-gpt"])
TRACE_ZOO["poisson-slo"] = slo_trace("poisson-slo", TRACE_ZOO["poisson-mixed"])


def varlen_trace(name: str, base: Union[str, ServingTrace]) -> ServingTrace:
    """A copy of ``base`` served at exact per-request KV lengths.

    ``context_bucket=1`` disables KV bucket padding: every decode step
    attends over the request's true context length instead of the next
    64-wide bucket boundary -- the ragged-batch serving counterpart of the
    varlen prefill packing, now that masked attention work is counted
    exactly per length.
    """
    if isinstance(base, str):
        base = resolve_trace(base)
    return replace(base, name=name, context_bucket=1)


# Varlen variants: the same arrival streams without bucket padding, so the
# latency percentiles reflect exact ragged context lengths.
TRACE_ZOO["poisson-varlen"] = varlen_trace("poisson-varlen", TRACE_ZOO["poisson-mixed"])
TRACE_ZOO["bursty-varlen"] = varlen_trace("bursty-varlen", TRACE_ZOO["bursty-gpt"])


def trace_names() -> List[str]:
    return sorted(TRACE_ZOO)


def resolve_trace(name: str) -> ServingTrace:
    """Look up a trace-zoo entry, raising with the valid names on a miss."""
    try:
        return TRACE_ZOO[name]
    except KeyError:
        valid = ", ".join(trace_names())
        raise KeyError(f"unknown trace {name!r}; choose one of: {valid}") from None


#: Named fleet compositions for the replica router: each entry is the tuple
#: of design preset names the fleet's replicas run, in replica-index order.
#: Homogeneous fleets pin routing behavior; the mixed entries make
#: heterogeneity a design-space axis (a volta replica is slower, so
#: load-aware policies should visibly shift traffic off it).
FLEET_ZOO: Dict[str, Tuple[str, ...]] = {
    "duo-virgo": ("virgo", "virgo"),
    "trio-virgo": ("virgo", "virgo", "virgo"),
    "quad-virgo": ("virgo",) * 4,
    "mixed-pair": ("virgo", "volta"),
    "mixed-quad": ("virgo", "virgo", "hopper", "volta"),
}


def fleet_names() -> List[str]:
    return sorted(FLEET_ZOO)


def resolve_fleet(name: str) -> Tuple[str, ...]:
    """Look up a fleet-zoo entry, raising with the valid names on a miss."""
    try:
        return FLEET_ZOO[name]
    except KeyError:
        valid = ", ".join(fleet_names())
        raise KeyError(f"unknown fleet {name!r}; choose one of: {valid}") from None
