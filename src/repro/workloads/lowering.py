"""Lowering: map a layer graph onto kernel invocations and execute them.

``lower_graph`` walks a :class:`~repro.workloads.graph.LayerGraph` in
topological order and emits a :class:`KernelSchedule` -- a dependency-ordered
list of kernel invocations, each bound to one of the existing timing models:

* linear layers become :class:`GemmWorkload` runs on the design's matrix
  unit path (``run_gemm``);
* attention layers become :class:`FlashAttentionWorkload` runs on designs
  with a fused mapping (Virgo, Ampere-style), and decompose into the two
  score GEMMs plus a SIMT online-softmax kernel elsewhere -- and always in
  decode phase, where the single-query shape defeats the fused kernel's
  tiling;
* elementwise and norm layers become SIMT kernels costed with the same
  lane/issue model the softmax cost model uses;
* MoE FFN nodes (:class:`~repro.workloads.graph.MoeFfnLayer`) fan out into a
  SIMT router/dispatch prologue, one independent up/activation/down chain per
  active expert and a SIMT combine epilogue -- the wide-graph case where the
  matrix and SIMT units genuinely co-run instead of ping-ponging.

On the disaggregated design the ``heterogeneous`` flag routes small GEMMs
(decode-phase projections, in practice) onto a half-size secondary matrix
unit, reproducing the Section 6.3 dual-unit configuration at model scale:
small kernels overlap with large ones instead of queueing behind them.
Independent MoE expert GEMMs are instead *spread* across the two units in
proportion to their throughput (see :func:`_moe_expert_resource`), so both
matrix units draw down the expert pool concurrently.

``execute_schedule`` then runs every invocation through :mod:`repro.runner`
(every per-kernel simulation is memoized in the process-wide timing cache,
see :mod:`repro.perf`; the hit/miss counts attributable to the run land in
``ModelRunResult.timing_cache``), places the resulting durations on an
:class:`repro.sim.taskgraph.OperationGraph` (so independent kernels overlap
exactly where the resource model allows) and aggregates cycles, MAC
utilization and energy per layer, per phase and for the whole model into a
:class:`ModelRunResult`.

Causal masks are modelled *exactly*: fused flash kernels carry the mask
fields (``causal``/``kv_len``/``window``/``seq_lens``) into
:class:`FlashAttentionWorkload`, whose tile loop visits only the KV tiles
the mask leaves non-empty, and the decomposed path sizes its SIMT softmax
by the integer mask-element count and reports the exact surviving MACs
(``reported_macs``) for utilization accounting.  No ``work_scale`` discount
exists anywhere in the attention path -- ``tools/check_attention_lint.py``
enforces that it stays gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config.presets import DesignKind, make_design
from repro.config.soc import DataType, DesignConfig, IntegrationStyle
from repro.energy.model import EnergyTable
from repro.energy.power import PowerReport, make_power_report
from repro.kernels.flash_attention import (
    SOFTMAX_FLOPS_PER_ELEMENT,
    FlashAttentionWorkload,
)
from repro.kernels.gemm import GemmWorkload
from repro.kernels.heterogeneous import design_with_unit, small_unit_config
from repro.obs import MetricsRegistry, occupancy_percent, phase, trace_recorder
from repro.perf import timing_cache
from repro.runner import run_flash_attention, run_gemm
from repro.sim.resources import Resource
from repro.sim.stats import Counters
from repro.sim.taskgraph import OperationGraph
from repro.workloads.graph import (
    AttentionLayer,
    ElementwiseLayer,
    Layer,
    LayerGraph,
    LayerKind,
    LinearLayer,
    MoeBlock,
    MoeFfnLayer,
    NormLayer,
)
from repro.workloads.models import ModelSpec, build_model

#: Resource names kernels contend for during schedule execution.
MATRIX_RESOURCE = "matrix"
SMALL_MATRIX_RESOURCE = "matrix.small"
SIMT_RESOURCE = "simt"

#: GEMMs below this MAC count ride the half-size unit in heterogeneous mode.
HETERO_SMALL_GEMM_MACS = 1 << 24

#: Non-FPU instruction overhead of SIMT elementwise loops (loads, stores,
#: addressing, loop control) relative to FPU work, matching the softmax model.
SIMT_OVERHEAD_RATIO = 1.0


@dataclass(frozen=True)
class KernelInvocation:
    """One schedulable kernel produced by lowering a layer.

    ``workload`` is a :class:`GemmWorkload`, :class:`FlashAttentionWorkload`
    or ``None`` for SIMT kernels (which carry ``elements``/``flops_per_element``
    instead).  ``reported_macs`` overrides the workload's own MAC count for
    utilization/throughput reporting -- the decomposed attention path runs
    full-rectangle score GEMMs (a generic GEMM cannot skip masked tiles)
    but reports only the surviving mask elements as useful work.
    """

    name: str
    layer: str
    phase: str
    kind: str  # "gemm" | "flash" | "simt"
    resource: str
    deps: Tuple[str, ...] = ()
    workload: Union[GemmWorkload, FlashAttentionWorkload, None] = None
    elements: int = 0
    flops_per_element: float = 0.0
    reported_macs: Optional[int] = None


@dataclass
class KernelSchedule:
    """A dependency-ordered kernel program for one (model, design) pair."""

    model: str
    design: DesignConfig
    invocations: List[KernelInvocation]
    heterogeneous: bool = False
    small_design: Optional[DesignConfig] = None
    ideal_mac_cycles: float = 0.0

    def __len__(self) -> int:
        return len(self.invocations)

    def kernels_of(self, layer: str) -> List[KernelInvocation]:
        return [inv for inv in self.invocations if inv.layer == layer]


def _supports_fused_attention(design: DesignConfig) -> bool:
    return design.style in (
        IntegrationStyle.DISAGGREGATED,
        IntegrationStyle.TIGHTLY_COUPLED_DMA,
    )


def _simt_cost(
    design: DesignConfig, elements: int, flops_per_element: float
) -> Tuple[int, Counters]:
    """Cycles and activity for the SIMT cores to sweep ``elements`` once.

    Memoized in the process-wide timing cache (:mod:`repro.perf`); the
    returned counters are shared and must not be mutated in place.
    """
    cache = timing_cache()
    key = cache.key(
        "simt", design, {"elements": elements, "flops_per_element": flops_per_element}
    )
    return cache.get_or_compute(
        key, lambda: _simt_cost_uncached(design, elements, flops_per_element)
    )


def _simt_cost_uncached(
    design: DesignConfig, elements: int, flops_per_element: float
) -> Tuple[int, Counters]:
    cluster = design.cluster
    lanes = cluster.cores * cluster.core.lanes
    flops = elements * flops_per_element
    fpu_cycles = flops / lanes
    issue_cycles = fpu_cycles * (1.0 + SIMT_OVERHEAD_RATIO)
    cycles = max(1, int(max(fpu_cycles, issue_cycles / cluster.core.issue_width)))

    counters = Counters()
    per_lane = flops / max(1, cluster.core.lanes)
    overhead = per_lane * SIMT_OVERHEAD_RATIO
    counters.add("core.fpu.ops", flops)
    counters.add("core.issue.instructions", per_lane + overhead)
    counters.add("core.alu.ops", overhead * cluster.core.lanes / 2)
    counters.add("core.lsu.requests", overhead / 2)
    counters.add("core.issue.rf_read_words", 2 * (flops + overhead * cluster.core.lanes))
    counters.add("core.writeback.rf_write_words", flops)
    counters.add("smem.core.read_words", elements)
    counters.add("smem.core.write_words", elements)
    return cycles, counters


def _lower_attention(
    layer: AttentionLayer,
    graph: LayerGraph,
    design: DesignConfig,
    deps: Tuple[str, ...],
    dtype: DataType,
) -> List[KernelInvocation]:
    shape = graph.input_shape_of(layer)
    kv_len = layer.kv_length(shape)
    masked_elements = layer.masked_score_elements(shape)
    base = dict(layer=layer.name, phase=layer.phase or "default")

    # The fused kernel tiles any multi-query shape whose context is at least
    # as long as the chunk -- including causal prefill over prior KV context
    # (chunked prefill) and packed varlen batches.
    fused_shape = shape.seq > 1 and kv_len >= shape.seq
    if fused_shape and _supports_fused_attention(design):
        workload = FlashAttentionWorkload(
            seq_len=shape.seq,
            head_dim=layer.head_dim,
            heads=shape.batch * layer.heads,
            causal=layer.causal,
            kv_len=0 if kv_len == shape.seq else kv_len,
            window=layer.window,
            seq_lens=layer.seq_lens,
        )
        return [
            KernelInvocation(
                name=f"{layer.name}.flash",
                kind="flash",
                resource=MATRIX_RESOURCE,
                deps=deps,
                workload=workload,
                **base,
            )
        ]

    # Decomposed path: QK^T scores, SIMT softmax, PV output -- batched over
    # (batch x query heads) by folding them into the GEMM M dimension.  The
    # GEMMs run the full rectangle (a generic GEMM cannot skip masked
    # tiles) except that a sliding window shrinks the decode context to the
    # ``window`` live keys; the exact surviving MACs are attached as
    # ``reported_macs`` so utilization reflects the mask, and the softmax
    # sweeps only the surviving mask elements.
    kv_cols = min(kv_len, layer.window) if (shape.seq == 1 and layer.window) else kv_len
    rows = shape.batch * layer.heads * shape.seq
    scores = KernelInvocation(
        name=f"{layer.name}.scores",
        kind="gemm",
        resource=MATRIX_RESOURCE,
        deps=deps,
        workload=GemmWorkload(m=rows, n=kv_cols, k=layer.head_dim, dtype=dtype),
        reported_macs=masked_elements * layer.head_dim,
        **base,
    )
    softmax = KernelInvocation(
        name=f"{layer.name}.softmax",
        kind="simt",
        resource=SIMT_RESOURCE,
        deps=(scores.name,),
        elements=masked_elements,
        flops_per_element=SOFTMAX_FLOPS_PER_ELEMENT,
        **base,
    )
    output = KernelInvocation(
        name=f"{layer.name}.context",
        kind="gemm",
        resource=MATRIX_RESOURCE,
        deps=(softmax.name,),
        workload=GemmWorkload(m=rows, n=layer.head_dim, k=kv_cols, dtype=dtype),
        reported_macs=masked_elements * layer.head_dim,
        **base,
    )
    return [scores, softmax, output]


def _moe_expert_resource(
    index: int,
    workload: GemmWorkload,
    design: DesignConfig,
    small_design: Optional[DesignConfig],
) -> str:
    """Matrix unit for expert ``index``'s GEMM pair in heterogeneous mode.

    Expert GEMMs are small and mutually independent, so instead of funnelling
    every small GEMM onto the half-size unit (the right call for a sequential
    chain, where it frees the big unit for the *next* large kernel), experts
    are spread across both units in proportion to their throughput: with the
    default 4x capacity ratio every fifth expert rides the small unit, so
    both units finish their share at roughly the same time.
    """
    if small_design is None or workload.macs >= HETERO_SMALL_GEMM_MACS:
        return MATRIX_RESOURCE
    large_mpc = design.matrix_unit.macs_per_cycle
    small_mpc = max(1, small_design.matrix_unit.macs_per_cycle)
    stride = max(2, round(large_mpc / small_mpc) + 1)
    return SMALL_MATRIX_RESOURCE if index % stride == stride - 1 else MATRIX_RESOURCE


def _lower_moe(
    layer: MoeFfnLayer,
    graph: LayerGraph,
    design: DesignConfig,
    small_design: Optional[DesignConfig],
    deps: Tuple[str, ...],
    dtype: DataType,
) -> List[KernelInvocation]:
    """Expand one MoE FFN node into its expert-parallel kernel fan-out.

    Emitted structure (edges only within each chain -- experts never depend
    on each other, which is what lets the scheduler co-run the units)::

        router (SIMT) -> dispatch (SIMT) -> e0.up -> e0.act -> e0.down \\
                                            e1.up -> e1.act -> e1.down  -> combine (SIMT)
                                            ...                        /
        s0.up -> s0.act -> s0.down  (shared experts skip the router)  /
    """
    shape = graph.input_shape_of(layer)
    base = dict(layer=layer.name, phase=layer.phase or "default")
    tokens = shape.tokens

    router = KernelInvocation(
        name=f"{layer.name}.router",
        kind="simt",
        resource=SIMT_RESOURCE,
        deps=deps,
        elements=tokens,
        flops_per_element=layer.router_flops_per_token,
        **base,
    )
    active = layer.active_experts(shape)
    capacity = layer.expert_capacity(shape)
    dispatch = KernelInvocation(
        name=f"{layer.name}.dispatch",
        kind="simt",
        resource=SIMT_RESOURCE,
        deps=(router.name,),
        elements=active * capacity * layer.in_features,
        flops_per_element=1.0,
        **base,
    )
    # One (up, act, down) chain per expert; chains share no edges.  The
    # invocations are emitted stage-interleaved (all ups, all activations,
    # all downs) because the list scheduler reserves resources in insertion
    # order: interleaving lets expert j's SIMT activation run under expert
    # j+1's matrix-unit GEMM instead of leaving the matrix unit idle.
    ups: List[KernelInvocation] = []
    acts: List[KernelInvocation] = []
    downs: List[KernelInvocation] = []

    def expert_chain(tag: str, index: int, dims, chain_deps: Tuple[str, ...]) -> str:
        """Queue one up -> activation -> down chain; returns the down kernel."""
        (up_m, up_n, up_k), (down_m, down_n, down_k) = dims
        up_workload = GemmWorkload(m=up_m, n=up_n, k=up_k, dtype=dtype)
        down_workload = GemmWorkload(m=down_m, n=down_n, k=down_k, dtype=dtype)
        resource = _moe_expert_resource(index, up_workload, design, small_design)
        up = KernelInvocation(
            name=f"{layer.name}.{tag}.up",
            kind="gemm",
            resource=resource,
            deps=chain_deps,
            workload=up_workload,
            **base,
        )
        act = KernelInvocation(
            name=f"{layer.name}.{tag}.act",
            kind="simt",
            resource=SIMT_RESOURCE,
            deps=(up.name,),
            elements=up_m * up_n,
            flops_per_element=layer.activation_flops,
            **base,
        )
        down = KernelInvocation(
            name=f"{layer.name}.{tag}.down",
            kind="gemm",
            resource=resource,
            deps=(act.name,),
            workload=down_workload,
            **base,
        )
        ups.append(up)
        acts.append(act)
        downs.append(down)
        return down.name

    combine_deps: List[str] = []
    # Shared experts first: their chains depend only on the block input, so
    # the matrix unit starts on them while the router is still deciding.
    if isinstance(layer, MoeBlock) and layer.shared_experts:
        shared_dims = layer.shared_gemm_dims(shape)
        combine_deps.extend(
            expert_chain(f"s{index}", active + index, shared_dims, deps)
            for index in range(layer.shared_experts)
        )
    expert_dims = layer.expert_gemm_dims(shape)
    combine_deps.extend(
        expert_chain(f"e{index}", index, expert_dims, (dispatch.name,))
        for index in range(active)
    )

    invocations = [router, dispatch, *ups, *acts, *downs]
    invocations.append(
        KernelInvocation(
            name=f"{layer.name}.combine",
            kind="simt",
            resource=SIMT_RESOURCE,
            deps=tuple(combine_deps),
            elements=shape.elements,
            flops_per_element=2.0 * layer.top_k,
            **base,
        )
    )
    return invocations


def lower_graph(
    graph: LayerGraph,
    design: Union[DesignKind, DesignConfig],
    heterogeneous: bool = False,
    dtype: DataType = DataType.FP16,
) -> KernelSchedule:
    """Lower every layer of ``graph`` to kernels on ``design``.

    Returns a dependency-ordered :class:`KernelSchedule`; layer dependencies
    become kernel dependencies between each layer's last kernel and its
    consumers' first kernels.
    """
    config = make_design(design, dtype) if isinstance(design, DesignKind) else design
    small_design: Optional[DesignConfig] = None
    if heterogeneous:
        if config.style is not IntegrationStyle.DISAGGREGATED:
            raise ValueError("heterogeneous lowering requires the disaggregated design")
        small_design = design_with_unit(config, small_unit_config(config.matrix_unit))

    invocations: List[KernelInvocation] = []
    last_kernel: Dict[str, str] = {}  # layer name -> its final kernel name

    for layer in graph.layers():
        deps = tuple(last_kernel[dep] for dep in layer.deps)
        shape = graph.input_shape_of(layer)
        phase = layer.phase or "default"

        if isinstance(layer, LinearLayer):
            m, n, k = layer.gemm_dims(shape)
            workload = GemmWorkload(m=m, n=n, k=k, dtype=dtype)
            resource = MATRIX_RESOURCE
            if small_design is not None and workload.macs < HETERO_SMALL_GEMM_MACS:
                resource = SMALL_MATRIX_RESOURCE
            lowered = [
                KernelInvocation(
                    name=f"{layer.name}.gemm",
                    layer=layer.name,
                    phase=phase,
                    kind="gemm",
                    resource=resource,
                    deps=deps,
                    workload=workload,
                )
            ]
        elif isinstance(layer, AttentionLayer):
            lowered = _lower_attention(layer, graph, config, deps, dtype)
        elif isinstance(layer, MoeFfnLayer):
            lowered = _lower_moe(layer, graph, config, small_design, deps, dtype)
        elif isinstance(layer, (ElementwiseLayer, NormLayer)):
            if layer.flops_per_element <= 0:
                # Zero-cost bookkeeping nodes (views/slices) lower to nothing;
                # dependents inherit their dependencies.
                last_kernel[layer.name] = deps[0] if deps else ""
                continue
            lowered = [
                KernelInvocation(
                    name=f"{layer.name}.simt",
                    layer=layer.name,
                    phase=phase,
                    kind="simt",
                    resource=SIMT_RESOURCE,
                    deps=deps,
                    elements=graph.output_shape(layer.name).elements,
                    flops_per_element=layer.flops_per_element,
                )
            ]
        else:
            raise ValueError(f"no lowering rule for layer kind {layer.kind!r}")

        invocations.extend(lowered)
        last_kernel[layer.name] = lowered[-1].name

    ideal = graph.total_macs() / float(config.soc.total_macs_per_cycle)
    return KernelSchedule(
        model=graph.name,
        design=config,
        invocations=invocations,
        heterogeneous=heterogeneous,
        small_design=small_design,
        ideal_mac_cycles=ideal,
    )


def _prefixed_invocation(inv: KernelInvocation, prefix: str) -> KernelInvocation:
    """``inv`` renamed into ``prefix``'s namespace (name, layer and deps)."""
    return replace(
        inv,
        name=prefix + inv.name,
        layer=prefix + inv.layer,
        deps=tuple(prefix + dep for dep in inv.deps if dep),
    )


def merge_schedules(
    entries: Sequence[Tuple[str, KernelSchedule]],
    model: str,
) -> KernelSchedule:
    """Merge independent per-request schedules into one iteration schedule.

    ``entries`` pairs a namespace prefix (e.g. ``"r3/"``) with each request's
    kernel schedule; prefixes must be distinct and every schedule must target
    the same design configuration and unit layout.  No cross-request edges
    are added -- the requests stay mutually independent, which is exactly
    what lets the list scheduler co-run them on the matrix / small-matrix /
    SIMT resources.

    Invocations are interleaved round-robin by position rather than
    concatenated: the list scheduler reserves resources in insertion order,
    so position-aligned interleaving lets request j's SIMT kernels run under
    request j+1's matrix-unit GEMMs instead of queueing whole requests back
    to back (the same trick the MoE lowering plays with expert chains).
    """
    if not entries:
        raise ValueError("merge_schedules needs at least one schedule")
    prefixes = [prefix for prefix, _ in entries]
    if len(set(prefixes)) != len(prefixes):
        raise ValueError(f"merge prefixes must be distinct, got {prefixes}")
    first = entries[0][1]
    for _, schedule in entries[1:]:
        if schedule.design != first.design:
            raise ValueError("merged schedules must share one design configuration")
        if (
            schedule.heterogeneous != first.heterogeneous
            or schedule.small_design != first.small_design
        ):
            raise ValueError("merged schedules must share the unit layout")

    invocations: List[KernelInvocation] = []
    depth = max(len(schedule.invocations) for _, schedule in entries)
    for position in range(depth):
        for prefix, schedule in entries:
            if position < len(schedule.invocations):
                invocations.append(
                    _prefixed_invocation(schedule.invocations[position], prefix)
                )
    return KernelSchedule(
        model=model,
        design=first.design,
        invocations=invocations,
        heterogeneous=first.heterogeneous,
        small_design=first.small_design,
        ideal_mac_cycles=sum(schedule.ideal_mac_cycles for _, schedule in entries),
    )


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #


@dataclass
class LayerRunResult:
    """Aggregated metrics of all kernels lowered from one layer."""

    layer: str
    phase: str
    kinds: Tuple[str, ...]
    kernels: Tuple[str, ...]
    cycles: int
    start: int
    end: int
    energy_uj: float
    mac_utilization_percent: float
    macs: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer,
            "phase": self.phase,
            "kinds": list(self.kinds),
            "kernels": list(self.kernels),
            "cycles": self.cycles,
            "start": self.start,
            "end": self.end,
            "energy_uj": self.energy_uj,
            "mac_utilization_percent": self.mac_utilization_percent,
            "macs": self.macs,
        }


@dataclass
class ModelRunResult:
    """End-to-end outcome of one model on one design.

    ``total_cycles`` is the makespan of the resource-constrained kernel
    schedule (independent kernels overlap); per-layer cycles are each
    layer's own busy time and therefore sum to more than the makespan
    whenever overlap happens.
    """

    model: str
    design: DesignConfig
    total_cycles: int
    layers: List[LayerRunResult]
    power: PowerReport
    counters: Counters
    ideal_mac_cycles: float
    heterogeneous: bool = False
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    phase_energy_uj: Dict[str, float] = field(default_factory=dict)
    resource_busy: Dict[str, int] = field(default_factory=dict)
    #: Timing-cache activity attributable to this run ("hits"/"misses");
    #: diagnostic only and deliberately excluded from :meth:`to_dict` so the
    #: canonical encoding stays byte-stable across cache states.
    timing_cache: Dict[str, int] = field(default_factory=dict)
    #: Unified metrics collected during execution (:mod:`repro.obs.metrics`).
    #: ``to_dict`` embeds the non-diagnostic snapshot; cache/memo hit rates
    #: are diagnostic and reported via ``snapshot(include_diagnostic=True)``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry, compare=False)

    @property
    def design_name(self) -> str:
        return self.design.name

    @property
    def mac_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.ideal_mac_cycles / self.total_cycles)

    @property
    def mac_utilization_percent(self) -> float:
        return 100.0 * self.mac_utilization

    @property
    def active_power_mw(self) -> float:
        return self.power.active_power_mw

    @property
    def active_energy_uj(self) -> float:
        return self.power.total_energy_uj

    @property
    def kernel_count(self) -> int:
        return sum(len(layer.kernels) for layer in self.layers)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "model",
            "model": self.model,
            "design": self.design_name,
            "heterogeneous": self.heterogeneous,
            "total_cycles": self.total_cycles,
            "kernel_count": self.kernel_count,
            "mac_utilization_percent": self.mac_utilization_percent,
            "active_power_mw": self.active_power_mw,
            "active_energy_uj": self.active_energy_uj,
            "phase_cycles": dict(self.phase_cycles),
            "phase_energy_uj": dict(self.phase_energy_uj),
            "resource_busy_cycles": dict(self.resource_busy),
            "layers": [layer.to_dict() for layer in self.layers],
            "metrics": self.metrics.snapshot(),
        }


def _scaled_cycles(cycles: int, scale: float) -> int:
    return max(1, int(round(cycles * scale)))


def _trace_span_args(
    schedule: KernelSchedule, kernel_stats: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, object]]:
    """Per-kernel span annotations for the trace recorder.

    Compressed steady-state kernels (flash/GEMM loop compression, see
    :mod:`repro.sim.steady_state`) stay single spans -- the span *is* the
    synthesized epoch covering every executed and extrapolated inner
    operation -- annotated with ``compressed`` and the operation counts so a
    timeline never forces full expansion.
    """
    extra: Dict[str, Dict[str, object]] = {}
    for inv in schedule.invocations:
        args: Dict[str, object] = {"layer": inv.layer, "phase": inv.phase}
        stats = kernel_stats.get(inv.name)
        if stats:
            args["operations"] = stats.get("operation_count", 0)
            args["executed_operations"] = stats.get("executed_operations", 0)
            args["compressed"] = stats.get("extrapolated_operations", 0) > 0
        extra[inv.name] = args
    return extra


def _model_metrics(
    schedule: KernelSchedule,
    placed,
    durations: Dict[str, int],
    cache_stats: Dict[str, int],
) -> MetricsRegistry:
    """The unified metrics registry for one executed kernel schedule."""
    metrics = MetricsRegistry()
    metrics.counter("schedule.kernels").inc(len(schedule.invocations))
    metrics.gauge("schedule.makespan_cycles").set(placed.total_cycles)
    kind_cycles: Dict[str, int] = {}
    for inv in schedule.invocations:
        kind_cycles[inv.kind] = kind_cycles.get(inv.kind, 0) + durations[inv.name]
    for kind, cycles in sorted(kind_cycles.items()):
        metrics.counter(f"schedule.kind_cycles.{kind}").inc(cycles)
    for resource, busy in sorted(placed.resource_busy.items()):
        metrics.counter(f"unit.busy_cycles.{resource}").inc(busy)
    occupancy = occupancy_percent(placed.resource_busy, placed.total_cycles)
    for resource, percent in occupancy.items():
        metrics.gauge(f"unit.occupancy_percent.{resource}").set(percent)
    metrics.counter("timing_cache.hits", diagnostic=True).inc(cache_stats["hits"])
    metrics.counter("timing_cache.misses", diagnostic=True).inc(cache_stats["misses"])
    return metrics


def execute_schedule(schedule: KernelSchedule, duration_scale: float = 1.0) -> ModelRunResult:
    """Run every kernel of ``schedule`` and assemble the model-level result.

    ``duration_scale`` multiplies every kernel's simulated duration (after
    timing-cache retrieval, so cached entries are never poisoned) without
    touching counters or energy -- the fault-injection hook for transient
    latency spikes (:mod:`repro.faults`).
    """
    design = schedule.design
    table = EnergyTable.for_design(design.style)
    recorder = trace_recorder()

    # Phase 1: per-kernel simulation through the existing runner entry
    # points.  The runner memoizes per distinct kernel content, so a model
    # with L layers of ~3 distinct shapes simulates ~3 kernels, not ~3L.
    cache = timing_cache()
    hits_before, misses_before = cache.hits, cache.misses
    durations: Dict[str, int] = {}
    kernel_counters: Dict[str, Counters] = {}
    kernel_util: Dict[str, float] = {}
    kernel_macs: Dict[str, int] = {}
    kernel_stats: Dict[str, Dict[str, int]] = {}
    with phase("kernel_sim", model=schedule.model, kernels=len(schedule.invocations)):
        for inv in schedule.invocations:
            if inv.kind == "gemm":
                target = (
                    schedule.small_design
                    if inv.resource == SMALL_MATRIX_RESOURCE and schedule.small_design
                    else design
                )
                run = run_gemm(target, inv.workload, inv.workload.dtype)
                cycles, counters = run.total_cycles, run.counters
                kernel_util[inv.name] = run.kernel.mac_utilization
                kernel_macs[inv.name] = (
                    inv.reported_macs if inv.reported_macs is not None
                    else inv.workload.macs
                )
                if recorder is not None:
                    kernel_stats[inv.name] = run.kernel.schedule_stats
            elif inv.kind == "flash":
                run = run_flash_attention(design, inv.workload)
                cycles, counters = run.total_cycles, run.kernel.counters
                kernel_util[inv.name] = run.kernel.mac_utilization
                kernel_macs[inv.name] = inv.workload.gemm_macs
                if recorder is not None:
                    kernel_stats[inv.name] = run.kernel.schedule_stats
            else:
                cycles, counters = _simt_cost(design, inv.elements, inv.flops_per_element)
                kernel_util[inv.name] = 0.0
                kernel_macs[inv.name] = 0
            durations[inv.name] = _scaled_cycles(cycles, duration_scale)
            kernel_counters[inv.name] = counters
    cache_stats = {
        "hits": cache.hits - hits_before,
        "misses": cache.misses - misses_before,
    }

    # Phase 2: place the kernels on the cluster's resources; independent
    # kernels (e.g. SIMT elementwise vs the next layer's GEMM, or small-unit
    # vs large-unit GEMMs in heterogeneous mode) overlap.
    with phase("list_schedule", model=schedule.model):
        op_graph = OperationGraph()
        op_graph.add_resource(Resource(MATRIX_RESOURCE))
        op_graph.add_resource(Resource(SIMT_RESOURCE))
        if schedule.heterogeneous:
            op_graph.add_resource(Resource(SMALL_MATRIX_RESOURCE))
        for inv in schedule.invocations:
            op_graph.add_operation(
                inv.name,
                inv.resource,
                durations[inv.name],
                deps=[dep for dep in inv.deps if dep],
                kind=inv.kind,
            )
        placed = op_graph.schedule()
    if recorder is not None:
        recorder.record_schedule(
            placed, extra_args=_trace_span_args(schedule, kernel_stats)
        )

    # Phase 3: aggregate per layer, per phase and model-wide.
    layer_order: List[str] = []
    by_layer: Dict[str, List[KernelInvocation]] = {}
    for inv in schedule.invocations:
        if inv.layer not in by_layer:
            layer_order.append(inv.layer)
            by_layer[inv.layer] = []
        by_layer[inv.layer].append(inv)

    total_counters = Counters()
    layers: List[LayerRunResult] = []
    phase_cycles: Dict[str, int] = {}
    phase_energy: Dict[str, float] = {}
    for layer_name in layer_order:
        invs = by_layer[layer_name]
        layer_counters = Counters()
        for inv in invs:
            layer_counters.merge(kernel_counters[inv.name])
        energy_uj = table.energy_picojoules(layer_counters) / 1e6
        cycles = sum(durations[inv.name] for inv in invs)
        start = min(placed.scheduled[inv.name].start for inv in invs)
        end = max(placed.scheduled[inv.name].end for inv in invs)
        macs = sum(kernel_macs[inv.name] for inv in invs)
        # MAC-weighted utilization across the layer's matrix kernels.
        weighted = sum(
            kernel_util[inv.name] * kernel_macs[inv.name] for inv in invs
        )
        utilization = 100.0 * weighted / macs if macs else 0.0
        layer_phase = invs[0].phase
        layers.append(
            LayerRunResult(
                layer=layer_name,
                phase=layer_phase,
                kinds=tuple(dict.fromkeys(inv.kind for inv in invs)),
                kernels=tuple(inv.name for inv in invs),
                cycles=cycles,
                start=start,
                end=end,
                energy_uj=energy_uj,
                mac_utilization_percent=utilization,
                macs=macs,
            )
        )
        phase_cycles[layer_phase] = phase_cycles.get(layer_phase, 0) + cycles
        phase_energy[layer_phase] = phase_energy.get(layer_phase, 0.0) + energy_uj
        total_counters.merge(layer_counters)

    power = make_power_report(
        design.name, total_counters, table, placed.total_cycles, design.soc
    )
    return ModelRunResult(
        model=schedule.model,
        design=design,
        total_cycles=placed.total_cycles,
        layers=layers,
        power=power,
        counters=total_counters,
        ideal_mac_cycles=schedule.ideal_mac_cycles,
        heterogeneous=schedule.heterogeneous,
        phase_cycles=phase_cycles,
        phase_energy_uj=phase_energy,
        resource_busy=placed.resource_busy,
        timing_cache=cache_stats,
        metrics=_model_metrics(schedule, placed, durations, cache_stats),
    )


def run_model(
    model: Union[str, ModelSpec, LayerGraph],
    design: Union[str, DesignKind, DesignConfig] = DesignKind.VIRGO,
    heterogeneous: bool = False,
    dtype: DataType = DataType.FP16,
) -> ModelRunResult:
    """Lower and execute a full model workload on one design.

    ``model`` may be a zoo name (``"gpt-prefill"``), an explicit
    :class:`ModelSpec`, or an already-built :class:`LayerGraph`.
    """
    graph = model if isinstance(model, LayerGraph) else build_model(model)
    if isinstance(design, str):
        design = DesignKind(design.lower())
    with phase("lower", model=graph.name):
        schedule = lower_graph(graph, design, heterogeneous=heterogeneous, dtype=dtype)
    return execute_schedule(schedule)
