"""Parallel batch runner with a content-addressed on-disk result cache.

Design-space sweeps over whole models multiply quickly: models x designs x
phases x hyperparameter variants.  ``run_batch`` fans a list of
:class:`BatchJob` records across a ``concurrent.futures`` process pool and
memoizes every result in a JSON file keyed by a SHA-256 over the *content*
of the job -- the resolved model hyperparameters, the design, the
heterogeneous flag, the dtype and the package version -- so re-running a
sweep after an unrelated change is free, and changing any hyperparameter
transparently invalidates exactly the affected entries.

Cache entries are the canonical ``ModelRunResult.to_dict()`` encoding (the
same JSON the CLI prints), so cached and fresh results are indistinguishable
to consumers.

The on-disk cache composes with the in-process *timing* cache
(:mod:`repro.perf`): worker processes are seeded with a snapshot of the
parent's warm timing cache, so cache-missing jobs that share kernel shapes
still simulate each distinct shape at most once across the sweep.  MoE
sweeps profit doubly -- all experts of one layer share a GEMM shape, so an
entire expert fan-out costs one simulation (``ModelRunResult.timing_cache``
reports the per-run hit/miss split).

When a ``cache_dir`` is configured the timing cache additionally persists
*across processes*: ``run_batch`` wraps the sweep in
:func:`repro.perf.persistent_timing_cache`, loading
``<cache_dir>/timing-cache.pkl`` before seeding workers and atomically
merging the parent's (possibly grown) cache back on exit.  Repeat
invocations therefore start with every previously simulated kernel warm;
entries computed inside pool workers stay worker-local for that run and are
re-simulated at most once by a later parent.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro import __version__
from repro.config.soc import DataType
from repro.faults import FleetFaultPlan
from repro.perf import persistent_timing_cache, timing_cache
from repro.workloads.fleet import (
    RouterConfig,
    resolve_fleet_designs,
    resolve_router_policy,
    run_fleet,
)
from repro.workloads.graph import ServingTrace
from repro.workloads.models import ModelSpec, resolve_spec, resolve_trace, scaled_spec
from repro.workloads.lowering import run_model
from repro.workloads.serving import run_serving

#: Bump to invalidate every cache entry when the timing models change shape.
#: 2: ModelSpec grew the MoE hyperparameters (experts/top_k/capacity_factor/
#: shared_experts), which widen the hashed spec payload.
#: 3: serving jobs joined the cache namespace (ServingJob hashes a whole
#: trace payload) and job payloads grew a "kind" discriminator.
#: 4: run-result ``to_dict`` encodings grew the "metrics" snapshot
#: (:mod:`repro.obs.metrics`), changing the cached payload shape.
#: 5: serving jobs grew the control-plane knobs (policy, kv_budget) and
#: serving traces may carry per-request SLO classes in their payloads.
#: 6: serving jobs grew the ``epoch_compression`` knob.  Results are proven
#: byte-identical either way, but keying the execution path keeps a
#: hypothetical compression bug from silently serving stale exact-mode
#: bytes (and vice versa).
#: 7: causal attention work became exact (per-tile trip counts replace the
#: 0.5 ``work_scale`` discount), so every cached causal-prefill timing
#: computed under the approximation is stale at an *unchanged* spec hash --
#: ModelSpec's new mask fields (``window``/``seq_lens``) are omitted from
#: ``to_dict`` when defaulted, deliberately keeping unmasked hashes stable.
#: 8: fleet jobs joined the cache namespace (FleetJob hashes the resolved
#: replica list, router policy/config and the seeded fault plan), and the
#: "kind" discriminator grew a third value.
CACHE_SCHEMA_VERSION = 8


@dataclass(frozen=True)
class BatchJob:
    """One (model, design) cell of a sweep.

    ``model`` is a zoo name or an explicit :class:`ModelSpec`; specs are
    resolved before hashing so two jobs naming the same content share a
    cache entry regardless of how they were spelled.
    """

    model: Union[str, ModelSpec]
    design: str = "virgo"
    heterogeneous: bool = False
    dtype: str = "fp16"

    @cached_property
    def spec(self) -> ModelSpec:
        """The resolved model spec; zoo names are looked up once per job."""
        return resolve_spec(self.model) if isinstance(self.model, str) else self.model

    @property
    def label(self) -> str:
        if isinstance(self.model, str):
            name = self.model
        else:
            # Spec-based jobs (sweeps) need the varied knobs in the label,
            # or every cell of an MoE sweep would print identically.
            name = self.model.family
            if self.model.experts:
                name += f"-{self.model.experts}x{self.model.top_k}"
                if self.model.capacity_factor != 1.0:
                    name += f"-cap{self.model.capacity_factor:g}"
                if self.model.shared_experts:
                    name += f"-s{self.model.shared_experts}"
        suffix = "+hetero" if self.heterogeneous else ""
        return f"{name}@{self.design}{suffix}"

    def key(self) -> str:
        """Content hash identifying this job's result."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "kind": "model",
            "spec": self.spec.to_dict(),
            "design": self.design.lower(),
            "heterogeneous": self.heterogeneous,
            "dtype": self.dtype.lower(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ServingJob:
    """One (trace, design) cell of a serving sweep.

    ``trace`` is a trace-zoo name or an explicit :class:`ServingTrace`; the
    content hash covers the *resolved* trace -- every request's arrival,
    prompt length, decode budget and full model spec -- so two jobs naming
    the same stream share a cache entry regardless of spelling, and any
    change to the trace content invalidates exactly its own entries.
    """

    trace: Union[str, ServingTrace]
    design: str = "virgo"
    heterogeneous: bool = False
    dtype: str = "fp16"
    policy: str = "fcfs"
    kv_budget: Optional[int] = None
    epoch_compression: bool = True

    @cached_property
    def resolved(self) -> ServingTrace:
        """The resolved trace; zoo names are looked up once per job."""
        return resolve_trace(self.trace) if isinstance(self.trace, str) else self.trace

    @property
    def label(self) -> str:
        suffix = "+hetero" if self.heterogeneous else ""
        if self.policy != "fcfs":
            suffix += f"+{self.policy}"
        if self.kv_budget is not None:
            suffix += f"+kv{self.kv_budget}"
        return f"serve:{self.resolved.name}@{self.design}{suffix}"

    def key(self) -> str:
        """Content hash identifying this job's result."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "kind": "serving",
            "trace": self.resolved.to_dict(),
            "design": self.design.lower(),
            "heterogeneous": self.heterogeneous,
            "dtype": self.dtype.lower(),
            "policy": self.policy,
            "kv_budget": self.kv_budget,
            "epoch_compression": self.epoch_compression,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FleetJob:
    """One (trace, fleet, policy, fault plan) cell of a fleet chaos sweep.

    ``fleet`` is a fleet-zoo name, a replica count or an explicit design
    tuple; the content hash covers the *resolved* replica design list, so
    ``"duo-virgo"`` and ``("virgo", "virgo")`` share a cache entry.
    ``faults`` is the textual fault-plan spec (``"crash:0.5:200000"``);
    hashing the parsed plan's canonical encoding (which folds in the seed)
    means a reworded-but-identical spec still hits, while any change to a
    rate, duration or the seed invalidates exactly its own cells.
    """

    trace: Union[str, ServingTrace]
    fleet: Union[str, int, Sequence[str]] = 2
    policy: str = "round-robin"
    heterogeneous: bool = False
    dtype: str = "fp16"
    faults: Optional[str] = None
    fault_seed: int = 0
    failover: bool = True

    @cached_property
    def resolved(self) -> ServingTrace:
        """The resolved trace; zoo names are looked up once per job."""
        return resolve_trace(self.trace) if isinstance(self.trace, str) else self.trace

    @cached_property
    def replica_designs(self) -> tuple:
        """The resolved per-replica design names."""
        return tuple(resolve_fleet_designs(self.fleet))

    @cached_property
    def fault_plan(self) -> Optional[FleetFaultPlan]:
        """The parsed (and therefore validated) fault plan, or ``None``."""
        if self.faults is None:
            return None
        return FleetFaultPlan.parse(self.faults, self.fault_seed)

    @property
    def label(self) -> str:
        fleet = (
            self.fleet
            if isinstance(self.fleet, str)
            else "x".join(self.replica_designs)
        )
        suffix = "+hetero" if self.heterogeneous else ""
        if self.faults is not None:
            suffix += f"+chaos{self.fault_seed}"
        if not self.failover:
            suffix += "+nofailover"
        return f"fleet:{self.resolved.name}@{fleet}/{self.policy}{suffix}"

    def key(self) -> str:
        """Content hash identifying this job's result."""
        # Resolving the policy here surfaces an unknown name at job-build
        # time instead of inside a pool worker.
        resolve_router_policy(self.policy, 0)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "kind": "fleet",
            "trace": self.resolved.to_dict(),
            "fleet": list(self.replica_designs),
            "policy": self.policy,
            "heterogeneous": self.heterogeneous,
            "dtype": self.dtype.lower(),
            "faults": self.fault_plan.to_dict() if self.fault_plan else None,
            "failover": self.failover,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` files storing model-run results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn write or corrupted entry is treated as a miss; the
            # recompute below overwrites it atomically.
            return None

    def put(self, key: str, result: Dict[str, object]) -> None:
        path = self.path_for(key)
        # Write-to-temp + rename keeps concurrent workers from ever exposing
        # a half-written entry to a reader.
        fd, tmp_name = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


@dataclass
class BatchOutcome:
    """One job's result plus where it came from."""

    job: Union[BatchJob, "ServingJob", "FleetJob"]
    result: Dict[str, object]
    from_cache: bool


@dataclass
class BatchReport:
    """All outcomes of one ``run_batch`` call."""

    outcomes: List[BatchOutcome] = field(default_factory=list)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.from_cache)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    def results(self) -> List[Dict[str, object]]:
        return [outcome.result for outcome in self.outcomes]


def _execute_job(
    job: Union[BatchJob, "ServingJob", "FleetJob"]
) -> Dict[str, object]:
    """Process-pool worker: run one job end to end, return the dict encoding."""
    dtype = DataType[job.dtype.upper()]
    if isinstance(job, FleetJob):
        config = RouterConfig() if job.failover else RouterConfig(failover=False)
        return run_fleet(
            job.resolved,
            job.replica_designs,
            heterogeneous=job.heterogeneous,
            dtype=dtype,
            policy=job.policy,
            config=config,
            faults=job.fault_plan,
        ).to_dict()
    if isinstance(job, ServingJob):
        return run_serving(
            job.resolved,
            job.design,
            heterogeneous=job.heterogeneous,
            dtype=dtype,
            policy=job.policy,
            kv_budget=job.kv_budget,
            epoch_compression=job.epoch_compression,
        ).to_dict()
    result = run_model(
        job.spec, job.design, heterogeneous=job.heterogeneous, dtype=dtype
    )
    return result.to_dict()


def _seed_worker_cache(entries: Mapping[str, Any]) -> None:
    """Pool initializer: pre-load the parent's warm timing cache entries."""
    timing_cache().load(entries)


def run_batch(
    jobs: Sequence[Union[BatchJob, ServingJob, FleetJob]],
    cache_dir: Union[str, Path, None] = None,
    max_workers: Optional[int] = None,
) -> BatchReport:
    """Run ``jobs`` (model, serving and/or fleet), reusing cached results
    and computing misses in parallel.

    ``cache_dir=None`` disables caching.  ``max_workers`` <= 1 runs misses
    inline (useful under test and on platforms without fork); otherwise the
    misses fan out over a :class:`ProcessPoolExecutor`.  Failing to start
    the pool (restricted environments) falls back to inline execution.

    With a ``cache_dir``, the in-process timing cache is loaded from and
    flushed back to a snapshot alongside the result cache, so repeat
    invocations in fresh processes start with warm kernel timings.
    """
    if cache_dir is not None:
        with persistent_timing_cache(cache_dir):
            return _run_batch(jobs, ResultCache(cache_dir), max_workers)
    return _run_batch(jobs, None, max_workers)


def _run_batch(
    jobs: Sequence[Union[BatchJob, ServingJob, FleetJob]],
    cache: Optional[ResultCache],
    max_workers: Optional[int],
) -> BatchReport:

    hits: Dict[int, Dict[str, object]] = {}
    misses: List[int] = []
    keys = [job.key() for job in jobs]
    for index, job in enumerate(jobs):
        cached = cache.get(keys[index]) if cache is not None else None
        if cached is not None:
            hits[index] = cached
        else:
            misses.append(index)

    fresh: Dict[int, Dict[str, object]] = {}
    if misses:
        workers = max_workers if max_workers is not None else min(len(misses), os.cpu_count() or 1)
        if workers <= 1 or len(misses) == 1:
            for index in misses:
                fresh[index] = _execute_job(jobs[index])
        else:
            try:
                # Seed each worker with the parent's warm in-process timing
                # cache so shared kernel shapes are simulated at most once
                # across the whole sweep.
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_seed_worker_cache,
                    initargs=(timing_cache().snapshot(),),
                ) as pool:
                    for index, result in zip(
                        misses, pool.map(_execute_job, [jobs[index] for index in misses])
                    ):
                        fresh[index] = result
            except (OSError, BrokenProcessPool):
                # Restricted environments: the pool failed to start, or its
                # workers were killed mid-sweep.  Results collected before
                # the failure are kept; the remainder runs inline.
                for index in misses:
                    if index not in fresh:
                        fresh[index] = _execute_job(jobs[index])
        if cache is not None:
            for index, result in fresh.items():
                cache.put(keys[index], result)

    report = BatchReport()
    for index, job in enumerate(jobs):
        if index in hits:
            report.outcomes.append(BatchOutcome(job=job, result=hits[index], from_cache=True))
        else:
            report.outcomes.append(BatchOutcome(job=job, result=fresh[index], from_cache=False))
    return report


def _reject_duplicate_cells(jobs: List) -> List:
    """Fail loudly when a sweep contains two jobs with identical content.

    Duplicate cells used to be silently absorbed by the result cache (the
    second cell is a guaranteed hit), so a sweep advertised as N cells could
    measure fewer than N distinct configurations.  Comparing content hashes
    catches duplicates however they were spelled (zoo name vs. explicit
    spec, repeated values in a knob range).
    """
    seen: Dict[str, str] = {}
    for job in jobs:
        key = job.key()
        if key in seen:
            raise ValueError(
                f"duplicate sweep cell {job.label!r}: same content as "
                f"{seen[key]!r}; drop the repeated value so reported sweep "
                f"sizes count distinct configurations"
            )
        seen[key] = job.label
    return jobs


def sweep_jobs(
    models: Sequence[Union[str, ModelSpec]],
    designs: Sequence[str],
    heterogeneous: Union[bool, Sequence[bool]] = False,
) -> List[BatchJob]:
    """The cross product of models x designs (x heterogeneous) as a job list.

    ``heterogeneous`` may be a single flag (the default, applied to every
    job) or a sequence of flags to cross into the sweep -- e.g.
    ``(False, True)`` runs every (model, design) cell with the single- and
    dual-unit configurations in one call.  Two cells with identical content
    (the same resolved spec, design and flags) raise ``ValueError`` rather
    than being silently deduplicated by the result cache.
    """
    flags = [heterogeneous] if isinstance(heterogeneous, bool) else list(heterogeneous)
    return _reject_duplicate_cells(
        [
            BatchJob(model=model, design=design, heterogeneous=flag)
            for model in models
            for design in designs
            for flag in flags
        ]
    )


def serving_sweep_jobs(
    traces: Sequence[Union[str, ServingTrace]] = ("poisson-mixed",),
    designs: Sequence[str] = ("virgo",),
    heterogeneous: Union[bool, Sequence[bool]] = (False, True),
    policies: Sequence[str] = ("fcfs",),
    kv_budget: Optional[int] = None,
    epoch_compression: bool = True,
) -> List[ServingJob]:
    """The (trace x design x unit-config x policy) serving sweep as a job list.

    Each cell continuous-batches one request stream on one design; crossing
    the ``heterogeneous`` flags compares single- vs dual-matrix-unit serving
    under identical load.  Batch mixes are expressed as traces (the trace
    zoo's arrival families over different request-model mixes), so sweeping
    mixes means sweeping traces.  Crossing ``policies`` compares admission
    policies head-to-head on identical load; ``kv_budget`` applies to every
    budgeted policy in the sweep (fcfs cells ignore it -- the job carries it
    as ``None`` so their cache keys stay policy-independent).  Duplicate
    cells raise ``ValueError``.
    """
    flags = [heterogeneous] if isinstance(heterogeneous, bool) else list(heterogeneous)
    return _reject_duplicate_cells(
        [
            ServingJob(
                trace=trace,
                design=design,
                heterogeneous=flag,
                policy=policy,
                kv_budget=kv_budget if policy != "fcfs" else None,
                epoch_compression=epoch_compression,
            )
            for trace in traces
            for design in designs
            for flag in flags
            for policy in policies
        ]
    )


def fleet_sweep_jobs(
    traces: Sequence[Union[str, ServingTrace]] = ("bursty-gpt",),
    fleets: Sequence[Union[str, int, Sequence[str]]] = ("duo-virgo",),
    policies: Sequence[str] = ("round-robin", "least-outstanding"),
    fault_plans: Sequence[Optional[str]] = (None,),
    fault_seed: int = 0,
    heterogeneous: Union[bool, Sequence[bool]] = False,
    failover: Union[bool, Sequence[bool]] = True,
) -> List[FleetJob]:
    """The (trace x fleet x policy x fault plan) chaos sweep as a job list.

    Each cell routes one request stream across one replica fleet under one
    router policy and one seeded fault plan, so a single sweep answers "which
    policy holds goodput best under this failure mix" head-to-head on
    identical load.  ``fault_plans`` entries are textual specs (``None`` for
    the fault-free baseline); every faulted cell shares ``fault_seed`` so the
    *same* chaos hits every policy.  Crossing ``failover`` flags pins the
    failover-beats-no-failover comparison the CI chaos gate asserts.
    Duplicate cells raise ``ValueError``; so do invalid fault specs and
    unknown fleet or policy names -- at build time, not inside a pool worker.
    """
    flags = [heterogeneous] if isinstance(heterogeneous, bool) else list(heterogeneous)
    failovers = [failover] if isinstance(failover, bool) else list(failover)
    jobs = [
        FleetJob(
            trace=trace,
            fleet=fleet,
            policy=policy,
            heterogeneous=flag,
            faults=plan,
            fault_seed=fault_seed,
            failover=allow,
        )
        for trace in traces
        for fleet in fleets
        for policy in policies
        for plan in fault_plans
        for flag in flags
        for allow in failovers
    ]
    for job in jobs:
        # Force trace/fleet/plan resolution so a bad name or spec fails the
        # sweep build with the offending cell's label attached.
        try:
            job.resolved, job.replica_designs, job.fault_plan
        except (KeyError, ValueError) as error:
            raise ValueError(f"invalid fleet sweep cell: {error}") from error
    return _reject_duplicate_cells(jobs)


def moe_sweep_jobs(
    base: Union[str, ModelSpec] = "moe-decode",
    experts: Sequence[int] = (4, 8, 16),
    top_ks: Sequence[int] = (1, 2),
    designs: Sequence[str] = ("virgo",),
    capacity_factors: Sequence[float] = (1.0,),
    heterogeneous: Union[bool, Sequence[bool]] = (False, True),
) -> List[BatchJob]:
    """The (experts x top_k x capacity x design x unit-config) MoE sweep.

    ``base`` supplies every non-MoE hyperparameter (zoo name or explicit
    spec) and must be a ``family="moe"`` model -- other families silently
    ignore the routing knobs, which would make every cell identical.  Each
    cell overrides the knobs via :func:`scaled_spec`, so the batch runner's
    content hash distinguishes every combination.  Infeasible cells
    (``top_k > experts``) are skipped rather than raised, which lets callers
    pass rectangular ranges; cells with identical content (e.g. a repeated
    value in a knob range) raise ``ValueError`` instead of silently
    shrinking the measured sweep.
    """
    base_spec = resolve_spec(base) if isinstance(base, str) else base
    if base_spec.family != "moe":
        raise ValueError(
            f"moe_sweep_jobs needs a family='moe' base spec, got "
            f"family={base_spec.family!r} (the MoE knobs would be ignored)"
        )
    flags = [heterogeneous] if isinstance(heterogeneous, bool) else list(heterogeneous)
    return _reject_duplicate_cells(
        [
            BatchJob(
                model=scaled_spec(
                    base_spec, experts=count, top_k=top_k, capacity_factor=factor
                ),
                design=design,
                heterogeneous=flag,
            )
            for count in experts
            for top_k in top_ks
            if top_k <= count
            for factor in capacity_factors
            for design in designs
            for flag in flags
        ]
    )
