"""Serving control plane: SLO classes and pluggable scheduling policies.

The PR 4 serving loop admitted every arrived request unconditionally -- a
batcher, not a scheduler.  This module adds the decision layer a production
scheduler needs to degrade *gracefully* under overload instead of
arbitrarily:

* :class:`SloClass` -- a per-request service-level objective: TTFT/TPOT
  targets, a priority, and a queue deadline.  Requests carry one on
  :class:`~repro.workloads.graph.RequestSpec.slo`; finished requests are
  judged ``met`` / ``violated`` against their targets, and the fraction of
  arrivals meeting their SLO is the run's **goodput** -- the headline
  robustness metric beside p99 latency.
* :class:`SchedulingPolicy` -- the protocol the
  :class:`~repro.workloads.serving.ServingScheduler` consults at three
  decision points every iteration boundary: which queued requests to *shed*
  (give up on), which in-flight requests to *evict* (preempt), and which
  queued requests to *admit* under the iteration budget.
* Three shipped policies: :class:`FcfsPolicy` (admit everything -- exactly
  the historical behaviour, and the default), :class:`KvBudgetPolicy`
  (bound resident bucketed-KV bytes against an HBM budget; over-budget
  arrivals queue and past-deadline requests are shed), and
  :class:`PreemptiveSloPolicy` (additionally lets late high-priority
  arrivals evict the longest-resident low-priority decodes; re-admission
  pays an explicit KV re-read cost, see ``docs/perf-contract.md`` §4).

Policies are deterministic pure functions of the queue/batch state -- no
wall clock, no RNG -- so serving runs stay byte-reproducible, which is what
the fault-injection harness (:mod:`repro.faults`) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.config.soc import DataType, DesignConfig

if TYPE_CHECKING:  # runtime access is duck-typed; avoid import cycles
    from repro.workloads.graph import RequestSpec, ServingTrace
    from repro.workloads.models import ModelSpec


@dataclass(frozen=True)
class SloClass:
    """A per-request service-level objective.

    ``ttft_target_cycles`` bounds arrival-to-first-token;
    ``tpot_target_cycles`` bounds the mean time per subsequent output token
    (``(latency - ttft) / (decode_steps - 1)``).  ``None`` targets are
    unconstrained.  ``queue_deadline_cycles`` is the longest a request may
    sit in the admission queue before a budgeted policy sheds it (``None``
    waits forever).  ``priority`` orders classes for admission and
    preemption: higher wins.
    """

    name: str
    priority: int = 0
    ttft_target_cycles: Optional[int] = None
    tpot_target_cycles: Optional[int] = None
    queue_deadline_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO classes need a non-empty name")
        for label in ("ttft_target_cycles", "tpot_target_cycles", "queue_deadline_cycles"):
            value = getattr(self, label)
            if value is not None and value <= 0:
                raise ValueError(f"SLO class {self.name!r}: {label} must be positive or None")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "priority": self.priority,
            "ttft_target_cycles": self.ttft_target_cycles,
            "tpot_target_cycles": self.tpot_target_cycles,
            "queue_deadline_cycles": self.queue_deadline_cycles,
        }


#: The built-in SLO classes the trace zoo's ``*-slo`` variants use.  Targets
#: are in simulation cycles, sized against the tiny request networks in
#: :data:`repro.workloads.models.REQUEST_MODELS`, whose solo decode
#: iterations span roughly 90k cycles: interactive traffic tolerates a
#: small-batch TTFT (a few iterations) and near-solo TPOT with headroom for
#: one co-resident peer, standard traffic roughly twice that, and batch
#: traffic just wants to finish eventually -- no targets, no deadline, never
#: shed.
SLO_CLASSES: Dict[str, SloClass] = {
    "interactive": SloClass(
        name="interactive",
        priority=2,
        ttft_target_cycles=700_000,
        tpot_target_cycles=380_000,
        queue_deadline_cycles=1_500_000,
    ),
    "standard": SloClass(
        name="standard",
        priority=1,
        ttft_target_cycles=1_600_000,
        tpot_target_cycles=460_000,
        queue_deadline_cycles=3_500_000,
    ),
    "batch": SloClass(name="batch", priority=0),
}


def resolve_slo(name: Union[str, SloClass]) -> SloClass:
    """Look up a built-in SLO class, raising with the valid names on a miss."""
    if isinstance(name, SloClass):
        return name
    try:
        return SLO_CLASSES[name]
    except KeyError:
        valid = ", ".join(sorted(SLO_CLASSES))
        raise KeyError(f"unknown SLO class {name!r}; choose one of: {valid}") from None


def request_kv_bytes(model: "ModelSpec", context: int, dtype: DataType) -> int:
    """Resident KV-cache bytes of one request at a (bucketed) context length.

    K and V entries for every block and effective KV head: paged-KV rounding
    is the caller's job (pass the *bucketed* context), so the admission
    arithmetic matches the kernel shapes the scheduler actually runs.
    """
    return 2 * model.blocks * model.effective_kv_heads * model.head_dim * context * dtype.bytes


def _priority(request: "RequestSpec") -> int:
    return request.slo.priority if request.slo is not None else 0


@dataclass
class PolicyContext:
    """Everything a policy decision may depend on, bundled per run.

    ``kv_budget_bytes`` is the resolved HBM budget: an explicit override, or
    the design's :attr:`~repro.config.soc.DramConfig.hbm_capacity_bytes`.
    """

    design: DesignConfig
    dtype: DataType
    trace: "ServingTrace"
    kv_budget_bytes: int

    def kv_bytes(self, request: "RequestSpec", steps_done: int) -> int:
        """The request's resident KV bytes at its current bucketed context."""
        context = self.trace.bucketed_context(request.context_at(steps_done))
        return request_kv_bytes(request.model, context, self.dtype)


class SchedulingPolicy:
    """Admission / eviction / iteration-budget decision points.

    The scheduler calls the three hooks at every iteration boundary, in
    order: :meth:`shed` (queued requests to give up on), :meth:`evict`
    (in-flight requests to preempt back into the queue), :meth:`admit`
    (queued requests to add to the batch).  Hook arguments are the
    scheduler's live queue/batch state objects -- each exposes ``.request``,
    ``.steps_done`` and (queued) ``.enqueued_cycle`` / (active)
    ``.resident_since`` -- and must not be mutated; hooks return subsets of
    the lists they were given.  The base class is FCFS: shed nothing, evict
    nothing, admit everything -- byte-identical to the pre-control-plane
    scheduler.
    """

    name = "fcfs"

    def shed(self, queued: Sequence, now: int, ctx: PolicyContext) -> List:
        return []

    def evict(self, active: Sequence, queued: Sequence, now: int, ctx: PolicyContext) -> List:
        return []

    def admit(self, queued: Sequence, active: Sequence, now: int, ctx: PolicyContext) -> List:
        return list(queued)


class FcfsPolicy(SchedulingPolicy):
    """First-come-first-served, unconditional admission (the default)."""

    name = "fcfs"


class KvBudgetPolicy(SchedulingPolicy):
    """Bound resident bucketed-KV bytes per iteration against an HBM budget.

    Admission walks the queue first-fit in (priority desc, enqueue cycle,
    id) order: a request joins the batch only while the batch's total
    resident KV (at each request's current bucketed context) stays within
    the budget; later, smaller requests may be admitted past a blocked head
    -- the head is protected from starvation by its queue deadline and by
    the scheduler's force-admission of the oldest waiter whenever the batch
    would otherwise sit empty.  Queued requests whose SLO queue deadline has
    expired are shed.
    """

    name = "kv-budget"

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("kv-budget policies need a positive budget in bytes")
        self.budget_bytes = budget_bytes

    def budget(self, ctx: PolicyContext) -> int:
        return self.budget_bytes if self.budget_bytes is not None else ctx.kv_budget_bytes

    def shed(self, queued: Sequence, now: int, ctx: PolicyContext) -> List:
        expired = []
        for entry in queued:
            slo = entry.request.slo
            if slo is None or slo.queue_deadline_cycles is None:
                continue
            if now - entry.enqueued_cycle > slo.queue_deadline_cycles:
                expired.append(entry)
        return expired

    def admit(self, queued: Sequence, active: Sequence, now: int, ctx: PolicyContext) -> List:
        budget = self.budget(ctx)
        resident = sum(ctx.kv_bytes(state.request, state.steps_done) for state in active)
        admitted = []
        # Priority desc, then queue age, then id: the same ordering the
        # preemptive policy uses to pick whom to make room for, so space
        # freed by an eviction goes to the waiter that caused it.
        waiters = sorted(
            queued,
            key=lambda e: (-_priority(e.request), e.enqueued_cycle, e.request.request_id),
        )
        for entry in waiters:
            need = ctx.kv_bytes(entry.request, entry.steps_done)
            if resident + need <= budget:
                admitted.append(entry)
                resident += need
        return admitted


class PreemptiveSloPolicy(KvBudgetPolicy):
    """KV-budget admission plus SLO-priority preemption.

    When a queued request cannot fit under the budget and strictly
    lower-priority requests are decoding, the longest-resident of those
    victims are evicted (preempted back into the queue, KV state dropped)
    until the arrival fits.  Evicted requests keep their completed decode
    steps; re-admission pays an explicit KV re-read penalty -- streaming the
    evicted KV state back over the DRAM channel -- applied by the scheduler
    (see ``docs/perf-contract.md`` contract 4 for how that penalty is folded
    into the iteration-memo key).
    """

    name = "preemptive-slo"

    def evict(self, active: Sequence, queued: Sequence, now: int, ctx: PolicyContext) -> List:
        if not queued:
            return []
        budget = self.budget(ctx)
        remaining = list(active)
        resident = sum(ctx.kv_bytes(state.request, state.steps_done) for state in remaining)
        evicted: List = []
        # Highest-priority waiters claim space first; ties resolve by queue
        # age then id, so the decision is a pure function of the state.
        waiters = sorted(
            queued,
            key=lambda e: (-_priority(e.request), e.enqueued_cycle, e.request.request_id),
        )
        for entry in waiters:
            need = ctx.kv_bytes(entry.request, entry.steps_done)
            if resident + need <= budget:
                resident += need  # reserved; admit() re-walks the real state
                continue
            victims = [
                state for state in remaining if _priority(state.request) < _priority(entry.request)
            ]
            # Longest-resident first: they have had the most service and the
            # most room to make progress before paying the re-read penalty.
            victims.sort(key=lambda s: (s.resident_since, s.request.request_id))
            while victims and resident + need > budget:
                victim = victims.pop(0)
                remaining.remove(victim)
                evicted.append(victim)
                resident -= ctx.kv_bytes(victim.request, victim.steps_done)
            if resident + need <= budget:
                resident += need
        return evicted


#: Policy registry: CLI/batch names -> factory taking the optional budget.
POLICIES = {
    "fcfs": lambda budget=None: FcfsPolicy(),
    "kv-budget": KvBudgetPolicy,
    "preemptive-slo": PreemptiveSloPolicy,
}


def policy_names() -> List[str]:
    return sorted(POLICIES)


def resolve_policy(
    policy: Union[str, SchedulingPolicy, None],
    kv_budget: Optional[int] = None,
) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through) with a KV budget.

    ``kv_budget`` overrides the design's HBM capacity for the budgeted
    policies; it is rejected for policies that would silently ignore it.
    """
    if policy is None:
        policy = "fcfs"
    if isinstance(policy, SchedulingPolicy):
        if kv_budget is not None:
            raise ValueError("pass kv_budget to the policy constructor, not alongside an instance")
        return policy
    try:
        factory = POLICIES[policy]
    except KeyError:
        valid = ", ".join(policy_names())
        raise KeyError(f"unknown policy {policy!r}; choose one of: {valid}") from None
    if policy == "fcfs":
        if kv_budget is not None:
            raise ValueError("the fcfs policy has no KV budget; use kv-budget or preemptive-slo")
        return factory()
    return factory(kv_budget)


def evaluate_disposition(
    request: "RequestSpec",
    ttft_cycles: Optional[int],
    latency_cycles: Optional[int],
) -> str:
    """``met`` or ``violated`` for one *finished* request against its SLO.

    Requests without an SLO class (or without targets) are ``met`` by
    definition -- goodput then degenerates to completion rate, which is what
    an SLO-free trace can meaningfully promise.
    """
    slo = request.slo
    if slo is None:
        return "met"
    if slo.ttft_target_cycles is not None and ttft_cycles > slo.ttft_target_cycles:
        return "violated"
    if slo.tpot_target_cycles is not None and request.decode_steps > 1:
        tpot = (latency_cycles - ttft_cycles) / (request.decode_steps - 1)
        if tpot > slo.tpot_target_cycles:
            return "violated"
    return "met"
