"""Declarative layer-graph IR for end-to-end model workloads.

A :class:`LayerGraph` is a small DAG of neural-network layers -- linear/GEMM,
attention, elementwise and normalization nodes -- annotated with enough shape
information (batch, sequence, features, heads) that the lowering pass in
:mod:`repro.workloads.lowering` can map every node onto the kernel timing
models without further user input.

The IR is deliberately *not* a tensor program: there is no data, only shapes
and operator hyperparameters.  Shape inference walks the graph in insertion
order (dependencies must be added before dependents, the same discipline the
:class:`repro.sim.taskgraph.OperationGraph` enforces) and checks that feature
dimensions agree across edges, so a malformed model fails at build time
rather than producing a nonsense kernel schedule.

Attention nodes carry the variants a real model frontend must express --
grouped-query / multi-query head counts, causal masking and decode-phase
single-query attention against a longer KV context -- mirroring the variant
matrix of the ROCm flash-attention test harness.

Mixture-of-experts FFN blocks are a single :class:`MoeFfnLayer` node (or
:class:`MoeBlock` when shared experts ride along): the node carries the
routing hyperparameters (expert count, top-k, capacity factor) and the
lowering pass expands it into a router/dispatch prologue, one independent
GEMM pair per active expert and a combine epilogue.  Keeping the fan-out
implicit at the IR level means shape inference stays per-node while the
emitted kernel schedule is as wide as the expert count.

Above single model graphs sits the serving-trace layer: a
:class:`RequestSpec` is a decode-phase model instance with an arrival cycle
and a lifetime in decode steps, and a :class:`ServingTrace` is a named
stream of such requests plus the KV-context bucketing policy.  The
continuous-batching scheduler in :mod:`repro.workloads.serving` consumes
traces and lowers every in-flight request's next decode step into one merged
kernel schedule per iteration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.control import SloClass

if TYPE_CHECKING:  # avoid a circular import; models.py imports this module
    from repro.workloads.models import ModelSpec


class LayerKind(enum.Enum):
    """Operator categories the lowering pass knows how to map."""

    LINEAR = "linear"
    ATTENTION = "attention"
    ELEMENTWISE = "elementwise"
    NORM = "norm"
    MOE_FFN = "moe_ffn"


@dataclass(frozen=True)
class TensorShape:
    """Activation shape flowing along a graph edge: (batch, seq, features)."""

    batch: int
    seq: int
    features: int

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.seq <= 0 or self.features <= 0:
            raise ValueError(f"tensor dimensions must be positive, got {self}")

    @property
    def tokens(self) -> int:
        """Rows a row-major GEMM sees: batch x sequence."""
        return self.batch * self.seq

    @property
    def elements(self) -> int:
        return self.batch * self.seq * self.features

    def with_features(self, features: int) -> "TensorShape":
        return replace(self, features=features)


@dataclass(frozen=True)
class Layer:
    """Base class of all graph nodes.

    ``deps`` name the producing layers; a layer with no deps consumes the
    graph input.  ``phase`` is a free-form label ("prefill", "decode",
    "encode", ...) that survives lowering so per-phase aggregation works all
    the way down to the :class:`~repro.workloads.lowering.ModelRunResult`.
    """

    name: str
    deps: Tuple[str, ...] = ()
    phase: str = ""

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        """Output shape given the shapes of ``deps`` (graph input if none)."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinearLayer(Layer):
    """A dense projection: (B, S, in_features) -> (B, S, out_features)."""

    in_features: int = 0
    out_features: int = 0

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError(f"linear layer {self.name!r} needs positive feature dims")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        shape = inputs[0]
        if shape.features != self.in_features:
            raise ValueError(
                f"linear layer {self.name!r} expects {self.in_features} input features, "
                f"got {shape.features}"
            )
        return shape.with_features(self.out_features)

    def gemm_dims(self, shape: TensorShape) -> Tuple[int, int, int]:
        """(m, n, k) of the GEMM this layer lowers to."""
        return shape.tokens, self.out_features, self.in_features

    @property
    def weight_macs_per_token(self) -> int:
        return self.in_features * self.out_features


@dataclass(frozen=True)
class AttentionLayer(Layer):
    """Scaled-dot-product attention over pre-projected Q/K/V activations.

    ``heads`` is the query head count; ``kv_heads`` < ``heads`` expresses
    grouped-query attention (``kv_heads == 1`` is MQA).  ``kv_seq`` is the
    key/value sequence length; in decode phase the incoming activation has
    ``seq == 1`` while ``kv_seq`` is the full context; causal prefill with
    ``kv_seq > seq`` is chunked prefill over prior context.  ``causal``
    marks the triangular mask of autoregressive attention; its score work
    is counted *exactly* from the integer mask arithmetic in
    :mod:`repro.kernels.masking` (a full triangle keeps ``(seq+1)/(2*seq)``
    of the rectangle, a trapezoid over prior context keeps
    ``(kv - (seq-1)/2)/kv``).  ``window`` keeps only the last ``window``
    allowed keys per query (sliding-window attention); ``seq_lens`` packs a
    ragged batch of causally-independent sequences into one batch-1
    activation (varlen, block-diagonal mask).
    """

    heads: int = 1
    head_dim: int = 64
    kv_heads: int = 0  # 0 means same as heads (vanilla MHA)
    kv_seq: int = 0  # 0 means same as the query sequence length
    causal: bool = False
    window: int = 0  # sliding-window width; 0 = unwindowed
    seq_lens: Tuple[int, ...] = ()  # varlen packed batch; sum == shape.seq

    def __post_init__(self) -> None:
        if self.heads <= 0 or self.head_dim <= 0:
            raise ValueError(f"attention layer {self.name!r} needs positive heads/head_dim")
        if self.kv_heads and self.heads % self.kv_heads != 0:
            raise ValueError(
                f"attention layer {self.name!r}: heads ({self.heads}) must be divisible "
                f"by kv_heads ({self.kv_heads})"
            )
        if (self.window or self.seq_lens) and not self.causal:
            raise ValueError(
                f"attention layer {self.name!r}: window/seq_lens describe causal "
                f"masks; set causal=True"
            )
        if self.window < 0:
            raise ValueError(f"attention layer {self.name!r}: window must be >= 0")
        if self.seq_lens:
            if self.kv_seq:
                raise ValueError(
                    f"attention layer {self.name!r}: varlen batches carry no "
                    f"prior context (kv_seq)"
                )
            if any(length <= 0 for length in self.seq_lens):
                raise ValueError(
                    f"attention layer {self.name!r}: seq_lens must be positive"
                )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ATTENTION

    @property
    def effective_kv_heads(self) -> int:
        return self.kv_heads or self.heads

    @property
    def model_dim(self) -> int:
        return self.heads * self.head_dim

    def kv_length(self, shape: TensorShape) -> int:
        return self.kv_seq or shape.seq

    def validate_ragged(self, shape: TensorShape) -> None:
        """Check the varlen packing invariants against the activation shape."""
        if not self.seq_lens:
            return
        if shape.batch != 1:
            raise ValueError(
                f"attention layer {self.name!r}: varlen packs the ragged batch "
                f"into batch 1, got batch {shape.batch}"
            )
        if sum(self.seq_lens) != shape.seq:
            raise ValueError(
                f"attention layer {self.name!r}: seq_lens {self.seq_lens} must "
                f"sum to the packed sequence length {shape.seq}"
            )

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        shape = inputs[0]
        if shape.features != self.model_dim:
            raise ValueError(
                f"attention layer {self.name!r} expects {self.model_dim} features "
                f"(= heads x head_dim), got {shape.features}"
            )
        self.validate_ragged(shape)
        return shape

    def masked_score_elements(self, shape: TensorShape) -> int:
        """Score elements surviving the mask, across heads and batch.

        Exact integer mask counts from :mod:`repro.kernels.masking` -- the
        single source of truth for :meth:`score_macs`,
        :meth:`causal_work_fraction` and the lowering pass, so reported MAC
        utilization always matches the mask-count oracle.
        """
        from repro.kernels.masking import masked_elements, masked_elements_varlen

        kv = self.kv_length(shape)
        if not self.causal:
            per_head = shape.seq * kv
        elif self.seq_lens:
            self.validate_ragged(shape)
            per_head = masked_elements_varlen(self.seq_lens, self.window)
        else:
            per_head = masked_elements(shape.seq, kv, self.window)
        return shape.batch * self.heads * per_head

    def causal_work_fraction(self, shape: TensorShape) -> float:
        """Fraction of score work surviving the mask -- exact, not 0.5.

        A full triangle keeps ``(seq+1)/(2*seq)`` of the rectangle; causal
        prefill over prior context keeps the trapezoid
        ``(kv - (seq-1)/2)/kv`` (this used to return a silent 1.0);
        single-query decode keeps everything unless a window caps it.
        """
        kv = self.kv_length(shape)
        total = shape.batch * self.heads * shape.seq * kv
        return self.masked_score_elements(shape) / total

    def score_macs(self, shape: TensorShape) -> int:
        """MACs of the two score GEMMs (QK^T and PV) across heads and batch.

        Accumulated in integer mask-element counts -- never a floored
        ``int(macs * fraction)`` float product.
        """
        return 2 * self.masked_score_elements(shape) * self.head_dim


@dataclass(frozen=True)
class MoeFfnLayer(Layer):
    """Mixture-of-experts FFN: router -> top-k dispatch -> experts -> combine.

    A single graph node stands for the whole expert-parallel block; the
    lowering pass fans it out into a SIMT router/dispatch prologue, one
    *independent* GEMM pair (up projection, activation, down projection) per
    active expert, and a SIMT combine epilogue weighted by the router
    probabilities.  Because the expert chains share no edges with each other,
    this is the wide-graph shape where the dual-unit cluster can finally
    overlap its matrix and SIMT resources instead of ping-ponging.

    Routing follows the standard capacity model: each of the ``experts``
    experts processes at most ``expert_capacity`` tokens, where the capacity
    is ``ceil(tokens * top_k * capacity_factor / experts)``; experts that no
    token can reach (``tokens * top_k < experts``, the decode regime) emit no
    kernels at all.
    """

    in_features: int = 0
    expert_hidden: int = 0
    experts: int = 8
    top_k: int = 2
    capacity_factor: float = 1.0
    #: FLOPs/element of the per-expert activation (GeLU by default).
    activation_flops: float = 8.0

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.expert_hidden <= 0:
            raise ValueError(f"moe layer {self.name!r} needs positive feature dims")
        if self.experts <= 0 or not 0 < self.top_k <= self.experts:
            raise ValueError(
                f"moe layer {self.name!r}: need 0 < top_k ({self.top_k}) <= "
                f"experts ({self.experts})"
            )
        if self.capacity_factor <= 0:
            raise ValueError(f"moe layer {self.name!r} needs a positive capacity factor")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MOE_FFN

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        shape = inputs[0]
        if shape.features != self.in_features:
            raise ValueError(
                f"moe layer {self.name!r} expects {self.in_features} input features, "
                f"got {shape.features}"
            )
        return shape

    def active_experts(self, shape: TensorShape) -> int:
        """Experts that receive at least one token: decode steps route
        ``tokens * top_k`` assignments, which can undershoot the expert count."""
        return min(self.experts, shape.tokens * self.top_k)

    def expert_capacity(self, shape: TensorShape) -> int:
        """Tokens each active expert processes (capacity-bound, padded up)."""
        routed = shape.tokens * self.top_k * self.capacity_factor
        return max(1, math.ceil(routed / self.experts))

    def expert_gemm_dims(self, shape: TensorShape) -> Tuple[Tuple[int, int, int], ...]:
        """(m, n, k) of the up and down projections of one expert."""
        m = self.expert_capacity(shape)
        return (
            (m, self.expert_hidden, self.in_features),
            (m, self.in_features, self.expert_hidden),
        )

    @property
    def router_flops_per_token(self) -> float:
        """Gating projection + softmax + top-k selection, all on the SIMT cores."""
        return 2.0 * self.in_features * self.experts + 8.0 * self.experts

    def expert_macs(self, shape: TensorShape) -> int:
        """Matrix-unit MACs across all active experts (both projections)."""
        per_expert = sum(m * n * k for m, n, k in self.expert_gemm_dims(shape))
        return self.active_experts(shape) * per_expert


@dataclass(frozen=True)
class MoeBlock(MoeFfnLayer):
    """A routed MoE FFN with DeepSeek-style always-on shared experts.

    ``shared_experts`` dense experts process *every* token regardless of the
    router's decision; their GEMM chains depend only on the block input, not
    on the router, so they can start before routing resolves -- extra
    router-independent work for the scheduler to overlap.
    """

    shared_experts: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shared_experts < 0:
            raise ValueError(f"moe block {self.name!r} needs shared_experts >= 0")

    def shared_gemm_dims(self, shape: TensorShape) -> Tuple[Tuple[int, int, int], ...]:
        """(m, n, k) of one shared expert's projections: all tokens, no capacity."""
        return (
            (shape.tokens, self.expert_hidden, self.in_features),
            (shape.tokens, self.in_features, self.expert_hidden),
        )

    def expert_macs(self, shape: TensorShape) -> int:
        routed = super().expert_macs(shape)
        shared = sum(m * n * k for m, n, k in self.shared_gemm_dims(shape))
        return routed + self.shared_experts * shared


@dataclass(frozen=True)
class ElementwiseLayer(Layer):
    """Pointwise math on the activation: activations, residual adds, scaling."""

    flops_per_element: float = 1.0
    operator: str = "add"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ELEMENTWISE

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        shape = inputs[0]
        for other in inputs[1:]:
            if other != shape:
                raise ValueError(
                    f"elementwise layer {self.name!r} has mismatched input shapes "
                    f"{shape} vs {other}"
                )
        return shape


@dataclass(frozen=True)
class NormLayer(Layer):
    """Layer/RMS normalization: two reduction passes plus a scale pass."""

    flops_per_element: float = 8.0
    norm_type: str = "layernorm"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NORM

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        return inputs[0]


class LayerGraph:
    """A DAG of layers plus the input activation shape.

    Layers must be added dependencies-first, which keeps the insertion order
    topological -- the same invariant the kernel operation graphs rely on, so
    lowering can walk ``layers()`` directly.
    """

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self.name = name
        self.input_shape = input_shape
        self._layers: Dict[str, Layer] = {}
        self._order: List[str] = []
        self._shapes: Dict[str, TensorShape] = {}

    def add(self, layer: Layer) -> Layer:
        if layer.name in self._layers:
            raise ValueError(f"duplicate layer {layer.name!r} in graph {self.name!r}")
        for dep in layer.deps:
            if dep not in self._layers:
                raise ValueError(
                    f"layer {layer.name!r} depends on unknown layer {dep!r}; "
                    "add dependencies before dependents"
                )
        inputs = [self._shapes[dep] for dep in layer.deps] or [self.input_shape]
        self._shapes[layer.name] = layer.infer_shape(inputs)
        self._layers[layer.name] = layer
        self._order.append(layer.name)
        return layer

    def layers(self) -> List[Layer]:
        return [self._layers[name] for name in self._order]

    def output_shape(self, name: str) -> TensorShape:
        """Inferred activation shape produced by layer ``name``."""
        return self._shapes[name]

    def input_shape_of(self, layer: Layer) -> TensorShape:
        """Activation shape the layer consumes (first dependency or graph input)."""
        if layer.deps:
            return self._shapes[layer.deps[0]]
        return self.input_shape

    def phases(self) -> List[str]:
        """Distinct phase labels in first-appearance order."""
        seen: List[str] = []
        for layer in self.layers():
            label = layer.phase or "default"
            if label not in seen:
                seen.append(label)
        return seen

    def total_macs(self) -> int:
        """Matrix-multiply MACs of the whole graph (linear + attention score GEMMs)."""
        total = 0
        for layer in self.layers():
            shape = self.input_shape_of(layer)
            if isinstance(layer, LinearLayer):
                total += shape.tokens * layer.weight_macs_per_token
            elif isinstance(layer, AttentionLayer):
                total += layer.score_macs(shape)
            elif isinstance(layer, MoeFfnLayer):
                total += layer.expert_macs(shape)
        return total

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers())

    def __repr__(self) -> str:
        return (
            f"LayerGraph({self.name!r}, {len(self)} layers, "
            f"input={self.input_shape.batch}x{self.input_shape.seq}x{self.input_shape.features})"
        )


# --------------------------------------------------------------------------- #
# Serving traces: the time-multiplexed layer above single model graphs
# --------------------------------------------------------------------------- #

#: Model families whose builders emit a decode-phase graph; only these can be
#: driven one decode step at a time by the serving scheduler.
DECODE_FAMILIES = ("gpt", "moe")


def bucket_context(context: int, bucket: int) -> int:
    """Round a KV context length up to the page granularity ``bucket``.

    The single definition of the paged-KV rounding policy: both the batched
    serving run and the isolated baseline must bucket identically, or the
    merged-vs-isolated comparisons would measure the policy, not scheduling.
    """
    return ((context + bucket - 1) // bucket) * bucket


@dataclass(frozen=True)
class RequestSpec:
    """One serving request: a decode-phase model instance with a lifetime.

    ``model`` carries every hyperparameter of the request's network (family,
    hidden size, head layout, MoE routing knobs); the serving scheduler
    re-derives the per-step graph from it with ``phase="decode"`` and a
    context length of ``prompt_len`` plus the decode steps completed so far.
    ``arrival_cycle`` is when the request enters the system; it joins the
    batch at the next iteration boundary (iteration-level continuous
    batching), and runs for exactly ``decode_steps`` decode iterations.
    ``slo`` optionally attaches a service-level objective
    (:class:`~repro.workloads.control.SloClass`): TTFT/TPOT targets judged
    after the run, a priority for admission/preemption, and a queue deadline
    after which a budgeted policy may shed the request.
    """

    request_id: str
    model: "ModelSpec"
    arrival_cycle: int = 0
    prompt_len: int = 128
    decode_steps: int = 4
    slo: Optional[SloClass] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValueError("requests need a non-empty request_id")
        if "/" in self.request_id:
            # The id becomes the request's "<id>/" kernel namespace in merged
            # schedules; a "/" inside it would let one id be a string-prefix
            # of another's namespace and misattribute layers across requests.
            raise ValueError(
                f"request id {self.request_id!r} must not contain '/'"
            )
        if self.arrival_cycle < 0:
            raise ValueError(f"request {self.request_id!r} needs arrival_cycle >= 0")
        if self.prompt_len <= 0 or self.decode_steps <= 0:
            raise ValueError(
                f"request {self.request_id!r} needs positive prompt_len and decode_steps"
            )
        if self.model.family not in DECODE_FAMILIES:
            raise ValueError(
                f"request {self.request_id!r}: family {self.model.family!r} has no "
                f"decode phase; serving requests must be one of {DECODE_FAMILIES}"
            )

    def context_at(self, steps_done: int) -> int:
        """KV context length the given decode step attends over."""
        return self.prompt_len + steps_done

    def to_dict(self) -> Dict[str, object]:
        # The "slo" key is emitted only when a class is attached: SLO-free
        # requests keep the exact pre-control-plane encoding, which is what
        # pins the serving goldens byte-identical under the default policy.
        encoded: Dict[str, object] = {
            "request_id": self.request_id,
            "arrival_cycle": self.arrival_cycle,
            "prompt_len": self.prompt_len,
            "decode_steps": self.decode_steps,
            "model": self.model.to_dict(),
        }
        if self.slo is not None:
            encoded["slo"] = self.slo.to_dict()
        return encoded


@dataclass(frozen=True)
class ServingTrace:
    """A named stream of requests plus the KV-context bucketing policy.

    ``context_bucket`` rounds every step's KV length up to a multiple of the
    bucket (a paged-KV-cache model): nearby context lengths share one kernel
    shape, so the timing cache converges to a small working set instead of
    simulating a fresh GEMM per token position.
    """

    name: str
    requests: Tuple[RequestSpec, ...]
    context_bucket: int = 64

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError(f"trace {self.name!r} needs at least one request")
        if self.context_bucket <= 0:
            raise ValueError(f"trace {self.name!r} needs a positive context bucket")
        seen = set()
        previous: Optional[RequestSpec] = None
        for request in self.requests:
            if request.request_id in seen:
                raise ValueError(
                    f"trace {self.name!r} has duplicate request id {request.request_id!r}"
                )
            seen.add(request.request_id)
            # Traces must already be in arrival order (ties broken by id):
            # an unsorted stream would silently disagree with the arrival
            # order every consumer assumes, so reject it at construction.
            if previous is not None and (
                (request.arrival_cycle, request.request_id)
                < (previous.arrival_cycle, previous.request_id)
            ):
                raise ValueError(
                    f"trace {self.name!r} is not sorted by arrival: request "
                    f"{request.request_id!r} (arrival {request.arrival_cycle}) follows "
                    f"{previous.request_id!r} (arrival {previous.arrival_cycle}); "
                    "sort requests by (arrival_cycle, request_id)"
                )
            previous = request

    def sorted_requests(self) -> Tuple[RequestSpec, ...]:
        """Requests in arrival order (ties broken by id, deterministically).

        Construction already rejects unsorted streams (``__post_init__``),
        so this is the stored tuple -- O(1), which matters when the serving
        scheduler walks million-request traces.
        """
        return self.requests

    def bucketed_context(self, context: int) -> int:
        """Round ``context`` up to the trace's KV page granularity."""
        return bucket_context(context, self.context_bucket)

    @property
    def total_decode_steps(self) -> int:
        return sum(request.decode_steps for request in self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "context_bucket": self.context_bucket,
            "requests": [request.to_dict() for request in self.requests],
        }


def build_request_stream(
    model: "ModelSpec",
    arrival_cycles: Sequence[int],
    prompt_len: int = 128,
    decode_steps: int = 4,
    id_prefix: str = "s",
    slo: Optional[SloClass] = None,
) -> Tuple[RequestSpec, ...]:
    """Bulk-construct a sorted, uniform-shape request stream.

    Million-request traces cannot afford one ``__post_init__`` per request;
    this builder validates the shared shape once (by constructing a probe
    spec through the normal path), checks the arrival vector in one numpy
    pass, then allocates the remaining frozen specs directly.  Ids are
    ``<prefix><zero-padded index>``, so (arrival, id) order equals
    construction order and every id is unique -- exactly the invariants
    ``ServingTrace.__post_init__`` would re-derive per request.
    """
    arrivals = np.asarray(arrival_cycles, dtype=np.int64)
    if arrivals.size == 0:
        raise ValueError("a request stream needs at least one arrival")
    if int(arrivals[0]) < 0:
        raise ValueError("request streams need arrival_cycle >= 0")
    if arrivals.size > 1 and int(np.diff(arrivals).min()) < 0:
        raise ValueError("request streams must be sorted by arrival_cycle")
    width = len(str(arrivals.size - 1))
    fmt = (f"{id_prefix}%0{width}d").__mod__
    probe = RequestSpec(
        request_id=fmt(0),
        model=model,
        arrival_cycle=int(arrivals[0]),
        prompt_len=prompt_len,
        decode_steps=decode_steps,
        slo=slo,
    )
    new = RequestSpec.__new__
    set_dict = object.__setattr__
    requests = [new(RequestSpec) for _ in range(arrivals.size - 1)]
    for index, (request, arrival) in enumerate(
        zip(requests, arrivals[1:].tolist()), start=1
    ):
        set_dict(
            request,
            "__dict__",
            {
                "request_id": fmt(index),
                "model": model,
                "arrival_cycle": arrival,
                "prompt_len": prompt_len,
                "decode_steps": decode_steps,
                "slo": slo,
            },
        )
    requests.insert(0, probe)
    return tuple(requests)


def build_stream_trace(
    name: str,
    requests: Iterable[RequestSpec],
    context_bucket: int = 64,
) -> ServingTrace:
    """Construct a :class:`ServingTrace` from a pre-validated stream.

    Skips the per-request ``__post_init__`` walk (duplicate ids, sort
    order), which the :func:`build_request_stream` invariants already
    guarantee -- the O(n) validation pass is the bottleneck when wrapping a
    million-request stream.  Only use with streams whose ordering and id
    uniqueness are guaranteed by construction.
    """
    if context_bucket <= 0:
        raise ValueError(f"trace {name!r} needs a positive context bucket")
    stream = tuple(requests)
    if not stream:
        raise ValueError(f"trace {name!r} needs at least one request")
    trace = ServingTrace.__new__(ServingTrace)
    object.__setattr__(
        trace,
        "__dict__",
        {"name": name, "requests": stream, "context_bucket": context_bucket},
    )
    return trace
