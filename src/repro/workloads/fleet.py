"""Fleet-scale serving: a replica router over N simulated SoCs.

The ROADMAP's top open item made concrete: N :class:`ServingScheduler`
replicas (homogeneous or mixed design presets) behind a router with
pluggable load-balancing policies, where fault tolerance is first-class --
replicas crash and recover, slow down, and partition from the router
(:class:`repro.faults.FleetFaultPlan`), and the router reacts the way a
production ingress does: periodic health checks with timeouts, retries of
failed dispatches under capped exponential backoff with seeded jitter,
failover of orphaned in-flight work (the crashed replica's KV is gone, so
the re-dispatched request pays an explicit re-prefill cost through the same
pending-penalty path preemption re-admission uses), re-admission of traffic
on recovery, and graceful degradation by shedding lowest-SLO-class traffic
when healthy capacity drops below demand.

Determinism contract: every source of randomness (fault materialization,
backoff jitter, power-of-two-choices picks) draws from a fresh
``random.Random(f"{seed}:{kind}:{key}")`` -- SHA-512 seeded, stable across
platforms and draw order -- so a fleet run is a pure function of
``(trace, fleet, policy, config, fault plan)`` and two runs with the same
seed are byte-identical.

Scale contract: replicas are stepped *incrementally* between router events
(arrivals, fault transitions, health-check beliefs, retries) through the
:meth:`ServingScheduler.iteration_outcome` hook, sharing the process-wide
iteration memo across replicas; on memo hits with a stable composition the
replica extrapolates whole epochs up to the next fleet event barrier
(:func:`repro.workloads.epochs.epoch_horizon`), which is what keeps
million-request fleet sweeps tractable.

Every request ends in exactly one terminal disposition --
``met``/``violated`` (finished, judged against its SLO), ``shed`` (dropped
at the router under degradation), ``timed_out`` (retry budget exhausted or
router-queue deadline passed), or ``failed`` (lost to a crash with failover
disabled) -- enforced at result assembly, not just asserted in tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config.presets import DesignKind
from repro.config.soc import DataType
from repro.faults import FleetFaultPlan, ReplicaFaultEvent
from repro.obs import MetricsRegistry, occupancy_percent, phase, trace_recorder
from repro.perf import timing_cache
from repro.workloads.control import evaluate_disposition
from repro.workloads.epochs import accumulate_energy_scalar, epoch_horizon
from repro.workloads.graph import RequestSpec, ServingTrace
from repro.workloads.models import resolve_trace
from repro.workloads.serving import ServingScheduler, _InFlight

__all__ = [
    "FLEET_DISPOSITIONS",
    "ROUTER_POLICIES",
    "FleetRequestResult",
    "FleetRunResult",
    "ReplicaReport",
    "RouterConfig",
    "backoff_cycles",
    "resolve_fleet_designs",
    "resolve_router_policy",
    "run_fleet",
]

#: Perfetto process name for router-level events (dispatches, beliefs).
ROUTER_PROCESS = "router"

#: Every terminal state a fleet request can end in -- exactly one each.
FLEET_DISPOSITIONS = ("met", "violated", "shed", "timed_out", "failed")

#: Processing order for same-cycle events: a fault window that ends at t is
#: applied before one that starts at t; beliefs update before the router
#: acts on them; failover re-dispatch precedes plain retries; deadlines are
#: strict (they beat the drain pass at the same cycle).
_ORD_FAULT_END = 0
_ORD_FAULT_START = 1
_ORD_BELIEF_UP = 2
_ORD_BELIEF_DOWN = 3
_ORD_FAILOVER = 4
_ORD_RETRY = 5
_ORD_DEADLINE = 6
_ORD_DRAIN = 7

_INF = math.inf


def backoff_cycles(attempt: int, *, base: int, cap: int, seed: int, request_id: str) -> int:
    """Capped exponential backoff with seeded half-jitter, in cycles.

    The backoff window doubles per attempt (``base * 2**attempt``) and
    saturates at ``cap``; the returned delay lands in ``[window/2, window)``
    via a jitter drawn from ``random.Random(f"{seed}:backoff:{id}:{n}")`` --
    deterministic per (seed, request, attempt), independent of every other
    draw, and never below 1 cycle.
    """
    if attempt < 0:
        raise ValueError(f"backoff attempt must be >= 0, got {attempt}")
    if base <= 0:
        raise ValueError(f"backoff base must be > 0, got {base}")
    if cap < base:
        raise ValueError(f"backoff cap must be >= base, got cap={cap} base={base}")
    # Exponentiate under the cap without overflowing: past log2(cap/base)
    # doublings the window is saturated anyway.
    if attempt >= (cap // base).bit_length():
        window = cap
    else:
        window = min(cap, base * (1 << attempt))
    jitter = random.Random(f"{seed}:backoff:{request_id}:{attempt}").random()
    return max(1, int(window * (0.5 + 0.5 * jitter)))


@dataclass(frozen=True)
class RouterConfig:
    """Router behavior knobs: health checking, retries, capacity, failover.

    All times are simulation cycles.  ``max_outstanding`` caps dispatched-
    but-unfinished requests per replica (None = unbounded, so shedding only
    triggers when *no* replica is believed healthy); ``failover=False``
    turns crash orphans into ``failed`` dispositions -- the baseline the
    chaos CI compares goodput against.
    """

    health_check_interval: int = 50_000
    health_check_timeout: int = 10_000
    dispatch_timeout: int = 5_000
    retry_base_cycles: int = 2_000
    retry_cap_cycles: int = 64_000
    max_retries: int = 4
    failover: bool = True
    max_outstanding: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for label in (
            "health_check_interval",
            "health_check_timeout",
            "dispatch_timeout",
            "retry_base_cycles",
        ):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be > 0, got {getattr(self, label)}")
        if self.retry_cap_cycles < self.retry_base_cycles:
            raise ValueError(
                f"retry_cap_cycles must be >= retry_base_cycles, got "
                f"{self.retry_cap_cycles} < {self.retry_base_cycles}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError(f"max_outstanding must be >= 1, got {self.max_outstanding}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "health_check_interval": self.health_check_interval,
            "health_check_timeout": self.health_check_timeout,
            "dispatch_timeout": self.dispatch_timeout,
            "retry_base_cycles": self.retry_base_cycles,
            "retry_cap_cycles": self.retry_cap_cycles,
            "max_retries": self.max_retries,
            "failover": self.failover,
            "max_outstanding": self.max_outstanding,
            "seed": self.seed,
        }


def _request_priority(request: RequestSpec) -> int:
    return request.slo.priority if request.slo is not None else 0


@dataclass
class _FleetRequest:
    """Router-side lifecycle state of one request across replicas."""

    spec: RequestSpec
    priority: int
    attempts: int = 0
    retries: int = 0
    failovers: int = 0
    steps_done: int = 0
    needs_reprefill: bool = False
    reprefill_cycles: int = 0
    admitted_cycle: Optional[int] = None
    first_token_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None
    terminal_cycle: Optional[int] = None
    disposition: Optional[str] = None
    replica: Optional[int] = None
    enqueued_cycle: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.disposition is not None


class _Replica:
    """One simulated SoC: a stepping wrapper over ServingScheduler hooks.

    The replica owns its local clock (``now``), active batch, and pending
    (dispatched, not yet admitted) queue, and advances iteration by
    iteration -- or whole epochs on memo hits -- up to an externally
    supplied fleet-event barrier.  An iteration whose end would cross the
    barrier is parked as ``inflight`` (iterations are atomic) and retired
    on the next advance; a crash aborts it with its work discarded.
    """

    def __init__(
        self,
        index: int,
        design_name: str,
        scheduler: ServingScheduler,
        trace: ServingTrace,
        compress: bool,
    ) -> None:
        self.index = index
        self.design_name = design_name
        self.scheduler = scheduler
        self.trace = trace
        self.compress = compress
        self.now = 0
        self.active: List[_InFlight] = []
        self.pending: List[Tuple[int, _FleetRequest]] = []
        self.by_id: Dict[str, _FleetRequest] = {}
        self.inflight: Optional[Tuple[int, object, int]] = None
        self.down_depth = 0
        self.partition_depth = 0
        self.slow_scales: List[float] = []
        self.believed_up = True
        # Accounting (span/energy/busy only for work that actually retired).
        self.iterations = 0
        self.epochs = 0
        self.extrapolated_iterations = 0
        self.aborted_iterations = 0
        self.serving_cycles = 0
        self.kernel_count = 0
        self.energy_uj = 0.0
        self.resource_busy: Dict[str, int] = {}
        self.dispatched = 0
        self.completed = 0
        self.crashes = 0
        self.slowdowns = 0
        self.partitions = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def down(self) -> bool:
        return self.down_depth > 0

    @property
    def reachable(self) -> bool:
        """Truth: the router can actually deliver a dispatch right now."""
        return self.down_depth == 0 and self.partition_depth == 0

    @property
    def slow_scale(self) -> float:
        return max(self.slow_scales, default=1.0)

    @property
    def outstanding(self) -> int:
        return len(self.active) + len(self.pending)

    @property
    def busy(self) -> bool:
        return bool(self.active or self.pending or self.inflight is not None)

    @property
    def resident_kv(self) -> int:
        if not self.active:
            return 0
        return self.scheduler.resident_kv_bytes(self.trace, self.active)

    def advance(self, limit: Union[int, float], recorder) -> None:
        """Run this replica until its next iteration boundary would cross ``limit``."""
        while not self.down:
            if self.inflight is not None:
                end_cycle, outcome, effective = self.inflight
                if end_cycle > limit:
                    return
                self.inflight = None
                self._apply_iteration(end_cycle - effective, outcome, effective, recorder)
                continue
            if not self.active:
                if not self.pending:
                    return
                boundary = min(at for at, _ in self.pending)
                if boundary >= limit:
                    return
                if boundary > self.now:
                    self.now = boundary
            self._admit_ready()
            if not self.active:
                continue
            scale = self.slow_scale
            with phase("fleet.iteration", replica=self.index, batch=len(self.active)):
                if recorder is not None:
                    with recorder.time_offset(self.now):
                        outcome, replayed = self.scheduler.iteration_outcome(
                            self.trace, self.active, duration_scale=scale
                        )
                else:
                    outcome, replayed = self.scheduler.iteration_outcome(
                        self.trace, self.active, duration_scale=scale
                    )
            span = outcome.span_cycles
            penalties = [state.pending_penalty for state in self.active]
            effective = span
            for state, end in zip(self.active, outcome.entry_end_cycles):
                if state.pending_penalty:
                    effective = max(effective, end + state.pending_penalty)

            horizon = 1
            if (
                replayed
                and self.compress
                and not self.pending
                and span > 0
                and not any(penalties)
            ):
                contexts = [
                    self.trace.bucketed_context(s.request.context_at(s.steps_done))
                    for s in self.active
                ]
                horizon = epoch_horizon(
                    [s.request.decode_steps - s.steps_done for s in self.active],
                    [
                        context - s.request.context_at(s.steps_done) + 1
                        for s, context in zip(self.active, contexts)
                    ],
                    span,
                    self.now,
                    None,
                )
                if horizon > 1 and limit != _INF:
                    # Unlike a single-SoC serve (where an arrival waits for
                    # the boundary), a fleet event must land *between*
                    # iterations: cap the epoch to iterations that end at or
                    # before the barrier; the crossing remainder runs solo.
                    horizon = max(1, min(horizon, int((limit - self.now) // span)))

            cache = timing_cache()
            if replayed:
                self.memo_hits += horizon
                lookups = horizon * outcome.cache_lookups
                cache.credit_hits(lookups)
                self.cache_hits += lookups
            else:
                self.memo_misses += 1
                self.cache_hits += outcome.cache_hits
                self.cache_misses += outcome.cache_misses

            if horizon >= 2:
                self._apply_epoch(outcome, span, horizon, recorder)
                continue
            end_cycle = self.now + effective
            if end_cycle > limit:
                self.inflight = (end_cycle, outcome, effective)
                return
            self._apply_iteration(self.now, outcome, effective, recorder)

    def _admit_ready(self) -> None:
        ready = [(at, fr) for at, fr in self.pending if at <= self.now]
        if not ready:
            return
        ready.sort(key=lambda item: (item[0], item[1].spec.request_id))
        self.pending = [(at, fr) for at, fr in self.pending if at > self.now]
        for _, fr in ready:
            penalty = 0
            if fr.needs_reprefill:
                penalty = self.scheduler.kv_reload_penalty(fr.spec, fr.steps_done, self.trace)
                fr.reprefill_cycles += penalty
                fr.needs_reprefill = False
            if fr.admitted_cycle is None:
                fr.admitted_cycle = self.now
            fr.replica = self.index
            self.active.append(
                _InFlight(
                    request=fr.spec,
                    admitted_cycle=fr.admitted_cycle,
                    steps_done=fr.steps_done,
                    first_token_cycle=fr.first_token_cycle,
                    resident_since=self.now,
                    pending_penalty=penalty,
                    preemptions=fr.failovers,
                )
            )
            self.by_id[fr.spec.request_id] = fr

    def _apply_iteration(self, start: int, outcome, effective: int, recorder) -> None:
        for state, end in zip(self.active, outcome.entry_end_cycles):
            done_at = start + state.pending_penalty + end
            state.steps_done += 1
            state.pending_penalty = 0
            if state.first_token_cycle is None:
                state.first_token_cycle = done_at
            if state.steps_done == state.request.decode_steps:
                state.finish_cycle = done_at
        if recorder is not None:
            recorder.add_span(
                f"iteration ({len(self.active)} reqs)",
                process=self._process,
                track="iterations",
                start=start,
                duration=effective,
                category="iteration",
                args={"batch": len(self.active), "scale": self.slow_scale},
            )
        self.iterations += 1
        self.serving_cycles += effective
        self.kernel_count += outcome.kernel_count
        self.energy_uj += outcome.energy_uj
        for resource, busy in outcome.resource_busy:
            self.resource_busy[resource] = self.resource_busy.get(resource, 0) + busy
        self.now = start + effective
        self._collect_finished()

    def _apply_epoch(self, outcome, span: int, horizon: int, recorder) -> None:
        for state, end in zip(self.active, outcome.entry_end_cycles):
            if state.first_token_cycle is None:
                state.first_token_cycle = self.now + end
            state.steps_done += horizon
            if state.steps_done == state.request.decode_steps:
                state.finish_cycle = self.now + (horizon - 1) * span + end
        if recorder is not None:
            recorder.add_span(
                f"epoch x{horizon}",
                process=self._process,
                track="iterations",
                start=self.now,
                duration=horizon * span,
                category="epoch",
                args={"batch": len(self.active), "iterations": horizon},
            )
        self.iterations += horizon
        self.epochs += 1
        self.extrapolated_iterations += horizon
        self.serving_cycles += horizon * span
        self.kernel_count += horizon * outcome.kernel_count
        self.energy_uj = accumulate_energy_scalar(self.energy_uj, outcome.energy_uj, horizon)
        for resource, busy in outcome.resource_busy:
            self.resource_busy[resource] = self.resource_busy.get(resource, 0) + horizon * busy
        self.now += horizon * span
        self._collect_finished()

    def _collect_finished(self) -> None:
        finished = [state for state in self.active if state.finish_cycle is not None]
        if not finished:
            return
        for state in finished:
            fr = self.by_id.pop(state.request.request_id)
            fr.steps_done = state.steps_done
            fr.first_token_cycle = state.first_token_cycle
            fr.finish_cycle = state.finish_cycle
            fr.terminal_cycle = state.finish_cycle
            self.completed += 1
        self.active = [state for state in self.active if state.finish_cycle is None]

    def crash(self, at: int) -> List[_FleetRequest]:
        """Take the replica down; return the orphaned requests.

        The in-flight iteration is aborted (its work is discarded, not
        accounted), admitted requests keep their decode progress but lose
        KV residency (``needs_reprefill``), and dispatched-but-unadmitted
        requests are simply returned to the router (no KV to lose).
        """
        self.crashes += 1
        self.down_depth += 1
        if self.inflight is not None:
            self.aborted_iterations += 1
            self.inflight = None
        orphans: List[_FleetRequest] = []
        for state in self.active:
            fr = self.by_id.pop(state.request.request_id)
            fr.steps_done = state.steps_done
            fr.first_token_cycle = state.first_token_cycle
            fr.needs_reprefill = True
            orphans.append(fr)
        self.active = []
        for _, fr in self.pending:
            orphans.append(fr)
        self.pending = []
        self.now = max(self.now, at)
        orphans.sort(key=lambda fr: fr.spec.request_id)
        return orphans

    def recover(self, at: int) -> None:
        self.down_depth -= 1
        if self.down_depth == 0:
            self.now = max(self.now, at)

    @property
    def _process(self) -> str:
        return f"replica{self.index} ({self.design_name})"


@dataclass
class FleetRequestResult:
    """Terminal record of one request's trip through the fleet."""

    request_id: str
    model_family: str
    arrival_cycle: int
    admitted_cycle: Optional[int]
    first_token_cycle: Optional[int]
    finish_cycle: Optional[int]
    prompt_len: int
    decode_steps: int
    disposition: str
    slo_class: Optional[str]
    terminal_cycle: Optional[int]
    replica: Optional[int]
    attempts: int
    retries: int
    failovers: int
    reprefill_cycles: int

    @property
    def latency_cycles(self) -> Optional[int]:
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.arrival_cycle

    @property
    def ttft_cycles(self) -> Optional[int]:
        if self.first_token_cycle is None:
            return None
        return self.first_token_cycle - self.arrival_cycle

    @property
    def queueing_cycles(self) -> Optional[int]:
        if self.admitted_cycle is None:
            return None
        return self.admitted_cycle - self.arrival_cycle

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "model_family": self.model_family,
            "arrival_cycle": self.arrival_cycle,
            "admitted_cycle": self.admitted_cycle,
            "first_token_cycle": self.first_token_cycle,
            "finish_cycle": self.finish_cycle,
            "prompt_len": self.prompt_len,
            "decode_steps": self.decode_steps,
            "latency_cycles": self.latency_cycles,
            "ttft_cycles": self.ttft_cycles,
            "queueing_cycles": self.queueing_cycles,
            "disposition": self.disposition,
            "slo_class": self.slo_class,
            "terminal_cycle": self.terminal_cycle,
            "replica": self.replica,
            "attempts": self.attempts,
            "retries": self.retries,
            "failovers": self.failovers,
            "reprefill_cycles": self.reprefill_cycles,
        }


@dataclass
class ReplicaReport:
    """Per-replica accounting surfaced in the fleet report."""

    index: int
    design: str
    iterations: int
    epochs: int
    aborted_iterations: int
    serving_cycles: int
    kernel_count: int
    energy_uj: float
    resource_busy: Dict[str, int]
    dispatched: int
    completed: int
    crashes: int
    slowdowns: int
    partitions: int
    unreachable_cycles: int

    def to_dict(self) -> Dict[str, object]:
        # ``epochs`` is deliberately absent: how many iterations were
        # *extrapolated* (rather than executed) depends on the process's
        # memo state, and the canonical encoding must stay byte-identical
        # across warm and cold caches.  It lives in the run's ``perf``
        # diagnostics instead.
        return {
            "index": self.index,
            "design": self.design,
            "iterations": self.iterations,
            "aborted_iterations": self.aborted_iterations,
            "serving_cycles": self.serving_cycles,
            "kernel_count": self.kernel_count,
            "energy_uj": self.energy_uj,
            "resource_busy": dict(sorted(self.resource_busy.items())),
            "unit_occupancy_percent": occupancy_percent(
                self.resource_busy, self.serving_cycles
            ),
            "dispatched": self.dispatched,
            "completed": self.completed,
            "crashes": self.crashes,
            "slowdowns": self.slowdowns,
            "partitions": self.partitions,
            "unreachable_cycles": self.unreachable_cycles,
        }


@dataclass
class FleetRunResult:
    """Outcome of one trace served by a fleet under a router policy."""

    trace: str
    policy: str
    fleet: Tuple[str, ...]
    heterogeneous: bool
    config: RouterConfig
    fault_plan: Optional[FleetFaultPlan]
    fault_events: Tuple[ReplicaFaultEvent, ...]
    total_cycles: int
    requests: List[FleetRequestResult]
    replicas: List[ReplicaReport]
    dispositions: Dict[str, int]
    goodput: float
    availability: float
    dispatch_count: int
    failed_dispatches: int
    retry_count: int
    failover_count: int
    metrics: MetricsRegistry
    #: Process-local perf diagnostics (memo/cache activity), deliberately
    #: outside :meth:`to_dict` -- the canonical encoding must stay
    #: byte-identical across warm and cold caches.
    perf: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "fleet_run",
            "trace": self.trace,
            "policy": self.policy,
            "fleet": list(self.fleet),
            "heterogeneous": self.heterogeneous,
            "router": self.config.to_dict(),
            "faults": self.fault_plan.to_dict() if self.fault_plan else None,
            "fault_events": [event.to_dict() for event in self.fault_events],
            "total_cycles": self.total_cycles,
            "dispositions": dict(self.dispositions),
            "goodput": self.goodput,
            "availability": self.availability,
            "dispatch_count": self.dispatch_count,
            "failed_dispatches": self.failed_dispatches,
            "retry_count": self.retry_count,
            "failover_count": self.failover_count,
            "requests": [request.to_dict() for request in self.requests],
            "replicas": [replica.to_dict() for replica in self.replicas],
            "metrics": self.metrics.snapshot(),
        }


class _RoundRobin:
    """Cycle through believed-healthy replicas in index order."""

    name = "round-robin"

    def __init__(self, seed: int) -> None:
        self._cursor = -1

    def choose(self, candidates: List[_Replica], fr: _FleetRequest, now: int) -> _Replica:
        chosen = None
        for rep in candidates:
            if rep.index > self._cursor:
                chosen = rep
                break
        if chosen is None:
            chosen = candidates[0]
        self._cursor = chosen.index
        return chosen


class _LeastOutstanding:
    """Fewest dispatched-but-unfinished requests wins (ties by index)."""

    name = "least-outstanding"

    def __init__(self, seed: int) -> None:
        pass

    def choose(self, candidates: List[_Replica], fr: _FleetRequest, now: int) -> _Replica:
        return min(candidates, key=lambda rep: (rep.outstanding, rep.index))


class _LeastKv:
    """Smallest resident KV footprint wins (ties by index)."""

    name = "least-kv"

    def __init__(self, seed: int) -> None:
        pass

    def choose(self, candidates: List[_Replica], fr: _FleetRequest, now: int) -> _Replica:
        return min(candidates, key=lambda rep: (rep.resident_kv, rep.index))


class _PowerOfTwo:
    """Seeded two random picks; the less-loaded of the pair wins."""

    name = "power-of-two"

    def __init__(self, seed: int) -> None:
        self._seed = seed

    def choose(self, candidates: List[_Replica], fr: _FleetRequest, now: int) -> _Replica:
        if len(candidates) == 1:
            return candidates[0]
        rng = random.Random(f"{self._seed}:p2c:{fr.spec.request_id}:{fr.attempts}")
        first = rng.randrange(len(candidates))
        second = rng.randrange(len(candidates))
        if second == first:
            second = (second + 1) % len(candidates)
        a, b = candidates[first], candidates[second]
        return a if (a.outstanding, a.index) <= (b.outstanding, b.index) else b


ROUTER_POLICIES = {
    policy.name: policy
    for policy in (_RoundRobin, _LeastOutstanding, _LeastKv, _PowerOfTwo)
}


def resolve_router_policy(name: str, seed: int):
    try:
        factory = ROUTER_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_POLICIES))
        raise ValueError(f"unknown router policy {name!r}; known policies: {known}") from None
    return factory(seed)


def resolve_fleet_designs(
    fleet: Union[int, str, Sequence[Union[str, DesignKind]]],
) -> Tuple[str, ...]:
    """Normalize a fleet description into a tuple of design preset names.

    An int is that many ``virgo`` replicas; a string is a fleet-zoo name
    (:data:`repro.workloads.models.FLEET_ZOO`); a sequence names each
    replica's design preset directly.
    """
    if isinstance(fleet, int):
        if fleet < 1:
            raise ValueError(f"fleet must have at least one replica, got {fleet}")
        return (DesignKind.VIRGO.value,) * fleet
    if isinstance(fleet, str):
        from repro.workloads.models import resolve_fleet

        return resolve_fleet(fleet)
    designs = tuple(
        member.value if isinstance(member, DesignKind) else DesignKind(str(member).lower()).value
        for member in fleet
    )
    if not designs:
        raise ValueError("fleet sequence must name at least one design preset")
    return designs


class _FleetRun:
    """One fleet execution: the event loop and all router state."""

    def __init__(
        self,
        trace: ServingTrace,
        designs: Tuple[str, ...],
        heterogeneous: bool,
        dtype: DataType,
        policy_name: str,
        config: RouterConfig,
        plan: Optional[FleetFaultPlan],
        iteration_memo: bool,
        epoch_extrapolation: bool,
    ) -> None:
        self.trace = trace
        self.designs = designs
        self.heterogeneous = heterogeneous
        self.config = config
        self.plan = plan
        self.policy_name = policy_name
        self.policy = resolve_router_policy(policy_name, config.seed)
        self.recorder = trace_recorder()
        self.replicas = [
            _Replica(
                index,
                name,
                ServingScheduler(
                    design=name,
                    heterogeneous=heterogeneous,
                    dtype=dtype,
                    iteration_memo=iteration_memo,
                    epoch_compression=epoch_extrapolation,
                ),
                trace,
                compress=epoch_extrapolation,
            )
            for index, name in enumerate(designs)
        ]
        self.arrivals = list(trace.sorted_requests())
        self.queue: List[_FleetRequest] = []
        self.all_requests: List[_FleetRequest] = []
        self.events: List[tuple] = []
        self._seq = 0
        self._drain_armed = False
        self.dispatch_count = 0
        self.failed_dispatches = 0
        self.retry_count = 0
        self.failover_count = 0
        horizon = self.arrivals[-1].arrival_cycle + 1 if self.arrivals else 1
        self.fault_events = plan.materialize(len(designs), horizon) if plan else ()
        self._schedule_faults()

    # -- Event plumbing --------------------------------------------------

    def _push(self, at: int, order: int, kind: str, payload: object) -> None:
        self._seq += 1
        heappush(self.events, (at, order, self._seq, kind, payload))

    def _first_check_at(self, replica_index: int, t: int) -> int:
        """The first health-check tick for a replica at or after ``t``.

        Ticks are staggered across replicas so a fleet-wide probe storm
        never lands on one cycle.
        """
        interval = self.config.health_check_interval
        offset = (replica_index * interval) // max(1, len(self.replicas))
        if t <= offset:
            return offset
        return offset + (-((t - offset) // -interval)) * interval

    def _schedule_faults(self) -> None:
        """Turn materialized fault windows into truth + belief events.

        Truth transitions land exactly at window edges.  Belief follows the
        health checker: a window is *detected* at the first check tick at or
        after its start plus the check timeout (an outage shorter than that
        is never believed), and belief recovers at the first tick at or
        after the window's end -- both scheduled closed-form, so health
        checking costs O(windows), not O(time / interval).
        """
        per_replica: Dict[int, List[Tuple[int, int]]] = {}
        for event in self.fault_events:
            self._push(event.at_cycle, _ORD_FAULT_START, "fault_start", event)
            self._push(event.end_cycle, _ORD_FAULT_END, "fault_end", event)
            if event.kind in ("crash", "partition"):
                per_replica.setdefault(event.replica, []).append(
                    (event.at_cycle, event.end_cycle)
                )
        timeout = self.config.health_check_timeout
        for replica_index, windows in per_replica.items():
            for start, end in _merge_windows(windows):
                detect = self._first_check_at(replica_index, start) + timeout
                if detect < end:
                    self._push(detect, _ORD_BELIEF_DOWN, "belief_down", replica_index)
                self._push(
                    self._first_check_at(replica_index, end),
                    _ORD_BELIEF_UP,
                    "belief_up",
                    replica_index,
                )

    # -- Router actions --------------------------------------------------

    def _candidates(self) -> List[_Replica]:
        cap = self.config.max_outstanding
        return [
            rep
            for rep in self.replicas
            if rep.believed_up and (cap is None or rep.outstanding < cap)
        ]

    def _dispatch(self, fr: _FleetRequest, now: int) -> None:
        if fr.terminal:
            return
        candidates = self._candidates()
        if not candidates:
            self._park_or_shed(fr, now)
            return
        rep = self.policy.choose(candidates, fr, now)
        fr.attempts += 1
        if rep.reachable:
            rep.pending.append((now, fr))
            rep.dispatched += 1
            fr.replica = rep.index
            self.dispatch_count += 1
            return
        # The dispatch times out against a believed-up but unreachable
        # replica: mark the belief down once the timeout fires, and retry
        # elsewhere after a backoff -- unless the retry budget is gone.
        self.failed_dispatches += 1
        detected = now + self.config.dispatch_timeout
        self._push(detected, _ORD_BELIEF_DOWN, "belief_down", rep.index)
        if self.recorder is not None:
            self.recorder.add_span(
                f"dispatch timeout ({fr.spec.request_id} -> r{rep.index})",
                process=ROUTER_PROCESS,
                track="dispatch",
                start=now,
                duration=self.config.dispatch_timeout,
                category="fault",
                args={"request": fr.spec.request_id, "replica": rep.index},
            )
        attempt = fr.retries
        fr.retries += 1
        self.retry_count += 1
        if fr.retries > self.config.max_retries:
            self._finalize(fr, "timed_out", detected)
            return
        delay = backoff_cycles(
            attempt,
            base=self.config.retry_base_cycles,
            cap=self.config.retry_cap_cycles,
            seed=self.config.seed,
            request_id=fr.spec.request_id,
        )
        self._push(detected + delay, _ORD_RETRY, "retry", fr)

    def _park_or_shed(self, fr: _FleetRequest, now: int) -> None:
        """No believed-healthy capacity: degrade gracefully.

        Lowest-SLO-class traffic (priority 0 -- the batch tier and SLO-free
        requests) is shed outright; higher classes park in the router queue
        and re-dispatch on recovery, the next drain tick, or a belief
        change, subject to their queue deadline.
        """
        if fr.priority == 0:
            self._finalize(fr, "shed", now)
            return
        if fr.enqueued_cycle is None:
            fr.enqueued_cycle = now
            deadline = fr.spec.slo.queue_deadline_cycles if fr.spec.slo else None
            if deadline is not None:
                self._push(fr.enqueued_cycle + deadline, _ORD_DEADLINE, "deadline", fr)
        self.queue.append(fr)

    def _finalize(self, fr: _FleetRequest, disposition: str, at: int) -> None:
        fr.disposition = disposition
        fr.terminal_cycle = at
        if self.recorder is not None:
            self.recorder.add_span(
                f"{disposition} ({fr.spec.request_id})",
                process=ROUTER_PROCESS,
                track="dispositions",
                start=at,
                duration=0,
                category="disposition",
                args={"request": fr.spec.request_id},
            )

    def _drain(self, now: int) -> None:
        if not self.queue:
            return
        parked = [fr for fr in self.queue if not fr.terminal]
        self.queue = []
        for fr in parked:
            self._dispatch(fr, now)

    def _advance_all(self, limit: Union[int, float]) -> None:
        for rep in self.replicas:
            rep.advance(limit, self.recorder)

    # -- Event handlers --------------------------------------------------

    def _on_fault_start(self, event: ReplicaFaultEvent, now: int) -> None:
        rep = self.replicas[event.replica]
        if self.recorder is not None:
            self.recorder.add_span(
                event.kind,
                process=rep._process,
                track="faults",
                start=event.at_cycle,
                duration=event.duration_cycles,
                category="fault",
                args={"scale": event.duration_scale},
            )
        if event.kind == "crash":
            orphans = rep.crash(now)
            if not orphans:
                return
            if self.config.failover:
                detected = min(
                    self._first_check_at(event.replica, now) + self.config.health_check_timeout,
                    event.end_cycle,
                )
                self._push(detected, _ORD_FAILOVER, "failover", orphans)
            else:
                for fr in orphans:
                    self._finalize(fr, "failed", now)
        elif event.kind == "slow":
            rep.slowdowns += 1
            rep.slow_scales.append(event.duration_scale)
        elif event.kind == "partition":
            rep.partitions += 1
            rep.partition_depth += 1

    def _on_fault_end(self, event: ReplicaFaultEvent, now: int) -> None:
        rep = self.replicas[event.replica]
        if event.kind == "crash":
            rep.recover(now)
        elif event.kind == "slow":
            rep.slow_scales.remove(event.duration_scale)
        elif event.kind == "partition":
            rep.partition_depth -= 1

    def _on_failover(self, orphans: List[_FleetRequest], now: int) -> None:
        for fr in orphans:
            if fr.terminal:
                continue
            fr.failovers += 1
            self.failover_count += 1
            self._dispatch(fr, now)

    def run(self) -> None:
        arrival_index = 0
        clock = 0
        while self.events or arrival_index < len(self.arrivals):
            next_event = self.events[0][0] if self.events else _INF
            next_arrival = (
                self.arrivals[arrival_index].arrival_cycle
                if arrival_index < len(self.arrivals)
                else _INF
            )
            now = int(min(next_event, next_arrival))
            clock = max(clock, now)
            self._advance_all(now)
            while self.events and self.events[0][0] == now:
                _, _, _, kind, payload = heappop(self.events)
                if kind == "fault_start":
                    self._on_fault_start(payload, now)
                elif kind == "fault_end":
                    self._on_fault_end(payload, now)
                elif kind == "belief_up":
                    rep = self.replicas[payload]
                    if rep.reachable:
                        rep.believed_up = True
                elif kind == "belief_down":
                    rep = self.replicas[payload]
                    if not rep.reachable:
                        rep.believed_up = False
                elif kind == "failover":
                    self._on_failover(payload, now)
                elif kind == "retry":
                    self._dispatch(payload, now)
                elif kind == "deadline":
                    fr = payload
                    if not fr.terminal and fr in self.queue:
                        self.queue.remove(fr)
                        self._finalize(fr, "timed_out", now)
                elif kind == "drain":
                    self._drain_armed = False
                    self._drain(now)
            while (
                arrival_index < len(self.arrivals)
                and self.arrivals[arrival_index].arrival_cycle == now
            ):
                spec = self.arrivals[arrival_index]
                arrival_index += 1
                fr = _FleetRequest(spec=spec, priority=_request_priority(spec))
                self.all_requests.append(fr)
                self._dispatch(fr, now)
            self._drain(now)
            if self.queue and not self._drain_armed:
                self._drain_armed = True
                self._push(now + self.config.health_check_interval, _ORD_DRAIN, "drain", None)
        self._advance_all(_INF)

    # -- Result assembly -------------------------------------------------

    def result(self, trace_name: str, plan: Optional[FleetFaultPlan]) -> FleetRunResult:
        requests: List[FleetRequestResult] = []
        dispositions = {name: 0 for name in FLEET_DISPOSITIONS}
        for fr in self.all_requests:
            if fr.disposition is None:
                if fr.finish_cycle is not None:
                    fr.disposition = evaluate_disposition(
                        fr.spec,
                        fr.first_token_cycle - fr.spec.arrival_cycle,
                        fr.finish_cycle - fr.spec.arrival_cycle,
                    )
                    fr.terminal_cycle = fr.finish_cycle
                else:
                    raise RuntimeError(
                        f"request {fr.spec.request_id} ended the fleet run without a "
                        "terminal disposition -- the router lost it"
                    )
            dispositions[fr.disposition] += 1
            requests.append(
                FleetRequestResult(
                    request_id=fr.spec.request_id,
                    model_family=fr.spec.model.family,
                    arrival_cycle=fr.spec.arrival_cycle,
                    admitted_cycle=fr.admitted_cycle,
                    first_token_cycle=fr.first_token_cycle,
                    finish_cycle=fr.finish_cycle,
                    prompt_len=fr.spec.prompt_len,
                    decode_steps=fr.spec.decode_steps,
                    disposition=fr.disposition,
                    slo_class=fr.spec.slo.name if fr.spec.slo else None,
                    terminal_cycle=fr.terminal_cycle,
                    replica=fr.replica,
                    attempts=fr.attempts,
                    retries=fr.retries,
                    failovers=fr.failovers,
                    reprefill_cycles=fr.reprefill_cycles,
                )
            )
        total_cycles = 0
        for rep in self.replicas:
            total_cycles = max(total_cycles, rep.now)
        for request in requests:
            if request.terminal_cycle is not None:
                total_cycles = max(total_cycles, request.terminal_cycle)

        unreachable: Dict[int, int] = {}
        for index in range(len(self.replicas)):
            windows = [
                (event.at_cycle, event.end_cycle)
                for event in self.fault_events
                if event.replica == index and event.kind in ("crash", "partition")
            ]
            unreachable[index] = sum(
                max(0, min(end, total_cycles) - min(start, total_cycles))
                for start, end in _merge_windows(windows)
            )
        replica_time = len(self.replicas) * max(1, total_cycles)
        availability = 1.0 - sum(unreachable.values()) / replica_time

        total = len(requests)
        goodput = dispositions["met"] / total if total else 0.0

        metrics = MetricsRegistry()
        metrics.counter("fleet.requests").inc(total)
        for name in FLEET_DISPOSITIONS:
            metrics.counter(f"fleet.dispositions.{name}").inc(dispositions[name])
        metrics.counter("fleet.dispatches").inc(self.dispatch_count)
        metrics.counter("fleet.failed_dispatches").inc(self.failed_dispatches)
        metrics.counter("fleet.retries").inc(self.retry_count)
        metrics.counter("fleet.failovers").inc(self.failover_count)
        metrics.gauge("fleet.goodput").set(goodput)
        metrics.gauge("fleet.availability").set(availability)
        for rep in self.replicas:
            metrics.counter(f"fleet.replica{rep.index}.completed").inc(rep.completed)
            metrics.counter(f"fleet.replica{rep.index}.iterations").inc(rep.iterations)

        reports = [
            ReplicaReport(
                index=rep.index,
                design=rep.design_name,
                iterations=rep.iterations,
                epochs=rep.epochs,
                aborted_iterations=rep.aborted_iterations,
                serving_cycles=rep.serving_cycles,
                kernel_count=rep.kernel_count,
                energy_uj=rep.energy_uj,
                resource_busy=dict(rep.resource_busy),
                dispatched=rep.dispatched,
                completed=rep.completed,
                crashes=rep.crashes,
                slowdowns=rep.slowdowns,
                partitions=rep.partitions,
                unreachable_cycles=unreachable[rep.index],
            )
            for rep in self.replicas
        ]
        perf = {
            "iteration_memo": {
                "hits": sum(rep.memo_hits for rep in self.replicas),
                "misses": sum(rep.memo_misses for rep in self.replicas),
            },
            "timing_cache": {
                "hits": sum(rep.cache_hits for rep in self.replicas),
                "misses": sum(rep.cache_misses for rep in self.replicas),
            },
            "epochs": {
                "epochs": sum(rep.epochs for rep in self.replicas),
                "extrapolated_iterations": sum(
                    rep.extrapolated_iterations for rep in self.replicas
                ),
                "executed_iterations": sum(
                    rep.iterations - rep.extrapolated_iterations for rep in self.replicas
                ),
            },
        }
        return FleetRunResult(
            trace=trace_name,
            policy=self.policy_name,
            fleet=self.designs,
            heterogeneous=self.heterogeneous,
            config=self.config,
            fault_plan=plan,
            fault_events=self.fault_events,
            total_cycles=total_cycles,
            requests=requests,
            replicas=reports,
            dispositions=dispositions,
            goodput=goodput,
            availability=availability,
            dispatch_count=self.dispatch_count,
            failed_dispatches=self.failed_dispatches,
            retry_count=self.retry_count,
            failover_count=self.failover_count,
            metrics=metrics,
            perf=perf,
        )


def _merge_windows(windows: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent [start, end) windows into disjoint spans."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def run_fleet(
    trace: Union[str, ServingTrace],
    fleet: Union[int, str, Sequence[Union[str, DesignKind]]] = 2,
    *,
    heterogeneous: bool = False,
    dtype: DataType = DataType.FP16,
    policy: str = "round-robin",
    config: Optional[RouterConfig] = None,
    faults: Union[FleetFaultPlan, str, None] = None,
    fault_seed: int = 0,
    iteration_memo: bool = True,
    epoch_extrapolation: bool = True,
) -> FleetRunResult:
    """Serve one trace with a replica fleet behind the router.

    ``fleet`` is a replica count (homogeneous virgo), a fleet-zoo name, or
    an explicit sequence of design preset names.  ``faults`` takes a
    :class:`FleetFaultPlan` or a ``fleet --inject`` spec string (parsed with
    ``fault_seed``).  The run is deterministic: identical arguments produce
    a byte-identical :meth:`FleetRunResult.to_dict`.
    """
    resolved_trace = resolve_trace(trace) if isinstance(trace, str) else trace
    designs = resolve_fleet_designs(fleet)
    plan = FleetFaultPlan.parse(faults, fault_seed) if isinstance(faults, str) else faults
    run = _FleetRun(
        trace=resolved_trace,
        designs=designs,
        heterogeneous=heterogeneous,
        dtype=dtype,
        policy_name=policy,
        config=config or RouterConfig(),
        plan=plan,
        iteration_memo=iteration_memo,
        epoch_extrapolation=epoch_extrapolation,
    )
    with phase("fleet.run", trace=resolved_trace.name, replicas=len(designs)):
        run.run()
    return run.result(resolved_trace.name, plan)
