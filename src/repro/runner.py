"""High-level experiment runners: one call per kernel/design combination.

These wrap the kernel timing models together with the energy/power models and
return result objects carrying everything the tables and figures need:
cycles, MAC utilization, component-wise energy, active power, instruction
counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Union

from repro.config.soc import DataType, DesignConfig
from repro.config.presets import DesignKind, gemm_design_kinds, make_design
from repro.energy.breakdown import (
    EnergyBreakdown,
    core_breakdown,
    matrix_unit_breakdown,
    soc_breakdown,
)
from repro.energy.model import EnergyTable
from repro.energy.power import PowerReport, make_power_report
from repro.kernels.flash_attention import (
    FlashAttentionResult,
    FlashAttentionWorkload,
    simulate_flash_attention,
)
from repro.kernels.gemm import GemmKernelResult, GemmWorkload, simulate_gemm
from repro.obs import phase
from repro.perf import timing_cache
from repro.sim.stats import Counters


@dataclass
class GemmRunResult:
    """A GEMM kernel simulation bundled with its energy/power analysis."""

    design: DesignConfig
    kernel: GemmKernelResult
    power: PowerReport

    @property
    def design_name(self) -> str:
        return self.design.name

    @property
    def total_cycles(self) -> int:
        return self.kernel.total_cycles

    @property
    def mac_utilization(self) -> float:
        return self.kernel.mac_utilization

    @property
    def mac_utilization_percent(self) -> float:
        return self.kernel.mac_utilization_percent

    @property
    def active_power_mw(self) -> float:
        return self.power.active_power_mw

    @property
    def active_energy_uj(self) -> float:
        return self.power.total_energy_uj

    @property
    def retired_instructions(self) -> int:
        return self.kernel.retired_instructions

    @property
    def counters(self) -> Counters:
        return self.kernel.counters

    def soc_breakdown(self) -> EnergyBreakdown:
        return soc_breakdown(self.design.name, self.kernel.counters, self._table())

    def core_breakdown(self) -> EnergyBreakdown:
        return core_breakdown(self.design.name, self.kernel.counters, self._table())

    def matrix_unit_breakdown(self) -> EnergyBreakdown:
        return matrix_unit_breakdown(self.design.name, self.kernel.counters, self._table())

    def _table(self) -> EnergyTable:
        return EnergyTable.for_design(self.design.style)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready encoding shared by the CLI and result caches."""
        return {
            "kind": "gemm",
            "design": self.design_name,
            "workload": self.kernel.workload.name,
            "dtype": self.kernel.workload.dtype.value,
            "total_cycles": self.total_cycles,
            "mac_utilization_percent": self.mac_utilization_percent,
            "active_power_mw": self.active_power_mw,
            "active_energy_uj": self.active_energy_uj,
            "retired_instructions": self.retired_instructions,
        }


@dataclass
class FlashAttentionRunResult:
    """A FlashAttention-3 simulation bundled with its energy/power analysis."""

    design: DesignConfig
    kernel: FlashAttentionResult
    power: PowerReport

    @property
    def design_name(self) -> str:
        return self.design.name

    @property
    def total_cycles(self) -> int:
        return self.kernel.total_cycles

    @property
    def mac_utilization_percent(self) -> float:
        return self.kernel.mac_utilization_percent

    @property
    def active_power_mw(self) -> float:
        return self.power.active_power_mw

    @property
    def active_energy_uj(self) -> float:
        return self.power.total_energy_uj

    def soc_breakdown(self) -> EnergyBreakdown:
        table = EnergyTable.for_design(self.design.style)
        return soc_breakdown(self.design.name, self.kernel.counters, table)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready encoding shared by the CLI and result caches."""
        workload = self.kernel.workload
        return {
            "kind": "flash_attention",
            "design": self.design_name,
            "seq_len": workload.seq_len,
            "head_dim": workload.head_dim,
            "heads": workload.heads,
            "total_cycles": self.total_cycles,
            "mac_utilization_percent": self.mac_utilization_percent,
            "active_power_mw": self.active_power_mw,
            "active_energy_uj": self.active_energy_uj,
        }


def to_json(result, indent: int | None = 2) -> str:
    """Serialize any run result exposing ``to_dict()`` to a JSON string."""
    return json.dumps(result.to_dict(), indent=indent, sort_keys=True)


def _resolve(design: Union[DesignKind, DesignConfig], dtype: DataType) -> DesignConfig:
    if isinstance(design, DesignKind):
        return make_design(design, dtype)
    return design


def run_gemm(
    design: Union[DesignKind, DesignConfig],
    size: Union[int, GemmWorkload],
    dtype: DataType = DataType.FP16,
) -> GemmRunResult:
    """Simulate a GEMM and compute its power/energy on one design.

    Results are memoized in the process-wide timing cache (:mod:`repro.perf`)
    keyed by the design and workload content; repeated invocations of the
    same shape return the same (shared, treat-as-immutable) result object.
    """
    config = _resolve(design, dtype)
    workload = size if isinstance(size, GemmWorkload) else GemmWorkload.square(size, dtype)

    def compute() -> GemmRunResult:
        with phase("simulate.gemm", design=config.name, workload=workload.name):
            kernel_result = simulate_gemm(config, workload, dtype)
            table = EnergyTable.for_design(config.style)
            power = make_power_report(
                config.name, kernel_result.counters, table, kernel_result.total_cycles, config.soc
            )
            return GemmRunResult(design=config, kernel=kernel_result, power=power)

    cache = timing_cache()
    return cache.get_or_compute(cache.key("gemm", config, {"workload": workload}), compute)


def run_all_gemm_designs(
    size: int,
    dtype: DataType = DataType.FP16,
    designs: Iterable[DesignKind] | None = None,
) -> Dict[DesignKind, GemmRunResult]:
    """Run one GEMM size across all four evaluated designs (Table 3 / Figure 8)."""
    kinds = list(designs) if designs is not None else gemm_design_kinds()
    return {kind: run_gemm(kind, size, dtype) for kind in kinds}


def run_flash_attention(
    design: Union[DesignKind, DesignConfig],
    workload: FlashAttentionWorkload | None = None,
) -> FlashAttentionRunResult:
    """Simulate FlashAttention-3 and compute power/energy (Virgo or Ampere-style).

    Results are memoized in the process-wide timing cache (:mod:`repro.perf`);
    see :func:`run_gemm`.
    """
    workload = workload or FlashAttentionWorkload()
    config = make_design(design, DataType.FP32) if isinstance(design, DesignKind) else design

    def compute() -> FlashAttentionRunResult:
        with phase(
            "simulate.flash",
            design=config.name,
            seq_len=workload.seq_len,
            heads=workload.heads,
        ):
            kernel_result = simulate_flash_attention(config, workload)
            table = EnergyTable.for_design(config.style)
            power = make_power_report(
                config.name, kernel_result.counters, table, kernel_result.total_cycles, config.soc
            )
            return FlashAttentionRunResult(design=config, kernel=kernel_result, power=power)

    cache = timing_cache()
    return cache.get_or_compute(cache.key("flash", config, {"workload": workload}), compute)
