"""Steady-state compression for periodic operation schedules.

The kernel builders emit operation graphs with a deeply repetitive shape: a
warm-up prefix, a long run of identical loop iterations, and a drain.  List
scheduling such a graph is O(iterations) even though the schedule becomes
periodic after a handful of iterations.  This module provides an exact
executor for that structure: it *runs* the warm-up and enough iterations to
reach the periodic regime on the real scheduling arithmetic, then jumps over
the remaining iterations analytically.

The arithmetic mirrors :mod:`repro.sim.taskgraph` exactly -- an operation
starts at ``max(resource free, dependency ends, ready_after)`` -- so the
compressed schedule is bit-identical to full list scheduling.  Two
compression levels are used:

* :meth:`SteadyStateEngine.run_loop` compresses a run of identical bodies
  (the K loop).  It detects a repeated per-component state delta, then
  performs one symbolic pass that tracks, for every ``max`` decision, the
  margin of the winning operand and its drift per iteration.  The minimum
  margin/drift ratio bounds how many iterations the current linear regime
  provably continues; that many iterations are applied as a closed-form
  shift.  Regime changes (a lagging pipe catching up) simply resume concrete
  execution, so the result is exact for any duration mix.
* :meth:`SteadyStateEngine.run_outer` compresses the outer (tile) loop.  It
  looks for a single transition where *every* state component advanced by
  the same amount; because the scheduling recurrence is built from ``max``
  and ``+``, a uniform shift of the whole state reproduces itself exactly
  (max-plus shift invariance), so the remaining tiles can be applied in one
  step.  Bodies may nest freely -- a ``run_outer`` body may itself call
  ``run_loop`` *and* ``run_outer`` (the masked flash profile runs a
  per-head segment walk under a per-head outer loop), since both only read
  and advance the same engine state the invariance argument covers.

Busy cycles, per-kind cycles and operation counts advance by constants per
iteration, so they extrapolate exactly alongside the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["LoopStep", "SteadyStateEngine"]


@dataclass(frozen=True)
class LoopStep:
    """One constant-duration operation of a loop body.

    ``deps`` name *anchors* -- named end-times maintained by the engine
    (e.g. the previous compute in the dependency chain).  A dependency on an
    anchor that has not been set yet is skipped, which models the warm-up
    iterations where a predecessor does not exist.  ``shifts`` copy one
    anchor into another before ``sets`` assign this operation's end time,
    which expresses bounded history windows (``hist[-2]``) without lists.
    """

    resource: str
    duration: int
    kind: str = ""
    deps: Tuple[str, ...] = ()
    sets: Tuple[str, ...] = ()
    shifts: Tuple[Tuple[str, str], ...] = ()
    ready_after: int = 0


_MAKESPAN = "!makespan"


class SteadyStateEngine:
    """Executes loop bodies of :class:`LoopStep` with exact extrapolation."""

    def __init__(self) -> None:
        self.free: Dict[str, int] = {}
        self.anchors: Dict[str, int] = {}
        self.makespan = 0
        self.busy: Dict[str, int] = {}
        self.kind_cycles: Dict[str, int] = {}
        self.executed_operations = 0
        self.extrapolated_operations = 0

    def add_resource(self, name: str) -> None:
        self.free.setdefault(name, 0)
        self.busy.setdefault(name, 0)

    # ------------------------------------------------------------------ #
    # Concrete execution
    # ------------------------------------------------------------------ #

    def execute(self, step: LoopStep) -> int:
        """Run one operation; returns its end cycle.

        Start-time arithmetic matches :func:`repro.sim.taskgraph.schedule_graph`:
        ``max(resource free, dependency ends, ready_after)``.
        """
        start = self.free[step.resource]
        if step.ready_after > start:
            start = step.ready_after
        for dep in step.deps:
            value = self.anchors.get(dep)
            if value is not None and value > start:
                start = value
        end = start + step.duration
        self.free[step.resource] = end
        for dst, src in step.shifts:
            if src in self.anchors:
                self.anchors[dst] = self.anchors[src]
        for name in step.sets:
            self.anchors[name] = end
        if end > self.makespan:
            self.makespan = end
        self.busy[step.resource] += step.duration
        if step.kind:
            self.kind_cycles[step.kind] = self.kind_cycles.get(step.kind, 0) + step.duration
        self.executed_operations += 1
        return end

    # ------------------------------------------------------------------ #
    # Inner-loop compression (identical bodies, margin-bounded jumps)
    # ------------------------------------------------------------------ #

    def run_loop(self, steps: Sequence[LoopStep], count: int) -> None:
        """Execute ``steps`` as a loop body ``count`` times, compressing."""
        remaining = count
        previous_delta: Optional[Dict[str, int]] = None
        while remaining > 0:
            before = self._snapshot()
            for step in steps:
                self.execute(step)
            remaining -= 1
            if remaining == 0:
                return
            after = self._snapshot()
            if before.keys() != after.keys():
                previous_delta = None
                continue
            delta = {key: after[key] - before[key] for key in after}
            if delta == previous_delta:
                jump = min(self._safe_iterations(steps, delta), remaining)
                if jump > 0:
                    self._apply_jump(steps, delta, jump)
                    remaining -= jump
                    previous_delta = None
                    continue
            previous_delta = delta

    def _snapshot(self) -> Dict[str, int]:
        state = {f"f:{name}": value for name, value in self.free.items()}
        state.update({f"a:{name}": value for name, value in self.anchors.items()})
        state[_MAKESPAN] = self.makespan
        return state

    def _safe_iterations(self, steps: Sequence[LoopStep], delta: Dict[str, int]) -> int:
        """How many iterations the observed per-component delta provably holds.

        Runs the body once symbolically on (value, rate) pairs, where a
        component's rate is its observed delta.  Every ``max`` site records
        the winner; a losing operand whose rate exceeds the winner's will
        overtake it after ``margin // drift`` further iterations, bounding
        the jump.  Inconsistent end state (values or rates not matching the
        delta) means the regime is not linear yet and no jump is taken.
        """
        values: Dict[str, Tuple[int, int]] = {}
        for name, value in self.free.items():
            values[f"f:{name}"] = (value, delta[f"f:{name}"])
        for name, value in self.anchors.items():
            values[f"a:{name}"] = (value, delta[f"a:{name}"])
        values[_MAKESPAN] = (self.makespan, delta[_MAKESPAN])

        horizon: Optional[int] = None

        def resolve_max(candidates: List[Tuple[int, int]]) -> Tuple[int, int]:
            nonlocal horizon
            winner = max(candidates)  # by value, rate breaks exact ties
            winner_value, winner_rate = winner
            for value, rate in candidates:
                if rate > winner_rate:
                    site = (winner_value - value) // (rate - winner_rate)
                    horizon = site if horizon is None else min(horizon, site)
            return winner

        for step in steps:
            candidates = [values[f"f:{step.resource}"]]
            if step.ready_after:
                candidates.append((step.ready_after, 0))
            for dep in step.deps:
                dep_value = values.get(f"a:{dep}")
                if dep_value is not None:
                    candidates.append(dep_value)
            start_value, start_rate = resolve_max(candidates)
            end = (start_value + step.duration, start_rate)
            values[f"f:{step.resource}"] = end
            for dst, src in step.shifts:
                if f"a:{src}" in values:
                    values[f"a:{dst}"] = values[f"a:{src}"]
            for name in step.sets:
                values[f"a:{name}"] = end
            values[_MAKESPAN] = resolve_max([values[_MAKESPAN], end])

        # The symbolic pass replays the next iteration; its end state must
        # land exactly one delta ahead or the regime is not yet linear.
        current = self._snapshot()
        for key, (value, rate) in values.items():
            if value != current[key] + delta[key] or rate != delta[key]:
                return 0
        if horizon is None:
            return 1 << 62
        # Margins stay non-negative through iteration offset ``horizon``, so
        # the body executes unchanged for ``horizon + 1`` more iterations.
        return horizon + 1

    def _apply_jump(self, steps: Sequence[LoopStep], delta: Dict[str, int], jump: int) -> None:
        for name in self.free:
            self.free[name] += delta[f"f:{name}"] * jump
        for name in self.anchors:
            self.anchors[name] += delta[f"a:{name}"] * jump
        self.makespan += delta[_MAKESPAN] * jump
        for step in steps:
            self.busy[step.resource] += step.duration * jump
            if step.kind:
                self.kind_cycles[step.kind] += step.duration * jump
        self.extrapolated_operations += len(steps) * jump

    # ------------------------------------------------------------------ #
    # Outer-loop compression (uniform-shift invariance)
    # ------------------------------------------------------------------ #

    def run_outer(self, body: Callable[[], None], count: int) -> None:
        """Run ``body`` (which may itself call :meth:`run_loop`) ``count`` times.

        When one body execution advances every state component by the same
        amount, max-plus shift invariance guarantees every further execution
        repeats that advance exactly, so the remaining iterations collapse
        into a single shift of the state and accumulators.
        """
        remaining = count
        while remaining > 0:
            before = self._snapshot()
            busy_before = dict(self.busy)
            kinds_before = dict(self.kind_cycles)
            ops_before = self.executed_operations + self.extrapolated_operations
            body()
            remaining -= 1
            if remaining == 0:
                return
            after = self._snapshot()
            if before.keys() != after.keys():
                continue
            shifts = {after[key] - before[key] for key in after}
            if len(shifts) != 1:
                continue
            shift = shifts.pop()
            for name in self.free:
                self.free[name] += shift * remaining
            for name in self.anchors:
                self.anchors[name] += shift * remaining
            self.makespan += shift * remaining
            for name in self.busy:
                self.busy[name] += (self.busy[name] - busy_before.get(name, 0)) * remaining
            for name in self.kind_cycles:
                self.kind_cycles[name] += (
                    self.kind_cycles[name] - kinds_before.get(name, 0)
                ) * remaining
            ops_delta = self.executed_operations + self.extrapolated_operations - ops_before
            self.extrapolated_operations += ops_delta * remaining
            return
