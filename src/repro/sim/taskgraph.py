"""Operation-graph scheduling: the top level of the timing model.

A kernel mapping (GEMM or FlashAttention on one of the four designs) is
expressed as a directed acyclic graph of :class:`Operation` objects.  Each
operation names the resource it occupies (the DMA engine, a matrix unit, the
SIMT core group, the store path) and carries a duration computed by the
component timing models.  Scheduling is list scheduling in topological order:
an operation starts at ``max(deps finished, resource free)``.

This faithfully captures the pipelining behaviours the paper relies on --
double buffering, producer/consumer overlap between the DMA, the matrix unit
and SIMT post-processing, and serialization when a design lacks asynchrony
(the Volta-style baseline issues its data movement and matrix instructions
from the same warps, so both compete for the same issue resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.resources import Resource, ResourcePool


@dataclass
class Operation:
    """A node of the kernel operation graph.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"dma.load.k3"`` or ``"matrix.compute.k3"``.
    resource:
        Name of the resource the operation occupies exclusively while it runs.
    duration:
        Occupancy in cycles, already including any contention-independent
        latency computed by the component models.
    deps:
        Names of operations that must finish before this one may start.
    ready_after:
        Optional absolute earliest-start cycle (e.g. kernel-launch latency).
    kind:
        Free-form category used by reporting ("dma", "matrix", "simt", ...).
    """

    name: str
    resource: str
    duration: int
    deps: Sequence[str] = field(default_factory=tuple)
    ready_after: int = 0
    kind: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"operation {self.name!r} has negative duration")


@dataclass
class ScheduledOperation:
    """An operation with its assigned start/end cycles."""

    operation: Operation
    start: int
    end: int

    @property
    def name(self) -> str:
        return self.operation.name


@dataclass
class ScheduleResult:
    """The outcome of scheduling an :class:`OperationGraph`.

    The derived views (:meth:`finish_times`, :meth:`critical_kind_cycles`)
    are computed once on first access and cached: consumers such as the
    serving scheduler probe finish times for every operation of every
    iteration, and rebuilding the aggregates per probe was measurable on the
    serving hot path.  The cached dicts are shared -- treat them as
    read-only.
    """

    total_cycles: int
    scheduled: Dict[str, ScheduledOperation]
    resource_busy: Dict[str, int]
    _finish_times: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )
    _kind_cycles: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    def finish_times(self) -> Dict[str, int]:
        """Operation name -> end cycle, built once per schedule."""
        if self._finish_times is None:
            self._finish_times = {
                name: item.end for name, item in self.scheduled.items()
            }
        return self._finish_times

    def finish_time(self, name: str) -> int:
        return self.finish_times()[name]

    def critical_kind_cycles(self) -> Dict[str, int]:
        """Total busy cycles per operation kind (for reporting), cached."""
        if self._kind_cycles is None:
            totals: Dict[str, int] = {}
            for item in self.scheduled.values():
                kind = item.operation.kind or "other"
                totals[kind] = totals.get(kind, 0) + (item.end - item.start)
            self._kind_cycles = totals
        return self._kind_cycles

    def spans(self) -> List[Tuple[str, str, str, int, int]]:
        """``(name, resource, kind, start, end)`` per operation, in placement
        order -- the flat view trace recorders and timeline reports consume
        (see :meth:`repro.obs.TraceRecorder.record_schedule`)."""
        return [
            (
                item.operation.name,
                item.operation.resource,
                item.operation.kind or "op",
                item.start,
                item.end,
            )
            for item in self.scheduled.values()
        ]


class OperationGraph:
    """A DAG of operations plus the resource pool they contend for."""

    def __init__(self, resources: Optional[ResourcePool] = None) -> None:
        self.resources = resources or ResourcePool()
        self._operations: Dict[str, Operation] = {}
        self._order: List[str] = []

    def add_resource(self, resource: Resource) -> Resource:
        return self.resources.add(resource)

    def add(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise ValueError(f"duplicate operation {operation.name!r}")
        if operation.resource not in self.resources:
            raise ValueError(
                f"operation {operation.name!r} uses unknown resource {operation.resource!r}"
            )
        for dep in operation.deps:
            if dep not in self._operations:
                raise ValueError(
                    f"operation {operation.name!r} depends on unknown operation {dep!r}; "
                    "add dependencies before dependents"
                )
        self._operations[operation.name] = operation
        self._order.append(operation.name)
        return operation

    def add_operation(
        self,
        name: str,
        resource: str,
        duration: int,
        deps: Iterable[str] = (),
        ready_after: int = 0,
        kind: str = "",
    ) -> Operation:
        """Convenience wrapper around :meth:`add`."""
        return self.add(
            Operation(
                name=name,
                resource=resource,
                duration=int(duration),
                deps=tuple(deps),
                ready_after=ready_after,
                kind=kind,
            )
        )

    def __len__(self) -> int:
        return len(self._operations)

    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def operations(self) -> List[Operation]:
        return [self._operations[name] for name in self._order]

    def schedule(self) -> ScheduleResult:
        return schedule_graph(self)


def schedule_graph(graph: OperationGraph) -> ScheduleResult:
    """List-schedule ``graph`` on its resource pool.

    Operations are visited in insertion order, which the kernel builders keep
    topological (dependencies are added before dependents, enforced by
    :meth:`OperationGraph.add`).  Each operation starts as early as its
    dependencies and its resource allow.
    """
    scheduled: Dict[str, ScheduledOperation] = {}
    for operation in graph.operations():
        ready = operation.ready_after
        for dep in operation.deps:
            ready = max(ready, scheduled[dep].end)
        resource = graph.resources[operation.resource]
        start, end = resource.reserve(ready, operation.duration, label=operation.name)
        scheduled[operation.name] = ScheduledOperation(operation=operation, start=start, end=end)

    total = max((item.end for item in scheduled.values()), default=0)
    busy = {
        name: resource.busy_cycles for name, resource in graph.resources.resources.items()
    }
    return ScheduleResult(total_cycles=total, scheduled=scheduled, resource_busy=busy)
