"""A small discrete-event simulation engine.

Components schedule callbacks at future cycle times; the :class:`Simulator`
drains the queue in time order.  The engine is deliberately minimal: kernel
models in this package mostly use the coarser operation-graph scheduler in
:mod:`repro.sim.taskgraph`, but fine-grained component models (the shared
memory interconnect, the DMA engine, the synchronizer) use the event engine
for cycle-level interactions in their unit tests and detailed modes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence number)."""

    time: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time.

    Cancelled events stay in the heap until dequeued, but a live-event count
    is maintained incrementally so ``len``/truthiness are O(1) -- the
    simulator's main loop checks them every iteration, and rescanning the
    heap there made :meth:`Simulator.run` quadratic in the event count.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._live = 0

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        event = Event(time=time, sequence=next(self._sequence), callback=callback, _queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                # Detach so a late cancel() on the dequeued event cannot
                # decrement the live count a second time.
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Drains an :class:`EventQueue` in cycle order.

    The simulator exposes ``now`` (the current cycle), :meth:`schedule` for
    relative delays, :meth:`at` for absolute times, and :meth:`run` which
    executes until the queue is empty or an optional cycle limit is reached.
    """

    def __init__(self, max_cycles: int = 1_000_000_000) -> None:
        self.now = 0
        self.max_cycles = max_cycles
        self._queue = EventQueue()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(self.now + delay, callback)

    def at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at cycle {time}, already at {self.now}")
        return self._queue.push(time, callback)

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or the cycle limit hits.

        Returns the final simulation time.
        """
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return self.now
            if next_time > self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.max_cycles}; likely a livelock"
                )
            event = self._queue.pop()
            if event is None:
                break
            self.now = event.time
            self._events_processed += 1
            event.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        self._events_processed += 1
        event.callback()
        return True
