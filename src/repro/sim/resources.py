"""Contended hardware resources used by the operation-graph scheduler.

Two flavours are provided:

* :class:`Resource` -- an exclusive unit (a DMA engine, a matrix unit, the
  SIMT issue slots of a core group).  Operations occupy it back-to-back; the
  resource remembers when it becomes free and accumulates busy cycles so that
  utilization can be reported afterwards.
* :class:`ThroughputResource` -- a bandwidth-style resource (shared-memory
  bytes/cycle, DRAM bytes/cycle).  Demands are expressed in "work units"
  (typically bytes); the resource converts them to cycles of occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Reservation:
    """One granted interval on a resource."""

    start: int
    end: int
    label: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start


class Resource:
    """An exclusive, serially-occupied hardware unit.

    ``record_reservations`` keeps the per-operation :class:`Reservation`
    list for inspection (timelines, tests); it is opt-in because large
    schedules otherwise allocate one record per operation that nobody reads.
    """

    def __init__(self, name: str, count: int = 1, record_reservations: bool = False) -> None:
        if count < 1:
            raise ValueError("resource must have at least one instance")
        self.name = name
        self.count = count
        self.record_reservations = record_reservations
        # Earliest-free time per instance.
        self._free_at: List[int] = [0] * count
        self.busy_cycles = 0
        self.reservations: List[Reservation] = []

    def earliest_start(self, ready: int) -> int:
        """Earliest cycle an operation ready at ``ready`` could begin."""
        return max(ready, min(self._free_at))

    def reserve(self, ready: int, duration: int, label: str = "") -> Tuple[int, int]:
        """Grant ``duration`` cycles on the least-loaded instance.

        Returns the (start, end) cycle pair and records the busy time.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        index = min(range(self.count), key=lambda i: self._free_at[i])
        start = max(ready, self._free_at[index])
        end = start + duration
        self._free_at[index] = end
        self.busy_cycles += duration
        if self.record_reservations:
            self.reservations.append(Reservation(start=start, end=end, label=label))
        return start, end

    def utilization(self, total_cycles: int) -> float:
        """Fraction of total capacity-cycles spent busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / float(total_cycles * self.count))

    def reset(self) -> None:
        self._free_at = [0] * self.count
        self.busy_cycles = 0
        self.reservations.clear()

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, count={self.count}, busy={self.busy_cycles})"


class ThroughputResource(Resource):
    """A bandwidth-limited resource; demand is expressed in work units.

    ``units_per_cycle`` converts demand into cycles of occupancy, rounded up.
    """

    def __init__(
        self,
        name: str,
        units_per_cycle: float,
        count: int = 1,
        record_reservations: bool = False,
    ) -> None:
        super().__init__(name, count=count, record_reservations=record_reservations)
        if units_per_cycle <= 0:
            raise ValueError("units_per_cycle must be positive")
        self.units_per_cycle = units_per_cycle
        self.units_served = 0.0

    def cycles_for(self, units: float) -> int:
        """Cycles needed to move ``units`` of work at peak bandwidth."""
        if units < 0:
            raise ValueError("work units must be non-negative")
        if units == 0:
            return 0
        return max(1, int(-(-units // self.units_per_cycle)))

    def reserve_units(self, ready: int, units: float, label: str = "") -> Tuple[int, int]:
        """Reserve enough cycles to serve ``units`` of demand."""
        self.units_served += units
        return self.reserve(ready, self.cycles_for(units), label=label)

    def reset(self) -> None:
        super().reset()
        self.units_served = 0.0


@dataclass
class ResourcePool:
    """A named collection of resources shared by an operation graph."""

    resources: Dict[str, Resource] = field(default_factory=dict)

    def add(self, resource: Resource) -> Resource:
        if resource.name in self.resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self.resources[resource.name] = resource
        return resource

    def __getitem__(self, name: str) -> Resource:
        return self.resources[name]

    def __contains__(self, name: str) -> bool:
        return name in self.resources

    def reset(self) -> None:
        for resource in self.resources.values():
            resource.reset()

    def utilizations(self, total_cycles: int) -> Dict[str, float]:
        return {
            name: resource.utilization(total_cycles)
            for name, resource in self.resources.items()
        }
