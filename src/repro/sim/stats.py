"""Hierarchical event counters used to drive the energy and power models.

Counters are keyed by dotted names, e.g. ``core.issue.instructions`` or
``smem.bank.read_words``.  The energy model consumes these counts; the
analysis layer aggregates them by prefix to build the breakdown figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Counters:
    """A bag of named event counters.

    The class behaves like a ``Mapping[str, float]`` with convenience
    arithmetic: :meth:`add` accumulates, :meth:`merge` folds another bag in,
    and :meth:`scaled` returns a scaled copy (useful when a per-iteration
    count is replayed for N iterations).
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: Dict[str, float] = defaultdict(float)
        if initial:
            for key, value in initial.items():
                self._counts[key] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` events under ``name``."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount} for {name}")
        self._counts[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counts.get(name, default)

    def merge(self, other: "Counters") -> None:
        """Fold all counts from ``other`` into this bag."""
        for key, value in other.items():
            self._counts[key] += value

    def scaled(self, factor: float) -> "Counters":
        """Return a new bag with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Counters({key: value * factor for key, value in self._counts.items()})

    def total(self, prefix: str = "") -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(value for key, value in self._counts.items() if key.startswith(prefix))

    def group_by_prefix(self, depth: int = 1) -> Dict[str, float]:
        """Aggregate counters by the first ``depth`` dotted name components."""
        grouped: Dict[str, float] = defaultdict(float)
        for key, value in self._counts.items():
            parts = key.split(".")
            grouped[".".join(parts[:depth])] += value
        return dict(grouped)

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._counts.items()

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def copy(self) -> "Counters":
        return Counters(self._counts)

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __setitem__(self, name: str, value: float) -> None:
        self._counts[name] = float(value)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __add__(self, other: "Counters") -> "Counters":
        result = self.copy()
        result.merge(other)
        return result

    def __repr__(self) -> str:
        top = sorted(self._counts.items(), key=lambda kv: -kv[1])[:6]
        preview = ", ".join(f"{k}={v:g}" for k, v in top)
        return f"Counters({len(self._counts)} keys: {preview})"
