"""Simulation substrate: event queue, contended resources, operation graphs, stats."""

from repro.sim.stats import Counters
from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.resources import Resource, ThroughputResource
from repro.sim.steady_state import LoopStep, SteadyStateEngine
from repro.sim.taskgraph import Operation, OperationGraph, ScheduleResult, schedule_graph

__all__ = [
    "Counters",
    "Event",
    "EventQueue",
    "Simulator",
    "Resource",
    "ThroughputResource",
    "LoopStep",
    "SteadyStateEngine",
    "Operation",
    "OperationGraph",
    "ScheduleResult",
    "schedule_graph",
]
