"""Core-coupled matrix unit models (the Volta/Ampere/Hopper-style baselines)."""

from repro.tensorcore.fragments import MatrixFragment, load_fragment, store_fragment
from repro.tensorcore.dot_product_unit import DotProductUnit
from repro.tensorcore.volta import VoltaTensorCore, HmmaSequence
from repro.tensorcore.hopper import HopperTensorCore, WgmmaOperation

__all__ = [
    "MatrixFragment",
    "load_fragment",
    "store_fragment",
    "DotProductUnit",
    "VoltaTensorCore",
    "HmmaSequence",
    "HopperTensorCore",
    "WgmmaOperation",
]
