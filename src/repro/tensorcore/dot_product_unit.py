"""SIMD-parallel dot-product units: the compute fabric of the tensor cores.

Following the Volta model of Raihan et al. (the microarchitecture the paper's
tightly-coupled baseline implements), a tensor core is a group of dot-product
units (DPUs), each computing a 4-element FP16 multiply + tree-reduce + FP32
accumulate per cycle.  The functional model computes exact results in FP32
after an FP16 quantization of the operands, mirroring mixed-precision tensor
core arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.soc import DataType
from repro.sim.stats import Counters


@dataclass
class DotProductUnit:
    """A cluster of SIMD dot-product lanes with a given MAC throughput."""

    macs_per_cycle: int
    dtype: DataType = DataType.FP16
    dot_width: int = 4

    def __post_init__(self) -> None:
        if self.macs_per_cycle <= 0:
            raise ValueError("macs_per_cycle must be positive")
        if self.dot_width <= 0:
            raise ValueError("dot_width must be positive")
        self.total_macs = 0

    def multiply_accumulate(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        counters: Counters | None = None,
    ) -> np.ndarray:
        """Compute ``a @ b + c`` with operand quantization to ``dtype``.

        ``a`` is (m, k), ``b`` is (k, n), ``c`` is (m, n) FP32 accumulator.
        """
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions mismatch: {a.shape} x {b.shape}")
        if c.shape != (a.shape[0], b.shape[1]):
            raise ValueError(f"accumulator shape {c.shape} does not match output")
        operand_dtype = np.float16 if self.dtype is DataType.FP16 else np.float32
        a_q = a.astype(operand_dtype).astype(np.float32)
        b_q = b.astype(operand_dtype).astype(np.float32)
        result = a_q @ b_q + c.astype(np.float32)

        macs = a.shape[0] * b.shape[1] * a.shape[1]
        self.total_macs += macs
        if counters is not None:
            counters.add("matrix_unit.pe.macs", macs)
        return result

    def cycles_for_macs(self, macs: int) -> int:
        """Cycles the DPU array needs for ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError("mac count must be non-negative")
        return max(0, -(-macs // self.macs_per_cycle))

    def cycles_for_tile(self, m: int, n: int, k: int) -> int:
        return self.cycles_for_macs(m * n * k)
