"""Matrix tile fragments staged between backing memory and the matrix units.

A *fragment* is the slice of a matrix tile that a matrix unit consumes in a
single operation: for tightly-coupled tensor cores it lives in the register
file, for the operand-decoupled design it is staged in operand buffers fed
from shared memory, and for Virgo it flows through the systolic array's edge
registers.  Fragments are numpy-backed so the functional kernels can verify
numerics end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.soc import DataType

_DTYPE_MAP = {DataType.FP16: np.float16, DataType.FP32: np.float32}


@dataclass
class MatrixFragment:
    """A 2-D fragment of matrix data plus its storage metadata."""

    data: np.ndarray
    dtype: DataType = DataType.FP16
    location: str = "register_file"

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise ValueError("fragments must be two-dimensional")
        self.data = np.asarray(self.data, dtype=_DTYPE_MAP[self.dtype])

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        return self.data.shape[1]

    @property
    def bytes(self) -> int:
        return self.data.size * self.dtype.bytes

    @property
    def register_words(self) -> int:
        """32-bit register words the fragment occupies when held in the RF."""
        return -(-self.bytes // 4)

    def as_float32(self) -> np.ndarray:
        return self.data.astype(np.float32)


def load_fragment(
    matrix: np.ndarray,
    row: int,
    col: int,
    rows: int,
    cols: int,
    dtype: DataType = DataType.FP16,
    location: str = "register_file",
) -> MatrixFragment:
    """Extract a ``rows`` x ``cols`` fragment of ``matrix`` at (row, col)."""
    if row < 0 or col < 0 or row + rows > matrix.shape[0] or col + cols > matrix.shape[1]:
        raise IndexError(
            f"fragment [{row}:{row + rows}, {col}:{col + cols}] outside "
            f"matrix of shape {matrix.shape}"
        )
    return MatrixFragment(
        data=matrix[row : row + rows, col : col + cols].copy(),
        dtype=dtype,
        location=location,
    )


def store_fragment(matrix: np.ndarray, fragment: MatrixFragment, row: int, col: int) -> None:
    """Write ``fragment`` back into ``matrix`` at (row, col)."""
    rows, cols = fragment.rows, fragment.cols
    if row + rows > matrix.shape[0] or col + cols > matrix.shape[1]:
        raise IndexError("fragment store exceeds matrix bounds")
    matrix[row : row + rows, col : col + cols] = fragment.data.astype(matrix.dtype)
