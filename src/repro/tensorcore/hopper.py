"""Hopper-style operand-decoupled tensor core (Section 5.1.3, Figure 6).

The unit keeps the decoupled access/execute structure of the paper's
implementation: an *access frontend* (state machine + address generator)
issues shared-memory read requests for the operand fragments, and an
*execute backend* (decoupling FIFOs + operand buffers + dot-product units)
performs the MACs as operands arrive.  Because fragment addresses are static,
the frontend runs ahead and hides the shared-memory latency.

Accumulator tiles still live in the core register file and are read/written
around every tile operation -- the residual register pressure the paper
calls out as Hopper's remaining limitation.

The warp-facing interface is asynchronous: a ``wgmma_init`` instruction kicks
off the unit, a later ``wgmma_wait`` synchronizes with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config.soc import MatrixUnitConfig, SharedMemoryConfig
from repro.isa.instructions import Instruction, OpClass
from repro.sim.stats import Counters
from repro.tensorcore.dot_product_unit import DotProductUnit
from repro.tensorcore.fragments import MatrixFragment


@dataclass
class WgmmaOperation:
    """Timing summary of one asynchronous wgmma-style tile operation."""

    compute_cycles: int
    smem_read_cycles: int
    exposed_latency: int

    @property
    def total_cycles(self) -> int:
        """Cycles from initiation to result availability.

        The access frontend overlaps operand fetch with compute, so only the
        non-overlapped portion of the shared-memory time is exposed.
        """
        return self.compute_cycles + self.exposed_latency


class HopperTensorCore:
    """Per-core operand-decoupled matrix unit with an async interface."""

    def __init__(
        self,
        config: MatrixUnitConfig,
        shared_memory: SharedMemoryConfig,
        smem_latency: int = 6,
    ) -> None:
        self.config = config
        self.shared_memory = shared_memory
        self.smem_latency = smem_latency
        self.dpu = DotProductUnit(macs_per_cycle=config.macs_per_cycle, dtype=config.dtype)
        self.tile_ops = 0

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #

    def wgmma(
        self,
        a: MatrixFragment,
        b: MatrixFragment,
        c: np.ndarray,
        counters: Counters | None = None,
    ) -> np.ndarray:
        """One asynchronous tile operation ``c += a @ b``.

        ``a`` and ``b`` come from shared memory; ``c`` is the register-file
        resident FP32 accumulator fragment.
        """
        if (a.rows, a.cols) != (self.config.tile_m, self.config.tile_k):
            raise ValueError(
                f"A fragment must be {(self.config.tile_m, self.config.tile_k)}, "
                f"got {(a.rows, a.cols)}"
            )
        if (b.rows, b.cols) != (self.config.tile_k, self.config.tile_n):
            raise ValueError(
                f"B fragment must be {(self.config.tile_k, self.config.tile_n)}, "
                f"got {(b.rows, b.cols)}"
            )
        self.tile_ops += 1
        if counters is not None:
            self.record_tile_events(counters)
        return self.dpu.multiply_accumulate(a.as_float32(), b.as_float32(), c, counters)

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def tile_operation(self) -> WgmmaOperation:
        """Timing of one tile operation with operand streaming overlapped."""
        compute = self.dpu.cycles_for_tile(
            self.config.tile_m, self.config.tile_n, self.config.tile_k
        )
        operand_bytes = self.config.operand_bytes_per_tile
        # The unit streams operands from one shared-memory bank (wide port).
        bytes_per_cycle = self.shared_memory.bank_width_bytes
        smem_cycles = max(1, -(-operand_bytes // bytes_per_cycle))
        # The frontend runs ahead: only the initial fill latency is exposed,
        # plus any shortfall if the shared memory cannot keep up with compute.
        exposed = self.smem_latency + max(0, smem_cycles - compute)
        return WgmmaOperation(
            compute_cycles=compute,
            smem_read_cycles=smem_cycles,
            exposed_latency=exposed,
        )

    def tile_busy_cycles(self) -> int:
        return self.tile_operation().total_cycles

    def instruction_sequence(self) -> List[Instruction]:
        """Warp instructions per tile operation: initiate + wait.

        Accumulator fragments are read from and written back to the register
        file around the operation; the reg_reads/reg_writes of the wait
        instruction capture that read-modify-write traffic.
        """
        accum_words_per_lane = max(
            1, self.config.accumulator_bytes_per_tile // 4 // 32
        )
        return [
            Instruction(op_class=OpClass.WGMMA_INIT, reg_reads=2, reg_writes=0),
            Instruction(
                op_class=OpClass.WGMMA_WAIT,
                reg_reads=accum_words_per_lane,
                reg_writes=accum_words_per_lane,
            ),
        ]

    def record_tile_events(self, counters: Counters) -> None:
        operand_words = -(-self.config.operand_bytes_per_tile // 4)
        accum_words = -(-self.config.accumulator_bytes_per_tile // 4)
        # Operands stream from shared memory (not the register file).
        counters.add("smem.matrix.read_words", operand_words)
        counters.add("matrix_unit.operand_buffer_words", operand_words)
        # Accumulators remain register-file resident (read-modify-write).
        counters.add("core.issue.rf_read_words", accum_words)
        counters.add("core.writeback.rf_write_words", accum_words)
        counters.add("matrix_unit.result_buffer_words", accum_words)
        counters.add("matrix_unit.control_events", 2)

    def gemm_tile_count(self, m: int, n: int, k: int) -> int:
        tiles_m = -(-m // self.config.tile_m)
        tiles_n = -(-n // self.config.tile_n)
        tiles_k = -(-k // self.config.tile_k)
        return tiles_m * tiles_n * tiles_k
