"""Volta-style tightly-coupled tensor core (Section 5.1.1).

The unit is a functional + timing model of a per-core tensor core whose
operands and accumulators both live in the SIMT register file.  A tile
operation of (m, n, k) = (8, 8, 16) is driven by a sequence of HMMA *set* and
*step* instructions issued by the warp; each step occupies the dot-product
units for two cycles.  The model reports, per tile operation:

* the HMMA instruction sequence (so the kernel can place it in the warp's
  instruction stream and the issue simulator can account for it),
* register-file traffic (operand reads, accumulator read-modify-write),
* MAC counts and busy cycles for the energy/utilization models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config.soc import MatrixUnitConfig
from repro.isa.instructions import Instruction, OpClass
from repro.sim.stats import Counters
from repro.tensorcore.dot_product_unit import DotProductUnit
from repro.tensorcore.fragments import MatrixFragment


@dataclass
class HmmaSequence:
    """The instruction sequence a warp issues for one tile operation."""

    sets: int
    steps: int
    cycles_per_step: int

    @property
    def instructions(self) -> int:
        return self.sets + self.steps

    @property
    def matrix_unit_busy_cycles(self) -> int:
        return self.steps * self.cycles_per_step

    def as_instructions(self, operand_reg_reads: int = 4, accum_reg_writes: int = 2) -> List[Instruction]:
        """Expand into :class:`Instruction` objects for the issue simulator."""
        stream: List[Instruction] = []
        for _ in range(self.sets):
            stream.append(Instruction(op_class=OpClass.HMMA_SET, reg_reads=1, reg_writes=0))
        for _ in range(self.steps):
            stream.append(
                Instruction(
                    op_class=OpClass.HMMA_STEP,
                    reg_reads=operand_reg_reads,
                    reg_writes=accum_reg_writes,
                )
            )
        return stream


class VoltaTensorCore:
    """Per-core tightly-coupled matrix unit fed from the register file."""

    def __init__(self, config: MatrixUnitConfig) -> None:
        self.config = config
        self.dpu = DotProductUnit(macs_per_cycle=config.macs_per_cycle, dtype=config.dtype)
        self.tile_ops = 0

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #

    def mma(
        self,
        a: MatrixFragment,
        b: MatrixFragment,
        c: np.ndarray,
        counters: Counters | None = None,
    ) -> np.ndarray:
        """One tile operation: ``c += a @ b`` with fragments from the RF."""
        expected = (self.config.tile_m, self.config.tile_k)
        if (a.rows, a.cols) != expected:
            raise ValueError(f"A fragment must be {expected}, got {(a.rows, a.cols)}")
        if (b.rows, b.cols) != (self.config.tile_k, self.config.tile_n):
            raise ValueError(
                f"B fragment must be {(self.config.tile_k, self.config.tile_n)}, "
                f"got {(b.rows, b.cols)}"
            )
        self.tile_ops += 1
        if counters is not None:
            self.record_tile_events(counters)
        return self.dpu.multiply_accumulate(a.as_float32(), b.as_float32(), c, counters)

    # ------------------------------------------------------------------ #
    # Timing and event accounting
    # ------------------------------------------------------------------ #

    def hmma_sequence(self) -> HmmaSequence:
        """HMMA set/step sequence for one (m, n, k) tile operation."""
        return HmmaSequence(
            sets=4,
            steps=self.config.hmma_steps_per_tile,
            cycles_per_step=self.config.cycles_per_step,
        )

    def tile_busy_cycles(self) -> int:
        """Cycles the matrix unit is occupied by one tile operation."""
        return self.hmma_sequence().matrix_unit_busy_cycles

    def record_tile_events(self, counters: Counters) -> None:
        """Register-file and operand-buffer traffic for one tile operation.

        Operands (A, B) are read from the register file, and the FP32
        accumulator tile is both read and written there -- this is the
        traffic that the operand-decoupled and disaggregated designs remove.
        """
        operand_words = -(-self.config.operand_bytes_per_tile // 4)
        accum_words = -(-self.config.accumulator_bytes_per_tile // 4)
        counters.add("core.issue.rf_read_words", operand_words + accum_words)
        counters.add("core.writeback.rf_write_words", accum_words)
        counters.add("matrix_unit.operand_buffer_words", operand_words)
        counters.add("matrix_unit.result_buffer_words", accum_words)
        counters.add("matrix_unit.control_events", self.hmma_sequence().instructions)

    def gemm_tile_count(self, m: int, n: int, k: int) -> int:
        """Tile operations needed for an (m, n, k) GEMM on this unit."""
        tiles_m = -(-m // self.config.tile_m)
        tiles_n = -(-n // self.config.tile_n)
        tiles_k = -(-k // self.config.tile_k)
        return tiles_m * tiles_n * tiles_k
