"""Multiple heterogeneous matrix units in one cluster (Section 6.3).

Virgo's disaggregation and parameterized memory system allow several,
differently-sized matrix units to share a cluster.  The paper's showcase runs
a 256x256x256 GEMM on a full-size (16x16) unit concurrently with a
128x128x128 GEMM on a half-size (8x8) unit, and reports that the combined MAC
utilization when run in parallel (59.5%) is essentially the same as when the
two GEMMs run back to back (59.7%), with only a 4.3% increase in power per
FLOP -- i.e. the shared memory system absorbs the concurrent streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.config.soc import DataType, DesignConfig, IntegrationStyle, MatrixUnitConfig
from repro.config.presets import virgo
from repro.core.gemmini import GemminiMatrixUnit
from repro.energy.model import EnergyTable
from repro.kernels.gemm.base import GemmWorkload
from repro.kernels.gemm.virgo_gemm import VirgoGemmKernel
from repro.sim.stats import Counters


def small_unit_config(base: MatrixUnitConfig, scale: int = 2) -> MatrixUnitConfig:
    """A unit with a mesh ``scale``x smaller in each dimension than ``base``."""
    rows = max(1, base.systolic_rows // scale)
    cols = max(1, base.systolic_cols // scale)
    return replace(
        base,
        systolic_rows=rows,
        systolic_cols=cols,
        macs_per_cycle=rows * cols,
        tile_m=max(rows, base.tile_m // scale),
        tile_n=max(cols, base.tile_n // scale),
        tile_k=max(rows, base.tile_k // scale),
        accumulator_bytes=max(8 * 1024, base.accumulator_bytes // scale),
    )


def design_with_unit(base: DesignConfig, unit: MatrixUnitConfig) -> DesignConfig:
    cluster = replace(base.soc.cluster, matrix_unit=unit, matrix_units=1)
    return replace(base, soc=replace(base.soc, cluster=cluster))


@dataclass
class HeterogeneousResult:
    """Parallel-vs-serial comparison of two GEMMs on two matrix units."""

    large_workload: GemmWorkload
    small_workload: GemmWorkload
    large_cycles: int
    small_cycles: int
    serial_cycles: int
    parallel_cycles: int
    total_macs_per_cycle: int
    small_macs_per_cycle: int
    serial_energy_pj: float
    parallel_energy_pj: float

    @property
    def total_macs(self) -> int:
        return self.large_workload.macs + self.small_workload.macs

    @property
    def serial_utilization(self) -> float:
        """Utilization when the two GEMMs run back to back.

        Each GEMM only exercises its own unit while it runs, so the serial
        utilization is the MAC-cycle-weighted utilization of the two runs
        (the paper's 59.7%), not the fraction of both units' combined
        capacity over the summed runtime.
        """
        large_macs_per_cycle = self.total_macs_per_cycle - self.small_macs_per_cycle
        capacity_cycles = (
            self.large_cycles * large_macs_per_cycle
            + self.small_cycles * self.small_macs_per_cycle
        )
        return self.total_macs / capacity_cycles if capacity_cycles else 0.0

    @property
    def parallel_utilization(self) -> float:
        ideal = self.total_macs / float(self.total_macs_per_cycle)
        return ideal / self.parallel_cycles if self.parallel_cycles else 0.0

    @property
    def parallel_speedup(self) -> float:
        return self.serial_cycles / self.parallel_cycles if self.parallel_cycles else 0.0

    def power_per_flop_increase(self, clock_mhz: float = 400.0) -> float:
        """Relative increase of (active power / FLOP rate) of parallel vs serial.

        Energy per FLOP is runtime-independent, so the ratio reduces to the
        parallel-to-serial energy ratio; the interconnect contention events
        added in the parallel case are what make it exceed 1.
        """
        if self.serial_energy_pj == 0:
            return 0.0
        return self.parallel_energy_pj / self.serial_energy_pj - 1.0


def simulate_heterogeneous(
    large_size: int = 256,
    small_size: int = 128,
    base_design: DesignConfig | None = None,
) -> HeterogeneousResult:
    """Run the Section 6.3 experiment: two GEMMs on two differently-sized units."""
    base = base_design or virgo(DataType.FP16)
    if base.style is not IntegrationStyle.DISAGGREGATED:
        raise ValueError("heterogeneous matrix units require the disaggregated design")

    large_unit = base.matrix_unit
    small_unit = small_unit_config(large_unit)

    large_design = design_with_unit(base, large_unit)
    small_design = design_with_unit(base, small_unit)

    large_workload = GemmWorkload.square(large_size)
    small_workload = GemmWorkload.square(small_size)

    large_result = VirgoGemmKernel(large_design).simulate(large_workload)
    small_result = VirgoGemmKernel(small_design).simulate(small_workload)

    serial_cycles = large_result.total_cycles + small_result.total_cycles

    # Parallel execution: the two units proceed independently except for
    # contention on the shared-memory banks and the single DMA engine.  The
    # combined operand-streaming demand is compared against the shared-memory
    # peak bandwidth; any excess stretches the longer of the two kernels.
    smem = base.cluster.shared_memory
    large_demand = _streaming_demand(large_design, large_result.total_cycles, large_workload)
    small_demand = _streaming_demand(small_design, small_result.total_cycles, small_workload)
    overlap_cycles = min(large_result.total_cycles, small_result.total_cycles)
    combined = large_demand + small_demand
    contention = max(1.0, combined / smem.peak_bytes_per_cycle)
    parallel_cycles = int(
        max(large_result.total_cycles, small_result.total_cycles)
        + overlap_cycles * (contention - 1.0)
    )

    serial_energy, parallel_energy = _energies(
        base, large_result.counters, small_result.counters, contention
    )

    return HeterogeneousResult(
        large_workload=large_workload,
        small_workload=small_workload,
        large_cycles=large_result.total_cycles,
        small_cycles=small_result.total_cycles,
        serial_cycles=serial_cycles,
        parallel_cycles=parallel_cycles,
        total_macs_per_cycle=large_unit.macs_per_cycle + small_unit.macs_per_cycle,
        small_macs_per_cycle=small_unit.macs_per_cycle,
        serial_energy_pj=serial_energy,
        parallel_energy_pj=parallel_energy,
    )


def _streaming_demand(design: DesignConfig, cycles: int, workload: GemmWorkload) -> float:
    """Average shared-memory bytes/cycle the kernel's matrix unit consumes."""
    unit = design.matrix_unit
    matrix_unit = GemminiMatrixUnit(unit, design.cluster.shared_memory)
    tiles_m = -(-workload.m // unit.tile_m)
    tiles_n = -(-workload.n // unit.tile_n)
    tiles_k = -(-workload.k // unit.tile_k)
    total_bytes = tiles_m * tiles_n * tiles_k * matrix_unit.smem_read_bytes(
        min(unit.tile_m, workload.m), min(unit.tile_n, workload.n), min(unit.tile_k, workload.k)
    )
    return total_bytes / float(max(1, cycles))


def _energies(
    design: DesignConfig,
    large_counters: Counters,
    small_counters: Counters,
    contention: float,
) -> tuple:
    """Serial and parallel energy; contention adds interconnect retry traffic."""
    table = EnergyTable.for_design(design.style)
    combined = large_counters + small_counters
    serial_energy = table.energy_picojoules(combined)

    parallel_counters = combined.copy()
    # Bank conflicts in the parallel case re-issue a fraction of the matrix
    # units' shared-memory reads and add arbitration activity in the
    # interconnect, which is what the paper's 4.3% power/FLOP increase covers.
    retry_fraction = min(0.25, max(0.0, contention - 1.0) + 0.03)
    extra_words = combined.get("smem.matrix.read_words") * retry_fraction
    parallel_counters.add("smem.matrix.read_words", extra_words)
    parallel_counters.add("dma.descriptors", combined.get("dma.descriptors") * 0.05)
    parallel_energy = table.energy_picojoules(parallel_counters)
    return serial_energy, parallel_energy


def heterogeneous_summary(result: HeterogeneousResult) -> Dict[str, float]:
    """Headline numbers matching the Section 6.3 narrative."""
    return {
        "parallel_utilization_percent": 100.0 * result.parallel_utilization,
        "serial_utilization_percent": 100.0 * result.serial_utilization,
        "power_per_flop_increase_percent": 100.0 * result.power_per_flop_increase(),
        "parallel_speedup": result.parallel_speedup,
    }
