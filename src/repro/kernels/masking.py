"""Exact integer mask accounting for attention score work.

Every masked-attention shape the workload layer expresses -- full causal,
causal over prior KV context (chunked prefill / decode), sliding-window
causal, and ragged (varlen) packed batches -- reduces to one question the
timing model must answer exactly: *how many score elements survive the
mask*, and *which (Q tile, KV tile) pairs contain at least one of them*.

This module answers both in closed form, in pure integers:

* :func:`masked_elements` counts surviving score elements of one
  (``seq`` x ``kv``) attention map.  The causal mask with prior context is
  a trapezoid (``seq * kv - seq*(seq-1)/2`` elements); a sliding window
  caps every row at ``window``; both are sums of a clamped arithmetic
  series, so no float ever appears and nothing is approximated.
* :func:`tile_trips` computes, per Q tile, how many KV tiles the fused
  flash kernel actually visits: above-diagonal tiles are skipped entirely,
  tiles left of the window's trailing edge likewise, and a *visited* tile
  costs full tile work (the kernel computes the whole tile and masks
  inside it -- tile-granular skipping, exactly what production flash
  kernels implement).
* :func:`trip_segments` run-length-encodes the per-Q-tile trip counts into
  ``(q_tiles, kv_trips)`` segments -- the profile
  :class:`repro.kernels.gemm.schedule_loops.FlashLoopSpec` consumes, and
  the unit of the steady-state compression contract: schedule cost is
  O(#segments), not O(#tiles).

Conventions shared by every helper: queries are rows ``0..seq-1`` of the
*current* chunk, keys are columns ``0..kv-1`` of the full context, and the
causal diagonal sits at offset ``kv - seq`` (the current chunk is the tail
of the context, so the last query sees everything).  ``window = 0`` means
unwindowed; ``window = w`` lets query ``i`` attend to the ``w`` most recent
allowed keys.  The brute-force numpy oracle these formulas are verified
against lives in ``tests/test_masked_attention.py``, deliberately outside
this module so the two implementations stay independent.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "allowed_keys",
    "masked_elements",
    "masked_elements_varlen",
    "tile_trips",
    "tile_trips_varlen",
    "trip_segments",
]


def _validate(seq: int, kv: int, window: int) -> None:
    if seq <= 0:
        raise ValueError(f"seq must be positive, got {seq}")
    if kv < seq:
        raise ValueError(
            f"causal attention needs kv >= seq (the chunk is the tail of the "
            f"context), got kv={kv} < seq={seq}"
        )
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")


def allowed_keys(row: int, seq: int, kv: int, window: int = 0) -> Tuple[int, int]:
    """Half-open key range ``[lo, hi)`` query ``row`` may attend to.

    The causal rule: query ``row`` of the chunk sits at absolute position
    ``(kv - seq) + row`` and sees keys ``0..position`` inclusive; a sliding
    window keeps only the last ``window`` of those.
    """
    _validate(seq, kv, window)
    if not 0 <= row < seq:
        raise ValueError(f"row {row} outside 0..{seq - 1}")
    hi = (kv - seq) + row + 1
    lo = max(0, hi - window) if window else 0
    return lo, hi


def masked_elements(seq: int, kv: int, window: int = 0) -> int:
    """Surviving score elements of one causal (``seq`` x ``kv``) map.

    Row ``i`` keeps ``min((kv - seq) + i + 1, window or kv)`` elements; the
    sum is an arithmetic series up to the row where the window cap engages,
    plus a constant tail.  Exact integer arithmetic throughout.
    """
    _validate(seq, kv, window)
    offset = kv - seq
    cap = min(window, kv) if window else kv
    # Rows 0..uncapped-1 keep offset+i+1 elements; the rest keep ``cap``.
    uncapped = min(max(cap - offset - 1, 0), seq)
    series = uncapped * (offset + 1) + uncapped * (uncapped - 1) // 2
    return series + (seq - uncapped) * cap


def masked_elements_varlen(seq_lens: Sequence[int], window: int = 0) -> int:
    """Surviving elements of a packed ragged batch (block-diagonal causal).

    Each sequence attends only to itself (the ``cu_seqlens`` layout of real
    varlen flash kernels), so the count is the per-sequence sum.
    """
    if not seq_lens:
        raise ValueError("varlen needs at least one sequence length")
    return sum(masked_elements(length, length, window) for length in seq_lens)


def tile_trips(
    seq: int, kv: int, block_q: int, block_kv: int, window: int = 0
) -> List[int]:
    """Visited-KV-tile count per Q tile of a causal fused attention kernel.

    A KV tile is visited iff any of its columns is allowed for any query row
    of the Q tile; visited tiles run at full tile cost (masking happens
    inside the tile), skipped tiles cost nothing.  For a contiguous per-row
    range the visited tiles of a Q tile are contiguous too: from the tile
    holding the window's trailing edge of the *first* row through the tile
    holding the diagonal of the *last* row.
    """
    _validate(seq, kv, window)
    if block_q <= 0 or block_kv <= 0:
        raise ValueError("tile sizes must be positive")
    trips: List[int] = []
    for q_start in range(0, seq, block_q):
        q_end = min(seq, q_start + block_q)
        first_lo, _ = allowed_keys(q_start, seq, kv, window)
        _, last_hi = allowed_keys(q_end - 1, seq, kv, window)
        first_tile = first_lo // block_kv
        last_tile = (last_hi - 1) // block_kv
        trips.append(last_tile - first_tile + 1)
    return trips


def tile_trips_varlen(
    seq_lens: Sequence[int], block_q: int, block_kv: int, window: int = 0
) -> List[int]:
    """Per-Q-tile trip counts of a packed ragged batch.

    Sequences are tiled independently (each restarts its Q and KV tiling,
    as the kernel would via the cumulative-length table), so the profile is
    the concatenation of the per-sequence profiles.
    """
    if not seq_lens:
        raise ValueError("varlen needs at least one sequence length")
    trips: List[int] = []
    for length in seq_lens:
        trips.extend(tile_trips(length, length, block_q, block_kv, window))
    return trips


def trip_segments(trips: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Run-length-encode trip counts into ``(q_tiles, kv_trips)`` segments.

    The segment count is what the steady-state compression pays for: a full
    causal profile of any length encodes to at most ``block_kv // gcd`` + 2
    distinct runs in practice, and a uniform (unmasked) profile to one.
    """
    segments: List[Tuple[int, int]] = []
    for trip in trips:
        if trip <= 0:
            raise ValueError(f"trip counts must be positive, got {trip}")
        if segments and segments[-1][1] == trip:
            segments[-1] = (segments[-1][0] + 1, trip)
        else:
            segments.append((1, trip))
    return tuple(segments)
