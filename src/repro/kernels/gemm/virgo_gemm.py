"""GEMM kernel model for Virgo's disaggregated cluster-level matrix unit.

One MMIO command makes the Gemmini-based unit compute an entire 128x64x128
operation tile straight out of shared memory, accumulating into its private
accumulator SRAM.  The SIMT cores only program the unit and the DMA and
synchronize (fence + cluster barrier), so the kernel's instruction count
collapses to a fraction of the core-coupled baselines'.

The software pipeline of Section 4.4.2 is reproduced explicitly: while the
matrix unit computes K-step ``k``, the DMA fetches the tiles for ``k + 1``
into the other half of the double buffer; at the end of each output tile the
accumulator is drained to global memory by the DMA, overlapped with the next
output tile's first loads.
"""

from __future__ import annotations

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.kernels.gemm.base import GemmKernelResult, GemmWorkload, ideal_mac_cycles
from repro.kernels.gemm.instruction_streams import virgo_iteration_streams
from repro.kernels.gemm.schedule_loops import GemmLoopSpec, execute_gemm_loop
from repro.kernels.gemm.tiling import ThreadBlockTiling, tiling_for_design
from repro.core.gemmini import GemminiMatrixUnit
from repro.memory.dma import DmaEngine
from repro.memory.dram import DramChannel
from repro.sim.stats import Counters
from repro.simt.core import VortexCore


class VirgoGemmKernel:
    """Tiled GEMM on the disaggregated Virgo design."""

    #: Per-iteration synchronization cost: the fence's final poll round-trip
    #: plus the cluster-wide barrier release.
    SYNC_OVERHEAD_CYCLES = 30

    def __init__(self, design: DesignConfig) -> None:
        if design.style is not IntegrationStyle.DISAGGREGATED:
            raise ValueError("this kernel models the disaggregated (Virgo) design")
        self.design = design
        self.matrix_unit = GemminiMatrixUnit(
            design.matrix_unit, design.cluster.shared_memory
        )
        self.core = VortexCore(design.cluster.core)
        self.dram = DramChannel(design.soc.dram)
        self.dma = DmaEngine(design.cluster.dma, self.dram)

    # ------------------------------------------------------------------ #
    # Steady-state iteration
    # ------------------------------------------------------------------ #

    def _iteration(self, tiling: ThreadBlockTiling):
        streams = virgo_iteration_streams(self.design, tiling)
        # Only core 0's warp 0 leads; the other cores run the worker program.
        leader_programs = streams.programs_for_core()
        worker_programs = [streams.compute_warp] * streams.warps_per_core

        leader_execution = self.core.execute(leader_programs)
        worker_execution = self.core.execute(worker_programs)
        issue_cycles = max(leader_execution.cycles, worker_execution.cycles)

        operation = self.matrix_unit.operation_timing(
            tiling.block_m, tiling.block_n, tiling.block_k
        )
        matrix_cycles = operation.total_cycles + self.SYNC_OVERHEAD_CYCLES

        dma_cycles = self.dma.transfer_cycles(tiling.input_bytes_per_iteration)
        dram_cycles = self.dram.transfer_cycles(
            tiling.input_bytes_per_iteration, include_latency=False
        )

        counters = self._iteration_counters(
            leader_execution.counters, worker_execution.counters, tiling
        )
        instructions = (
            len(streams.compute_warp) * streams.warps_per_core * self.design.cluster.cores
            + len(streams.leader_extra)
        )
        return (
            streams,
            max(matrix_cycles, issue_cycles),
            max(dma_cycles, dram_cycles),
            counters,
            instructions,
        )

    def _iteration_counters(
        self, leader_counters: Counters, worker_counters: Counters, tiling: ThreadBlockTiling
    ) -> Counters:
        counters = Counters()
        cores = self.design.cluster.cores
        counters.merge(leader_counters)
        counters.merge(worker_counters.scaled(cores - 1))

        # Matrix unit events for the whole operation tile.
        m, n, k = tiling.block_m, tiling.block_n, tiling.block_k
        counters.add("matrix_unit.pe.macs", m * n * k)
        operand_words = self.matrix_unit.smem_read_bytes(m, n, k) // 4
        counters.add("smem.matrix.read_words", operand_words)
        counters.add("matrix_unit.smem_interface_words", operand_words)
        counters.add("matrix_unit.control_events", 1)
        counters.add("accum.write_words", m * n)
        counters.add("accum.read_words", m * n)  # read-modify-write across K
        counters.add("mmio.stores", 6)
        counters.add("mmio.commands", 1)
        counters.add("mmio.loads", 3)
        counters.add("sync.barrier_requests", cores)
        counters.add("sync.barriers_released", 1)

        # DMA data delivery for the next iteration's tiles.
        nbytes = tiling.input_bytes_per_iteration
        counters.add("dma.bytes", nbytes)
        counters.add("dma.descriptors", 2)
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        counters.add("smem.dma.write_words", nbytes // 4)
        return counters

    def _epilogue(self, tiling: ThreadBlockTiling):
        """Drain the accumulator tile to global memory with the DMA."""
        nbytes = tiling.output_tile_bytes
        cycles = self.dma.transfer_cycles(nbytes)
        counters = Counters()
        counters.add("dma.bytes", nbytes)
        counters.add("dma.descriptors", 1)
        counters.add("accum.read_words", nbytes // 4)
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        counters.add("mmio.stores", 4)
        instructions = 8
        counters.add("core.issue.instructions", instructions)
        return cycles, counters, instructions

    # ------------------------------------------------------------------ #
    # Whole-kernel simulation
    # ------------------------------------------------------------------ #

    def simulate(self, workload: GemmWorkload, full_expansion: bool = False) -> GemmKernelResult:
        tiling = tiling_for_design(self.design, workload)
        streams, compute_cycles, dma_cycles, iter_counters, iter_instructions = self._iteration(
            tiling
        )
        epilogue_cycles, epilogue_counters, epilogue_instructions = self._epilogue(tiling)

        # Each cluster works on its share of the (M, N) output tiles; the
        # slowest cluster's schedule determines the kernel runtime.  The load
        # of each tile's first K step waits for the previous compute (buffer
        # reuse); the epilogue drains on the DMA without blocking the next
        # tile's compute (it writes a different accumulator half).
        spec = GemmLoopSpec(
            cluster_tiles=tiling.output_tiles_per_cluster(self.design.soc.clusters),
            k_iterations=tiling.k_iterations,
            compute_resource="matrix",
            compute_cycles=compute_cycles,
            load_cycles=dma_cycles,
            epilogue_cycles=epilogue_cycles,
            epilogue_resource="dma",
        )
        schedule = execute_gemm_loop(spec, full_expansion=full_expansion)

        iterations = tiling.total_iterations
        counters = iter_counters.scaled(iterations)
        counters.merge(epilogue_counters.scaled(tiling.output_tiles))
        instructions = iter_instructions * iterations + epilogue_instructions * tiling.output_tiles

        return GemmKernelResult(
            design=self.design,
            workload=workload,
            total_cycles=schedule.total_cycles,
            ideal_mac_cycles=ideal_mac_cycles(self.design, workload),
            counters=counters,
            retired_instructions=instructions,
            iteration_cycles=compute_cycles,
            phase_cycles=schedule.kind_cycles,
            resource_busy=schedule.resource_busy,
            schedule_stats=schedule.stats(),
        )
