"""Common GEMM workload and result types shared by all design-specific kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.soc import DataType, DesignConfig
from repro.sim.stats import Counters


@dataclass(frozen=True)
class GemmWorkload:
    """A C = A x B GEMM problem (C is MxN, A is MxK, B is KxN)."""

    m: int
    n: int
    k: int
    dtype: DataType = DataType.FP16

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError("GEMM dimensions must be positive")

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @property
    def input_bytes(self) -> int:
        return self.dtype.bytes * (self.m * self.k + self.k * self.n)

    @property
    def output_bytes(self) -> int:
        return 4 * self.m * self.n

    @property
    def name(self) -> str:
        return f"{self.m}x{self.n}x{self.k}"

    @classmethod
    def square(cls, size: int, dtype: DataType = DataType.FP16) -> "GemmWorkload":
        return cls(m=size, n=size, k=size, dtype=dtype)


#: GEMM sizes evaluated in the paper (Table 3, Figure 8).
GEMM_SIZES = (256, 512, 1024)


@dataclass
class GemmKernelResult:
    """Outcome of simulating one GEMM kernel on one design."""

    design: DesignConfig
    workload: GemmWorkload
    total_cycles: int
    ideal_mac_cycles: float
    counters: Counters
    retired_instructions: int = 0
    iteration_cycles: int = 0
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    #: Busy cycles per scheduler resource ("matrix"/"compute", "dma").
    resource_busy: Dict[str, int] = field(default_factory=dict)
    #: Operation-graph size bookkeeping from the schedule executor:
    #: ``executed_operations`` (materialized), ``extrapolated_operations``
    #: (covered by steady-state compression) and their ``operation_count``.
    schedule_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def mac_utilization(self) -> float:
        """MAC hardware utilization: ideal MAC cycles over achieved cycles."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.ideal_mac_cycles / self.total_cycles)

    @property
    def mac_utilization_percent(self) -> float:
        return 100.0 * self.mac_utilization

    @property
    def achieved_tflops(self) -> float:
        seconds = self.total_cycles / (self.design.soc.clock_mhz * 1e6)
        return self.workload.flops / seconds / 1e12 if seconds else 0.0

    def summary(self) -> str:
        return (
            f"{self.design.name:<14s} GEMM {self.workload.name:>14s}: "
            f"{self.total_cycles:>10d} cycles, "
            f"{self.mac_utilization_percent:5.1f}% MAC utilization, "
            f"{self.retired_instructions} instructions"
        )


def ideal_mac_cycles(design: DesignConfig, workload: GemmWorkload) -> float:
    """Cycles the SoC's MAC arrays would need at 100% utilization.

    Accounts for every cluster in the SoC, so multi-cluster configurations
    report utilization against their full aggregate throughput.
    """
    macs_per_cycle = design.soc.total_macs_per_cycle
    return workload.macs / float(macs_per_cycle)
