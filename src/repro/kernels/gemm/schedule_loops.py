"""Shared tile-loop scheduling for the per-design GEMM kernel builders.

All three GEMM timing models walk the same loop nest -- output tiles, a K
loop inside each tile, an epilogue per tile -- and differ only in which
resources the operations occupy, their durations, and how double buffering
wires the load dependencies.  :class:`GemmLoopSpec` captures those knobs;
:func:`execute_gemm_loop` turns a spec into the scheduled totals either by

* **steady-state compression** (the default): the loop nest runs on
  :class:`repro.sim.steady_state.SteadyStateEngine`, which executes warm-up
  plus one steady-state period concretely and extrapolates the rest, making
  the cost independent of ``cluster_tiles x k_iterations``; or
* **full expansion** (``full_expansion=True``): the historical behaviour --
  every operation is materialized on an
  :class:`repro.sim.taskgraph.OperationGraph` and list-scheduled.

Both paths use the identical start-time arithmetic, so their results are
bit-identical; the equivalence is enforced by ``tests/test_schedule_compression.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.resources import Resource
from repro.sim.steady_state import LoopStep, SteadyStateEngine
from repro.sim.taskgraph import OperationGraph

__all__ = ["GemmLoopSpec", "GemmLoopSchedule", "execute_gemm_loop"]

#: Anchor names used by the compressed executor.
_CHAIN = "chain"  # the serializing dependency chain (previous compute / store)
_LOAD = "load"  # the most recent load's end time
_HIST1 = "hist1"  # most recent compute end (compute history, not stores)
_HIST2 = "hist2"  # second-most-recent compute end


@dataclass(frozen=True)
class GemmLoopSpec:
    """Loop structure and per-operation costs of one tiled GEMM schedule."""

    cluster_tiles: int
    k_iterations: int
    compute_resource: str
    compute_cycles: int
    epilogue_cycles: int
    epilogue_resource: str
    load_cycles: Optional[int] = None  # None = no explicit load operations
    load_resource: str = "dma"
    #: Loads of iteration k > 0 wait for the compute two iterations back
    #: (register/shared-memory double buffering on the core-coupled designs).
    double_buffer_deps: bool = False
    #: The epilogue joins the serializing chain (the next tile's first load
    #: and compute wait for it), as on the designs that store from the
    #: register file.
    epilogue_advances_chain: bool = False
    first_compute_ready: int = 0


@dataclass
class GemmLoopSchedule:
    """Scheduled totals of one GEMM loop nest."""

    total_cycles: int
    kind_cycles: Dict[str, int]
    resource_busy: Dict[str, int]
    executed_operations: int
    extrapolated_operations: int = 0

    @property
    def operation_count(self) -> int:
        return self.executed_operations + self.extrapolated_operations

    def stats(self) -> Dict[str, int]:
        return {
            "executed_operations": self.executed_operations,
            "extrapolated_operations": self.extrapolated_operations,
            "operation_count": self.operation_count,
        }


def execute_gemm_loop(spec: GemmLoopSpec, full_expansion: bool = False) -> GemmLoopSchedule:
    """Schedule the loop nest described by ``spec``."""
    if full_expansion:
        return _execute_expanded(spec)
    return _execute_compressed(spec)


# --------------------------------------------------------------------------- #
# Full expansion: one graph node per operation (the historical path)
# --------------------------------------------------------------------------- #


def _execute_expanded(spec: GemmLoopSpec) -> GemmLoopSchedule:
    graph = OperationGraph()
    graph.add_resource(Resource(spec.compute_resource))
    graph.add_resource(Resource(spec.load_resource))

    previous: Optional[str] = None
    history: List[str] = []
    for tile in range(spec.cluster_tiles):
        for k in range(spec.k_iterations):
            deps: List[str] = []
            if spec.load_cycles is not None:
                load_name = f"load.t{tile}.k{k}"
                if k == 0 and previous is not None:
                    load_deps = [previous]
                elif spec.double_buffer_deps and len(history) >= 2:
                    load_deps = [history[-2]]
                else:
                    load_deps = []
                graph.add_operation(
                    load_name, spec.load_resource, spec.load_cycles, deps=load_deps, kind="dma"
                )
                deps.append(load_name)
            name = f"compute.t{tile}.k{k}"
            if previous:
                deps.append(previous)
            ready = spec.first_compute_ready if (tile == 0 and k == 0) else 0
            graph.add_operation(
                name, spec.compute_resource, spec.compute_cycles, deps=deps,
                ready_after=ready, kind="compute",
            )
            previous = name
            history.append(name)
        store_name = f"store.t{tile}"
        graph.add_operation(
            store_name, spec.epilogue_resource, spec.epilogue_cycles,
            deps=[previous], kind="epilogue",
        )
        if spec.epilogue_advances_chain:
            previous = store_name

    schedule = graph.schedule()
    return GemmLoopSchedule(
        total_cycles=schedule.total_cycles,
        kind_cycles=schedule.critical_kind_cycles(),
        resource_busy=dict(schedule.resource_busy),
        executed_operations=len(graph),
    )


# --------------------------------------------------------------------------- #
# Steady-state compression
# --------------------------------------------------------------------------- #


def _load_step(spec: GemmLoopSpec, first_k: bool) -> LoopStep:
    if first_k:
        deps = (_CHAIN,)
    elif spec.double_buffer_deps:
        deps = (_HIST2,)
    else:
        deps = ()
    return LoopStep(
        resource=spec.load_resource,
        duration=spec.load_cycles or 0,
        kind="dma",
        deps=deps,
        sets=(_LOAD,),
    )


def _compute_step(spec: GemmLoopSpec, ready_after: int = 0) -> LoopStep:
    deps = ((_LOAD,) if spec.load_cycles is not None else ()) + (_CHAIN,)
    if spec.double_buffer_deps:
        return LoopStep(
            resource=spec.compute_resource,
            duration=spec.compute_cycles,
            kind="compute",
            deps=deps,
            shifts=((_HIST2, _HIST1),),
            sets=(_HIST1, _CHAIN),
            ready_after=ready_after,
        )
    return LoopStep(
        resource=spec.compute_resource,
        duration=spec.compute_cycles,
        kind="compute",
        deps=deps,
        sets=(_CHAIN,),
        ready_after=ready_after,
    )


def _execute_compressed(spec: GemmLoopSpec) -> GemmLoopSchedule:
    has_loads = spec.load_cycles is not None
    engine = SteadyStateEngine()
    engine.add_resource(spec.compute_resource)
    # Only register resources the loop actually occupies: an always-idle
    # component would sit at a zero delta and defeat the outer loop's
    # uniform-shift detection.
    if has_loads or spec.epilogue_resource == spec.load_resource:
        engine.add_resource(spec.load_resource)
    steady_body = ([_load_step(spec, first_k=False)] if has_loads else []) + [_compute_step(spec)]
    epilogue = LoopStep(
        resource=spec.epilogue_resource,
        duration=spec.epilogue_cycles,
        kind="epilogue",
        deps=(_CHAIN,),
        sets=(_CHAIN,) if spec.epilogue_advances_chain else (),
    )

    def tile_body(first_compute_ready: int = 0) -> None:
        if has_loads:
            engine.execute(_load_step(spec, first_k=True))
        engine.execute(_compute_step(spec, ready_after=first_compute_ready))
        if spec.k_iterations > 1:
            engine.run_loop(steady_body, spec.k_iterations - 1)
        engine.execute(epilogue)

    # The first tile carries the warm-up irregularities (missing chain and
    # history anchors, the prologue ready time); later tiles are identical
    # and compress through the outer-loop shift detection.
    tile_body(first_compute_ready=spec.first_compute_ready)
    if spec.cluster_tiles > 1:
        engine.run_outer(tile_body, spec.cluster_tiles - 1)

    resource_busy = dict(engine.busy)
    resource_busy.setdefault(spec.load_resource, 0)  # mirror the expanded graph
    return GemmLoopSchedule(
        total_cycles=engine.makespan,
        kind_cycles=dict(engine.kind_cycles),
        resource_busy=resource_busy,
        executed_operations=engine.executed_operations,
        extrapolated_operations=engine.extrapolated_operations,
    )
