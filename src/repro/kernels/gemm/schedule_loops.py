"""Shared tile-loop scheduling for the kernel builders (GEMM and flash).

The GEMM timing models walk the same loop nest -- output tiles, a K loop
inside each tile, an epilogue per tile -- and differ only in which resources
the operations occupy, their durations, and how double buffering wires the
load dependencies.  :class:`GemmLoopSpec` captures those knobs.  The fused
flash-attention kernels walk a different but equally periodic structure --
a software-pipelined (Q tile, KV tile) loop whose concurrent pipes (matrix
unit, SIMT softmax, DMA) re-synchronize at a fence + barrier every
iteration -- captured by :class:`FlashLoopSpec`.  Masked kernels (causal,
sliding window, varlen) do not visit every KV tile: their per-Q-tile trip
counts arrive run-length-encoded as :class:`FlashSegment` runs
(``trip_profile``), and both executors walk exactly that plan, so skipped
tiles cost nothing while the schedule stays O(#segments).

:func:`execute_gemm_loop` / :func:`execute_flash_loop` turn a spec into the
scheduled totals either by

* **steady-state compression** (the default): the loop nest runs on
  :class:`repro.sim.steady_state.SteadyStateEngine`, which executes warm-up
  plus one steady-state period concretely and extrapolates the rest, making
  the cost independent of the iteration counts (``cluster_tiles x
  k_iterations`` for GEMM, ``heads x q_tiles x kv_tiles`` for flash); or
* **full expansion** (``full_expansion=True``): the historical behaviour --
  every operation is materialized on an
  :class:`repro.sim.taskgraph.OperationGraph` and list-scheduled.

Both paths use the identical start-time arithmetic, so their results are
bit-identical; the equivalence is enforced by
``tests/test_schedule_compression.py`` (GEMM) and
``tests/test_flash_compression.py`` (flash attention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.resources import Resource
from repro.sim.steady_state import LoopStep, SteadyStateEngine
from repro.sim.taskgraph import OperationGraph

__all__ = [
    "GemmLoopSpec",
    "GemmLoopSchedule",
    "execute_gemm_loop",
    "FlashPipe",
    "FlashSegment",
    "FlashLoopSpec",
    "execute_flash_loop",
]

#: Anchor names used by the compressed executor.
_CHAIN = "chain"  # the serializing dependency chain (previous compute / store)
_LOAD = "load"  # the most recent load's end time
_HIST1 = "hist1"  # most recent compute end (compute history, not stores)
_HIST2 = "hist2"  # second-most-recent compute end


@dataclass(frozen=True)
class GemmLoopSpec:
    """Loop structure and per-operation costs of one tiled GEMM schedule."""

    cluster_tiles: int
    k_iterations: int
    compute_resource: str
    compute_cycles: int
    epilogue_cycles: int
    epilogue_resource: str
    load_cycles: Optional[int] = None  # None = no explicit load operations
    load_resource: str = "dma"
    #: Loads of iteration k > 0 wait for the compute two iterations back
    #: (register/shared-memory double buffering on the core-coupled designs).
    double_buffer_deps: bool = False
    #: The epilogue joins the serializing chain (the next tile's first load
    #: and compute wait for it), as on the designs that store from the
    #: register file.
    epilogue_advances_chain: bool = False
    first_compute_ready: int = 0


@dataclass
class GemmLoopSchedule:
    """Scheduled totals of one GEMM loop nest."""

    total_cycles: int
    kind_cycles: Dict[str, int]
    resource_busy: Dict[str, int]
    executed_operations: int
    extrapolated_operations: int = 0

    @property
    def operation_count(self) -> int:
        return self.executed_operations + self.extrapolated_operations

    def stats(self) -> Dict[str, int]:
        return {
            "executed_operations": self.executed_operations,
            "extrapolated_operations": self.extrapolated_operations,
            "operation_count": self.operation_count,
        }


def execute_gemm_loop(spec: GemmLoopSpec, full_expansion: bool = False) -> GemmLoopSchedule:
    """Schedule the loop nest described by ``spec``."""
    if full_expansion:
        return _execute_expanded(spec)
    return _execute_compressed(spec)


# --------------------------------------------------------------------------- #
# Full expansion: one graph node per operation (the historical path)
# --------------------------------------------------------------------------- #


def _execute_expanded(spec: GemmLoopSpec) -> GemmLoopSchedule:
    graph = OperationGraph()
    graph.add_resource(Resource(spec.compute_resource))
    graph.add_resource(Resource(spec.load_resource))

    previous: Optional[str] = None
    history: List[str] = []
    for tile in range(spec.cluster_tiles):
        for k in range(spec.k_iterations):
            deps: List[str] = []
            if spec.load_cycles is not None:
                load_name = f"load.t{tile}.k{k}"
                if k == 0 and previous is not None:
                    load_deps = [previous]
                elif spec.double_buffer_deps and len(history) >= 2:
                    load_deps = [history[-2]]
                else:
                    load_deps = []
                graph.add_operation(
                    load_name, spec.load_resource, spec.load_cycles, deps=load_deps, kind="dma"
                )
                deps.append(load_name)
            name = f"compute.t{tile}.k{k}"
            if previous:
                deps.append(previous)
            ready = spec.first_compute_ready if (tile == 0 and k == 0) else 0
            graph.add_operation(
                name, spec.compute_resource, spec.compute_cycles, deps=deps,
                ready_after=ready, kind="compute",
            )
            previous = name
            history.append(name)
        store_name = f"store.t{tile}"
        graph.add_operation(
            store_name, spec.epilogue_resource, spec.epilogue_cycles,
            deps=[previous], kind="epilogue",
        )
        if spec.epilogue_advances_chain:
            previous = store_name

    schedule = graph.schedule()
    return GemmLoopSchedule(
        total_cycles=schedule.total_cycles,
        kind_cycles=schedule.critical_kind_cycles(),
        resource_busy=dict(schedule.resource_busy),
        executed_operations=len(graph),
    )


# --------------------------------------------------------------------------- #
# Steady-state compression
# --------------------------------------------------------------------------- #


def _load_step(spec: GemmLoopSpec, first_k: bool) -> LoopStep:
    if first_k:
        deps = (_CHAIN,)
    elif spec.double_buffer_deps:
        deps = (_HIST2,)
    else:
        deps = ()
    return LoopStep(
        resource=spec.load_resource,
        duration=spec.load_cycles or 0,
        kind="dma",
        deps=deps,
        sets=(_LOAD,),
    )


def _compute_step(spec: GemmLoopSpec, ready_after: int = 0) -> LoopStep:
    deps = ((_LOAD,) if spec.load_cycles is not None else ()) + (_CHAIN,)
    if spec.double_buffer_deps:
        return LoopStep(
            resource=spec.compute_resource,
            duration=spec.compute_cycles,
            kind="compute",
            deps=deps,
            shifts=((_HIST2, _HIST1),),
            sets=(_HIST1, _CHAIN),
            ready_after=ready_after,
        )
    return LoopStep(
        resource=spec.compute_resource,
        duration=spec.compute_cycles,
        kind="compute",
        deps=deps,
        sets=(_CHAIN,),
        ready_after=ready_after,
    )


def _execute_compressed(spec: GemmLoopSpec) -> GemmLoopSchedule:
    has_loads = spec.load_cycles is not None
    engine = SteadyStateEngine()
    engine.add_resource(spec.compute_resource)
    # Only register resources the loop actually occupies: an always-idle
    # component would sit at a zero delta and defeat the outer loop's
    # uniform-shift detection.
    if has_loads or spec.epilogue_resource == spec.load_resource:
        engine.add_resource(spec.load_resource)
    steady_body = ([_load_step(spec, first_k=False)] if has_loads else []) + [_compute_step(spec)]
    epilogue = LoopStep(
        resource=spec.epilogue_resource,
        duration=spec.epilogue_cycles,
        kind="epilogue",
        deps=(_CHAIN,),
        sets=(_CHAIN,) if spec.epilogue_advances_chain else (),
    )

    def tile_body(first_compute_ready: int = 0) -> None:
        if has_loads:
            engine.execute(_load_step(spec, first_k=True))
        engine.execute(_compute_step(spec, ready_after=first_compute_ready))
        if spec.k_iterations > 1:
            engine.run_loop(steady_body, spec.k_iterations - 1)
        engine.execute(epilogue)

    # The first tile carries the warm-up irregularities (missing chain and
    # history anchors, the prologue ready time); later tiles are identical
    # and compress through the outer-loop shift detection.
    tile_body(first_compute_ready=spec.first_compute_ready)
    if spec.cluster_tiles > 1:
        engine.run_outer(tile_body, spec.cluster_tiles - 1)

    resource_busy = dict(engine.busy)
    resource_busy.setdefault(spec.load_resource, 0)  # mirror the expanded graph
    return GemmLoopSchedule(
        total_cycles=engine.makespan,
        kind_cycles=dict(engine.kind_cycles),
        resource_busy=resource_busy,
        executed_operations=engine.executed_operations,
        extrapolated_operations=engine.extrapolated_operations,
    )


# --------------------------------------------------------------------------- #
# Flash-attention pipelined loop
# --------------------------------------------------------------------------- #

#: Anchor naming for the flash loop's per-pipe end times.
def _pipe_anchor(kind: str) -> str:
    return f"pipe.{kind}"


@dataclass(frozen=True)
class FlashPipe:
    """One concurrent pipe of a flash-attention iteration.

    All pipes of an iteration start together at the previous iteration's
    barrier release and occupy their own resource for ``cycles``.
    """

    kind: str
    resource: str
    cycles: int


@dataclass(frozen=True)
class FlashSegment:
    """A run of consecutive Q tiles sharing one visited-KV-tile count.

    Masked kernels (causal, causal-with-history, sliding window, varlen)
    skip KV tiles the mask rules out entirely, so the per-Q-tile trip count
    is not uniform -- but it *is* piecewise constant, and run-length
    encoding it into segments is what keeps the compressed schedule
    O(#segments) instead of O(#tiles).  See :mod:`repro.kernels.masking`.
    """

    q_tiles: int
    kv_trips: int


@dataclass(frozen=True)
class FlashLoopSpec:
    """Software-pipelined (Q tile, KV tile) loop of a fused attention kernel.

    Per iteration, every :class:`FlashPipe` (matrix-unit GEMMs, SIMT online
    softmax, KV-tile DMA) runs concurrently; a sync step of ``sync_cycles``
    (fence poll + cluster barrier on Virgo, the core barrier on the
    Ampere-style mapping) waits for all pipes and releases the next
    iteration, so each iteration is paced by its slowest pipe plus the sync
    cost.  ``prologue_cycles`` models the initial Q/K/V loads the first
    iteration waits on; ``epilogue_count`` stores of ``epilogue_cycles``
    each drain the output tiles after the loop.

    ``trip_profile`` carries the masked iteration structure: the
    run-length-encoded per-Q-tile visited-KV-tile counts of *one head*
    (:class:`FlashSegment` runs), repeated ``profile_repeats`` times (one
    repeat per head -- every head shares the mask).  An empty profile means
    the historical uniform loop: ``iterations`` identical trips.  When a
    profile is present its total trip count must equal ``iterations``, so
    both executors walk exactly the same operations.
    """

    iterations: int
    pipes: Tuple[FlashPipe, ...]
    sync_cycles: int = 0
    sync_resource: str = "sync"
    prologue_cycles: int = 0
    prologue_resource: str = "dma"
    epilogue_cycles: int = 0
    epilogue_count: int = 0
    epilogue_resource: str = "dma"
    trip_profile: Tuple[FlashSegment, ...] = ()
    profile_repeats: int = 1

    def __post_init__(self) -> None:
        if not self.pipes:
            raise ValueError("a flash loop needs at least one pipe")
        kinds = [pipe.kind for pipe in self.pipes]
        if len(set(kinds)) != len(kinds):
            # Pipe kinds double as per-pipe anchor names (and reporting
            # keys), so they must be distinct within one spec.
            raise ValueError(f"flash pipe kinds must be distinct, got {kinds}")
        if self.trip_profile:
            if self.profile_repeats <= 0:
                raise ValueError("profile_repeats must be positive")
            for segment in self.trip_profile:
                if segment.q_tiles <= 0 or segment.kv_trips <= 0:
                    raise ValueError(
                        f"flash segments need positive tile/trip counts, got {segment}"
                    )
            total = self.profile_repeats * sum(
                segment.q_tiles * segment.kv_trips for segment in self.trip_profile
            )
            if total != self.iterations:
                raise ValueError(
                    f"trip profile covers {total} iterations but the spec "
                    f"declares {self.iterations}"
                )

    def resources(self) -> Tuple[str, ...]:
        """Every resource the loop occupies, in deterministic order."""
        names = [pipe.resource for pipe in self.pipes] + [self.sync_resource]
        if self.prologue_cycles:
            names.append(self.prologue_resource)
        if self.epilogue_count:
            names.append(self.epilogue_resource)
        return tuple(dict.fromkeys(names))


def execute_flash_loop(
    spec: FlashLoopSpec, full_expansion: bool = False
) -> GemmLoopSchedule:
    """Schedule the flash-attention loop nest described by ``spec``."""
    if full_expansion:
        return _execute_flash_expanded(spec)
    return _execute_flash_compressed(spec)


def _flash_iteration_plan(spec: FlashLoopSpec):
    """Yield ``(repeat, segment)`` covering every iteration of the spec.

    A spec without a trip profile is one uniform segment; with a profile,
    the plan replays the per-head segment runs ``profile_repeats`` times.
    Both executors iterate this plan, so they materialize *identical*
    operation sequences by construction.
    """
    if not spec.trip_profile:
        yield 0, FlashSegment(q_tiles=1, kv_trips=spec.iterations)
        return
    for repeat in range(spec.profile_repeats):
        for segment in spec.trip_profile:
            yield repeat, segment


def _execute_flash_expanded(spec: FlashLoopSpec) -> GemmLoopSchedule:
    graph = OperationGraph()
    for name in spec.resources():
        graph.add_resource(Resource(name))

    chain: Optional[str] = None
    if spec.prologue_cycles:
        graph.add_operation(
            "prologue", spec.prologue_resource, spec.prologue_cycles, kind="prologue"
        )
        chain = "prologue"
    index = 0
    for _, segment in _flash_iteration_plan(spec):
        for _ in range(segment.q_tiles * segment.kv_trips):
            pipe_names = []
            for pipe in spec.pipes:
                name = f"{pipe.kind}.i{index}"
                graph.add_operation(
                    name,
                    pipe.resource,
                    pipe.cycles,
                    deps=[chain] if chain else [],
                    kind=pipe.kind,
                )
                pipe_names.append(name)
            sync_name = f"sync.i{index}"
            graph.add_operation(
                sync_name, spec.sync_resource, spec.sync_cycles, deps=pipe_names,
                kind="sync",
            )
            chain = sync_name
            index = index + 1
    for index in range(spec.epilogue_count):
        name = f"epilogue.{index}"
        graph.add_operation(
            name,
            spec.epilogue_resource,
            spec.epilogue_cycles,
            deps=[chain] if chain else [],
            kind="epilogue",
        )
        chain = name

    schedule = graph.schedule()
    return GemmLoopSchedule(
        total_cycles=schedule.total_cycles,
        kind_cycles=dict(schedule.critical_kind_cycles()),
        resource_busy=dict(schedule.resource_busy),
        executed_operations=len(graph),
    )


def _execute_flash_compressed(spec: FlashLoopSpec) -> GemmLoopSchedule:
    engine = SteadyStateEngine()
    for name in spec.resources():
        engine.add_resource(name)

    if spec.prologue_cycles:
        engine.execute(
            LoopStep(
                resource=spec.prologue_resource,
                duration=spec.prologue_cycles,
                kind="prologue",
                sets=(_CHAIN,),
            )
        )
    body = [
        LoopStep(
            resource=pipe.resource,
            duration=pipe.cycles,
            kind=pipe.kind,
            deps=(_CHAIN,),
            sets=(_pipe_anchor(pipe.kind),),
        )
        for pipe in spec.pipes
    ]
    body.append(
        LoopStep(
            resource=spec.sync_resource,
            duration=spec.sync_cycles,
            kind="sync",
            deps=tuple(_pipe_anchor(pipe.kind) for pipe in spec.pipes),
            sets=(_CHAIN,),
        )
    )
    if not spec.trip_profile:
        engine.run_loop(body, spec.iterations)
    else:
        # Masked loop: walk the segmented profile.  Each segment is a run of
        # Q tiles with one trip count; the inner ``run_loop`` compresses a
        # tile's KV trips, ``run_outer`` collapses the identical tiles of the
        # run, and a second ``run_outer`` collapses the identical heads --
        # the executed-operation count is O(#segments), independent of both
        # the sequence length and the head count.
        def profile_body() -> None:
            for segment in spec.trip_profile:
                def tile_body() -> None:
                    engine.run_loop(body, segment.kv_trips)

                tile_body()
                if segment.q_tiles > 1:
                    engine.run_outer(tile_body, segment.q_tiles - 1)

        profile_body()
        if spec.profile_repeats > 1:
            engine.run_outer(profile_body, spec.profile_repeats - 1)
    if spec.epilogue_count:
        engine.run_loop(
            [
                LoopStep(
                    resource=spec.epilogue_resource,
                    duration=spec.epilogue_cycles,
                    kind="epilogue",
                    deps=(_CHAIN,),
                    sets=(_CHAIN,),
                )
            ],
            spec.epilogue_count,
        )

    return GemmLoopSchedule(
        total_cycles=engine.makespan,
        kind_cycles=dict(engine.kind_cycles),
        resource_busy=dict(engine.busy),
        executed_operations=engine.executed_operations,
        extrapolated_operations=engine.extrapolated_operations,
    )
