"""Thread-block tiling of the GEMM output space (Section 4.4.1).

All designs use the same two-level tiling the paper describes: the output
space is partitioned into thread-block tiles cached in shared memory, and
each design's matrix unit consumes them in its own operation granularity
(8x8x16 warp tiles for Volta/Ampere, 16x16x32 for Hopper, the whole
128x64x128 thread-block tile for Virgo).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.kernels.gemm.base import GemmWorkload


@dataclass(frozen=True)
class ThreadBlockTiling:
    """Loop structure of a tiled GEMM on one cluster."""

    block_m: int
    block_n: int
    block_k: int
    workload: GemmWorkload

    def __post_init__(self) -> None:
        if self.block_m <= 0 or self.block_n <= 0 or self.block_k <= 0:
            raise ValueError("tile dimensions must be positive")

    @property
    def output_tiles(self) -> int:
        """Thread-block output tiles covering the (M, N) space."""
        tiles_m = -(-self.workload.m // self.block_m)
        tiles_n = -(-self.workload.n // self.block_n)
        return tiles_m * tiles_n

    @property
    def k_iterations(self) -> int:
        """K-loop steps per output tile."""
        return -(-self.workload.k // self.block_k)

    @property
    def total_iterations(self) -> int:
        """Steady-state iterations over the whole GEMM (all clusters combined)."""
        return self.output_tiles * self.k_iterations

    def output_tiles_per_cluster(self, clusters: int) -> int:
        """Output tiles each cluster processes when the SoC has ``clusters`` clusters.

        The (M, N) output space is divided equally across clusters
        (Section 4.4.1); the slowest cluster determines the runtime, so the
        timing models schedule the ceiling share.
        """
        if clusters <= 0:
            raise ValueError("the SoC must have at least one cluster")
        return -(-self.output_tiles // clusters)

    @property
    def macs_per_iteration(self) -> int:
        return self.block_m * self.block_n * self.block_k

    @property
    def a_tile_bytes(self) -> int:
        return self.block_m * self.block_k * self.workload.dtype.bytes

    @property
    def b_tile_bytes(self) -> int:
        return self.block_k * self.block_n * self.workload.dtype.bytes

    @property
    def input_bytes_per_iteration(self) -> int:
        return self.a_tile_bytes + self.b_tile_bytes

    @property
    def output_tile_bytes(self) -> int:
        """FP32 output tile written back once per output tile."""
        return 4 * self.block_m * self.block_n

    def shared_memory_footprint(self, double_buffered: bool = True) -> int:
        """Bytes of shared memory the kernel needs resident."""
        factor = 2 if double_buffered else 1
        return factor * self.input_bytes_per_iteration

    def fits_in_shared_memory(self, design: DesignConfig, double_buffered: bool = True) -> bool:
        return (
            self.shared_memory_footprint(double_buffered)
            <= design.cluster.shared_memory.size_bytes
        )


def tiling_for_design(design: DesignConfig, workload: GemmWorkload) -> ThreadBlockTiling:
    """The thread-block tiling each design uses for the evaluated GEMMs.

    Virgo's thread-block tile is the matrix unit's operation tile
    (128x64x128).  The core-coupled baselines use the same 128x64 output
    tile (so shared-memory data reuse is comparable) but step K at their own
    matrix-operation depth.
    """
    unit = design.matrix_unit
    if design.style is IntegrationStyle.DISAGGREGATED:
        block_m, block_n, block_k = unit.tile_m, unit.tile_n, unit.tile_k
    else:
        block_m, block_n = 128, 64
        block_k = unit.tile_k
    block_m = min(block_m, workload.m)
    block_n = min(block_n, workload.n)
    block_k = min(block_k, workload.k)
    return ThreadBlockTiling(block_m=block_m, block_n=block_n, block_k=block_k, workload=workload)
