"""Per-warp instruction stream builders for the GEMM kernels.

Each builder produces the steady-state instruction stream one warp issues
during a single K-loop iteration of the tiled GEMM, for a given design.  The
streams drive both the issue-stage timing simulation and the per-instruction
energy accounting, and their lengths determine the retired-instruction
comparison of Section 6.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.isa.instructions import OpClass
from repro.isa.program import WarpProgram
from repro.kernels.gemm.tiling import ThreadBlockTiling
from repro.tensorcore.volta import VoltaTensorCore
from repro.tensorcore.hopper import HopperTensorCore


@dataclass
class IterationStreams:
    """Warp programs for one steady-state K iteration on one core."""

    #: Program executed by each compute warp of the core.
    compute_warp: WarpProgram
    #: Extra program executed by the core's warp 0 (DMA programming, MMIO).
    leader_extra: WarpProgram
    #: Number of matrix-unit tile operations one core performs per iteration.
    tile_ops_per_core: int
    #: Number of warps per core that execute ``compute_warp``.
    warps_per_core: int

    def programs_for_core(self) -> list:
        """The per-warp programs handed to the issue simulator."""
        programs = []
        for warp in range(self.warps_per_core):
            program = WarpProgram(name=f"warp{warp}")
            program.extend(self.compute_warp)
            if warp == 0:
                program.extend(self.leader_extra)
            programs.append(program)
        return programs

    def instructions_per_core(self) -> int:
        return len(self.compute_warp) * self.warps_per_core + len(self.leader_extra)


def _copy_loop(program: WarpProgram, nbytes_per_warp: int, blocking: bool) -> None:
    """Global -> shared copy executed by one warp (no-DMA designs).

    Each step moves one 4-byte word per lane (32 bytes per warp instruction
    after coalescing): address generation, a global load, and a shared store.
    """
    bytes_per_instruction = 32
    steps = max(0, -(-nbytes_per_warp // bytes_per_instruction))
    for _ in range(steps):
        program.emit_class(OpClass.ALU, reg_reads=2, reg_writes=1)
        program.emit_class(
            OpClass.LOAD_GLOBAL, reg_reads=1, reg_writes=1, bytes_accessed=bytes_per_instruction
        )
        program.emit_class(
            OpClass.STORE_SHARED, reg_reads=2, reg_writes=0, bytes_accessed=bytes_per_instruction
        )


def _fragment_loads(program: WarpProgram, fragment_bytes: int, lanes: int) -> None:
    """Shared-memory -> register-file fragment loads for one operand.

    Address generation is amortized: one add covers two loads (the second
    load uses an immediate offset from the same base register).
    """
    bytes_per_instruction = 4 * lanes
    loads = max(1, -(-fragment_bytes // bytes_per_instruction))
    for index in range(loads):
        if index % 2 == 0:
            program.emit_class(OpClass.ALU, reg_reads=2, reg_writes=1)
        program.emit_class(
            OpClass.LOAD_SHARED, reg_reads=1, reg_writes=1, bytes_accessed=bytes_per_instruction
        )


def volta_iteration_streams(
    design: DesignConfig,
    tiling: ThreadBlockTiling,
    tensor_core: VoltaTensorCore,
    include_copy: bool,
) -> IterationStreams:
    """Streams for the tightly-coupled designs (Volta-style, Ampere-style).

    ``include_copy`` distinguishes Volta (SIMT-instruction data delivery)
    from Ampere (DMA data delivery: the copy loop disappears and the leader
    warp programs the DMA instead).
    """
    cluster = design.cluster
    unit = design.matrix_unit
    lanes = cluster.core.lanes
    warps = cluster.core.warps

    tile_ops_per_iteration = tiling.macs_per_iteration // unit.tile_macs
    tile_ops_per_core = max(1, tile_ops_per_iteration // cluster.cores)
    tile_ops_per_warp = max(1, tile_ops_per_core // warps)

    compute = WarpProgram(name="volta_compute")
    sequence = tensor_core.hmma_sequence()
    a_fragment_bytes = unit.tile_m * unit.tile_k * unit.dtype.bytes
    b_fragment_bytes = unit.tile_k * unit.tile_n * unit.dtype.bytes
    for _ in range(tile_ops_per_warp):
        # Tile base address computation for A, B and the accumulator.
        compute.emit_class(OpClass.ALU, repeat=4, reg_reads=2, reg_writes=1)
        _fragment_loads(compute, a_fragment_bytes, lanes)
        _fragment_loads(compute, b_fragment_bytes, lanes)
        for instruction in sequence.as_instructions():
            compute.emit(instruction)
        # K-loop bookkeeping.
        compute.emit_class(OpClass.ALU, repeat=2)
        compute.emit_class(OpClass.BRANCH, repeat=1, reg_reads=1, reg_writes=0)

    if include_copy:
        copy_bytes_per_warp = -(-tiling.input_bytes_per_iteration // (cluster.cores * warps))
        _copy_loop(compute, copy_bytes_per_warp, blocking=True)

    compute.emit_class(OpClass.VX_BAR, repeat=1, reg_reads=0, reg_writes=0)

    leader = WarpProgram(name="volta_leader")
    if not include_copy:
        # Ampere-style: warp 0 programs the cluster DMA for the next K tile.
        leader.emit_class(OpClass.DMA_PROGRAM, repeat=4, reg_reads=2, reg_writes=0)
        leader.emit_class(OpClass.ALU, repeat=2)

    return IterationStreams(
        compute_warp=compute,
        leader_extra=leader,
        tile_ops_per_core=tile_ops_per_core,
        warps_per_core=warps,
    )


def hopper_iteration_streams(
    design: DesignConfig,
    tiling: ThreadBlockTiling,
    tensor_core: HopperTensorCore,
) -> IterationStreams:
    """Streams for the operand-decoupled (Hopper-style) design.

    The unit is driven by two instructions per tile operation (initiate and
    wait); operands come straight from shared memory so no fragment loads
    appear in the stream.  The accumulator tile still occupies the register
    file; its read-modify-write traffic is attached to the wait instruction.
    """
    cluster = design.cluster
    unit = design.matrix_unit
    warps = cluster.core.warps

    tile_ops_per_iteration = tiling.macs_per_iteration // unit.tile_macs
    tile_ops_per_core = max(1, tile_ops_per_iteration // cluster.cores)
    tile_ops_per_warp = max(1, tile_ops_per_core // warps)

    compute = WarpProgram(name="hopper_compute")
    for _ in range(tile_ops_per_warp):
        compute.emit_class(OpClass.ALU, repeat=4, reg_reads=2, reg_writes=1)
        for instruction in tensor_core.instruction_sequence():
            compute.emit(instruction)
        compute.emit_class(OpClass.ALU, repeat=2)
        compute.emit_class(OpClass.BRANCH, repeat=1, reg_reads=1, reg_writes=0)
    compute.emit_class(OpClass.VX_BAR, repeat=1, reg_reads=0, reg_writes=0)

    leader = WarpProgram(name="hopper_leader")
    leader.emit_class(OpClass.DMA_PROGRAM, repeat=4, reg_reads=2, reg_writes=0)
    leader.emit_class(OpClass.ALU, repeat=2)

    return IterationStreams(
        compute_warp=compute,
        leader_extra=leader,
        tile_ops_per_core=tile_ops_per_core,
        warps_per_core=warps,
    )


def virgo_iteration_streams(design: DesignConfig, tiling: ThreadBlockTiling) -> IterationStreams:
    """Streams for Virgo: MMIO programming, DMA programming, fence polling.

    A single leader warp drives the matrix unit; the remaining warps only
    participate in the cluster-wide barrier (in a pure GEMM the SIMT cores
    have no per-element work, which is exactly why Virgo's instruction count
    collapses to a fraction of the baselines').
    """
    cluster = design.cluster
    warps = cluster.core.warps

    compute = WarpProgram(name="virgo_worker")
    compute.emit_class(OpClass.ALU, repeat=2)
    compute.emit_class(OpClass.VX_BAR, repeat=1, reg_reads=0, reg_writes=0)

    leader = WarpProgram(name="virgo_leader")
    # Program the matrix unit operation over MMIO: operand addresses,
    # dimensions, accumulate flag, start.
    leader.emit_class(OpClass.ALU, repeat=4)
    leader.emit_class(OpClass.MMIO_STORE, repeat=6, reg_reads=2, reg_writes=0, bytes_accessed=4)
    # Program the DMA for the next iteration's tiles.
    leader.emit_class(OpClass.DMA_PROGRAM, repeat=4, reg_reads=2, reg_writes=0)
    # virgo_fence: poll the busy register a handful of times.
    leader.emit_class(OpClass.MMIO_POLL, repeat=3, reg_reads=1, reg_writes=1, bytes_accessed=4)

    return IterationStreams(
        compute_warp=compute,
        leader_extra=leader,
        tile_ops_per_core=0,
        warps_per_core=warps,
    )
