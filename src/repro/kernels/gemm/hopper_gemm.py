"""GEMM kernel model for the operand-decoupled (Hopper-style) design.

The matrix unit reads its operands directly from shared memory and is driven
by an asynchronous initiate/wait instruction pair, so the warps' instruction
streams shrink dramatically compared to the tightly-coupled designs.  What
remains per tile operation is:

* the two driving instructions plus loop/address bookkeeping,
* the accumulator tile's read-modify-write through the register file around
  every operation (the residual register pressure Hopper does not remove),
* the exposed portion of the shared-memory streaming latency.

Data delivery uses the cluster DMA (double buffered), and the final output
tile is stored from the register file to global memory by SIMT stores.
"""

from __future__ import annotations

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.kernels.gemm.base import GemmKernelResult, GemmWorkload, ideal_mac_cycles
from repro.kernels.gemm.instruction_streams import hopper_iteration_streams
from repro.kernels.gemm.schedule_loops import GemmLoopSpec, execute_gemm_loop
from repro.kernels.gemm.tiling import ThreadBlockTiling, tiling_for_design
from repro.memory.dma import DmaEngine
from repro.memory.dram import DramChannel
from repro.sim.stats import Counters
from repro.simt.core import VortexCore
from repro.tensorcore.hopper import HopperTensorCore


class OperandDecoupledGemmKernel:
    """Tiled GEMM on the Hopper-style design."""

    #: Cycles of accumulator register-file read-modify-write exposed per tile
    #: operation (a 16x16 FP32 tile drained through the 8-lane writeback path).
    ACCUMULATOR_DRAIN_CYCLES = 32

    def __init__(self, design: DesignConfig) -> None:
        if design.style is not IntegrationStyle.OPERAND_DECOUPLED:
            raise ValueError("this kernel models the operand-decoupled design")
        self.design = design
        self.tensor_core = HopperTensorCore(
            design.matrix_unit, design.cluster.shared_memory
        )
        self.core = VortexCore(design.cluster.core)
        self.dram = DramChannel(design.soc.dram)
        self.dma = DmaEngine(design.cluster.dma, self.dram)

    # ------------------------------------------------------------------ #
    # Steady-state iteration
    # ------------------------------------------------------------------ #

    def _iteration(self, tiling: ThreadBlockTiling):
        streams = hopper_iteration_streams(self.design, tiling, self.tensor_core)
        execution = self.core.execute(streams.programs_for_core())

        # Matrix-unit occupancy per core: the per-core unit serializes the
        # tile operations of all its warps.
        operation = self.tensor_core.tile_operation()
        unit_cycles = streams.tile_ops_per_core * (
            operation.compute_cycles + self.ACCUMULATOR_DRAIN_CYCLES
        ) + operation.exposed_latency

        compute_cycles = max(execution.cycles, unit_cycles)
        dma_cycles = self.dma.transfer_cycles(tiling.input_bytes_per_iteration)
        dram_cycles = self.dram.transfer_cycles(
            tiling.input_bytes_per_iteration, include_latency=False
        )

        counters = self._iteration_counters(streams, execution.counters, tiling)
        instructions = streams.instructions_per_core() * self.design.cluster.cores
        return streams, compute_cycles, max(dma_cycles, dram_cycles), counters, instructions

    def _iteration_counters(self, streams, core_counters: Counters, tiling) -> Counters:
        counters = Counters()
        counters.merge(core_counters.scaled(self.design.cluster.cores))
        tile_ops = streams.tile_ops_per_core * self.design.cluster.cores
        per_tile = Counters()
        self.tensor_core.record_tile_events(per_tile)
        counters.merge(per_tile.scaled(tile_ops))
        counters.add("matrix_unit.pe.macs", tile_ops * self.design.matrix_unit.tile_macs)
        nbytes = tiling.input_bytes_per_iteration
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        counters.add("dma.bytes", nbytes)
        counters.add("dma.descriptors", 2)
        counters.add("smem.dma.write_words", nbytes // 4)
        return counters

    def _epilogue(self, tiling: ThreadBlockTiling):
        """Per-output-tile boundary work.

        Three costs appear at the end of every output tile's K loop: the
        final wgmma's latency is fully exposed (no further operations to
        overlap it with), the accumulator tiles are stored from the register
        file to global memory, and the accumulators are zero-initialized for
        the next output tile.
        """
        nbytes = tiling.output_tile_bytes
        store_instructions = -(-nbytes // 32) * 2
        cluster = self.design.cluster
        issue_cycles = -(-store_instructions // cluster.cores)
        dram_cycles = self.dram.transfer_cycles(nbytes, include_latency=False)
        drain_cycles = self.tensor_core.tile_busy_cycles() + self.ACCUMULATOR_DRAIN_CYCLES

        elements_per_core = tiling.block_m * tiling.block_n // cluster.cores
        init_instructions_per_core = -(-elements_per_core // cluster.core.lanes)
        cycles = drain_cycles + max(issue_cycles, dram_cycles) + init_instructions_per_core

        counters = Counters()
        init_instructions = init_instructions_per_core * cluster.cores
        counters.add("core.issue.instructions", store_instructions + init_instructions)
        counters.add("core.alu.ops", init_instructions * cluster.core.lanes)
        counters.add("core.writeback.rf_write_words", init_instructions * cluster.core.lanes)
        counters.add("core.lsu.requests", store_instructions // 2)
        counters.add("core.issue.rf_read_words", store_instructions * cluster.core.lanes)
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        return cycles, counters, store_instructions + init_instructions

    # ------------------------------------------------------------------ #
    # Whole-kernel simulation
    # ------------------------------------------------------------------ #

    def simulate(self, workload: GemmWorkload, full_expansion: bool = False) -> GemmKernelResult:
        tiling = tiling_for_design(self.design, workload)
        streams, compute_cycles, dma_cycles, iter_counters, iter_instructions = self._iteration(
            tiling
        )
        epilogue_cycles, epilogue_counters, epilogue_instructions = self._epilogue(tiling)

        # Each cluster works on its share of the (M, N) output tiles; the
        # slowest cluster's schedule determines the kernel runtime.  Loads
        # double buffer (fetch while the compute two iterations back still
        # occupies the other buffer half); the first load of a new output
        # tile cannot be prefetched -- its panel addresses are only
        # programmed after the previous tile's epilogue has retired.
        spec = GemmLoopSpec(
            cluster_tiles=tiling.output_tiles_per_cluster(self.design.soc.clusters),
            k_iterations=tiling.k_iterations,
            compute_resource="compute",
            compute_cycles=compute_cycles,
            load_cycles=dma_cycles,
            epilogue_cycles=epilogue_cycles,
            epilogue_resource="compute",
            double_buffer_deps=True,
            epilogue_advances_chain=True,
        )
        schedule = execute_gemm_loop(spec, full_expansion=full_expansion)

        iterations = tiling.total_iterations
        counters = iter_counters.scaled(iterations)
        counters.merge(epilogue_counters.scaled(tiling.output_tiles))
        instructions = iter_instructions * iterations + epilogue_instructions * tiling.output_tiles

        return GemmKernelResult(
            design=self.design,
            workload=workload,
            total_cycles=schedule.total_cycles,
            ideal_mac_cycles=ideal_mac_cycles(self.design, workload),
            counters=counters,
            retired_instructions=instructions,
            iteration_cycles=compute_cycles,
            phase_cycles=schedule.kind_cycles,
            resource_busy=schedule.resource_busy,
            schedule_stats=schedule.stats(),
        )
