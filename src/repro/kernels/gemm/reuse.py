"""Shared-memory data-reuse / read-footprint model (Table 4).

Table 4 compares the total bytes read from shared memory while computing the
256x256x256 GEMM across the three matrix-unit organizations.  The footprint
is determined by how often each operand element must be re-read, which in
turn depends on:

* the **tile fragment** held inside the matrix unit (operand buffers for the
  tensor cores, the systolic mesh registers for Virgo): an A element is
  reused across the ``n`` extent covered while it is staged, a B element
  across the staged ``m`` extent;
* whether units are **per-core or unified**: per-core units computing output
  tiles along the same row/column of the thread block each re-read the same
  operand data, while Virgo's single cluster-level unit streams the B panel
  of an entire 128-row operation tile exactly once.

The reuse extents below reproduce the mechanisms of Section 6.1.3:

=====================  ==============  ==============  =========================
Design                 A reuse extent  B reuse extent  Rationale
=====================  ==============  ==============  =========================
Tightly-coupled          16              8             warp computes an 8x16
                                                       output strip, reusing its
                                                       A fragment across two 8x8
                                                       accumulators; B fragment
                                                       reused across its 8 rows
Operand-decoupled        16             16             one 16x16 accumulator
                                                       per warp
Disaggregated            16 (mesh cols) 128 (op tile m) unified unit streams B
                                                       once per operation tile
=====================  ==============  ==============  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.kernels.gemm.base import GemmWorkload


@dataclass(frozen=True)
class ReuseExtents:
    """How far each operand element is reused before being re-read from SMEM."""

    a_reuse_n: int
    b_reuse_m: int
    fragment_rows: int
    fragment_cols: int


def reuse_extents(design: DesignConfig) -> ReuseExtents:
    """Reuse extents implied by the design's matrix-unit organization."""
    unit = design.matrix_unit
    if design.style in (
        IntegrationStyle.TIGHTLY_COUPLED,
        IntegrationStyle.TIGHTLY_COUPLED_DMA,
    ):
        # Warp-level output strip of tile_m x (2 * tile_n): the A fragment is
        # reused across two adjacent accumulator tiles (the second 8x8
        # accumulator still fits in the 1 KiB per-warp register slice).
        return ReuseExtents(
            a_reuse_n=2 * unit.tile_n,
            b_reuse_m=unit.tile_m,
            fragment_rows=unit.tile_m,
            fragment_cols=unit.tile_n,
        )
    if design.style is IntegrationStyle.OPERAND_DECOUPLED:
        return ReuseExtents(
            a_reuse_n=unit.tile_n,
            b_reuse_m=unit.tile_m,
            fragment_rows=unit.tile_m,
            fragment_cols=unit.tile_n,
        )
    # Disaggregated: the A panel is re-streamed once per mesh-column group of
    # outputs; the B panel is streamed exactly once per operation tile.
    return ReuseExtents(
        a_reuse_n=unit.systolic_cols,
        b_reuse_m=unit.tile_m,
        fragment_rows=unit.systolic_rows,
        fragment_cols=unit.systolic_cols,
    )


def smem_read_footprint_bytes(design: DesignConfig, workload: GemmWorkload) -> int:
    """Total bytes read from shared memory for the whole GEMM."""
    extents = reuse_extents(design)
    elem = workload.dtype.bytes
    a_reads = workload.macs // extents.a_reuse_n  # A elements re-read per n-extent
    b_reads = workload.macs // extents.b_reuse_m
    return elem * (a_reads + b_reads)


def smem_footprint_table(
    designs: Dict[str, DesignConfig], workload: GemmWorkload
) -> Dict[str, Dict[str, float]]:
    """Table 4: footprint in MiB and normalized to the smallest entry."""
    footprints = {
        name: smem_read_footprint_bytes(design, workload) for name, design in designs.items()
    }
    smallest = min(footprints.values())
    return {
        name: {
            "mib": value / (1024.0 * 1024.0),
            "normalized": value / smallest,
            "fragment": (
                f"{reuse_extents(designs[name]).fragment_rows}x"
                f"{reuse_extents(designs[name]).fragment_cols}"
            ),
        }
        for name, value in footprints.items()
    }
