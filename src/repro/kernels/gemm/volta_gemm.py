"""GEMM kernel model for the tightly-coupled designs (Volta- and Ampere-style).

Both designs drive per-core tensor cores with synchronous HMMA set/step
instruction sequences and stage every operand and accumulator fragment
through the register file.  They differ only in data delivery:

* **Volta-style** -- the SIMT warps themselves copy the next K tile from
  global memory into shared memory with load/store instructions (relying on
  the memory coalescer), and the copy serializes with compute at the
  inter-iteration barrier.
* **Ampere-style** -- a cluster DMA engine performs the copy asynchronously,
  overlapping it with compute (double buffering), and the copy instructions
  disappear from the warps' streams.

The steady-state iteration is timed by replaying the per-warp instruction
streams through the issue-stage simulator (which also enforces the tensor
core's structural occupancy), and the whole kernel is assembled as an
operation graph so prologue, epilogue and (for Ampere) DMA overlap are
captured.
"""

from __future__ import annotations

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.kernels.gemm.base import GemmKernelResult, GemmWorkload, ideal_mac_cycles
from repro.kernels.gemm.instruction_streams import volta_iteration_streams
from repro.kernels.gemm.schedule_loops import GemmLoopSpec, execute_gemm_loop
from repro.kernels.gemm.tiling import ThreadBlockTiling, tiling_for_design
from repro.memory.dma import DmaEngine, DmaDirection
from repro.memory.dram import DramChannel
from repro.sim.stats import Counters
from repro.simt.core import VortexCore
from repro.tensorcore.volta import VoltaTensorCore


class TightlyCoupledGemmKernel:
    """Tiled GEMM on the Volta-style or Ampere-style design."""

    def __init__(self, design: DesignConfig) -> None:
        if design.style not in (
            IntegrationStyle.TIGHTLY_COUPLED,
            IntegrationStyle.TIGHTLY_COUPLED_DMA,
        ):
            raise ValueError("this kernel models the tightly-coupled designs")
        self.design = design
        self.has_dma = design.style is IntegrationStyle.TIGHTLY_COUPLED_DMA
        self.tensor_core = VoltaTensorCore(design.matrix_unit)
        self.core = VortexCore(design.cluster.core)
        self.dram = DramChannel(design.soc.dram)

    # ------------------------------------------------------------------ #
    # Steady-state iteration
    # ------------------------------------------------------------------ #

    def _iteration(self, tiling: ThreadBlockTiling):
        streams = volta_iteration_streams(
            self.design, tiling, self.tensor_core, include_copy=not self.has_dma
        )
        programs = streams.programs_for_core()
        execution = self.core.execute(programs)

        # Per-core cycles: the issue simulator already serializes HMMA steps
        # on the core's tensor unit, so its cycle count covers both the
        # instruction-processing and matrix-unit-occupancy bounds.
        compute_cycles = execution.cycles

        # Data delivery for the *next* iteration.
        if self.has_dma:
            dma_cycles = self._dma_cycles(tiling.input_bytes_per_iteration)
        else:
            dma_cycles = 0  # the copy is inside the instruction streams

        # Global-memory streaming bound (applies either way).
        dram_cycles = self.dram.transfer_cycles(
            tiling.input_bytes_per_iteration, include_latency=False
        )

        # Shared-memory bandwidth bound: every tile operation re-reads its
        # operand fragments from the shared memory.  This is the bound the
        # paper relieves with 2x more aggressive banking for the
        # tightly-coupled designs (Section 6.1.3).
        smem = self.design.cluster.shared_memory
        tile_ops = streams.tile_ops_per_core * self.design.cluster.cores
        fragment_bytes = tile_ops * self.design.matrix_unit.operand_bytes_per_tile
        smem_cycles = -(-fragment_bytes // smem.peak_bytes_per_cycle)
        compute_cycles = max(compute_cycles, smem_cycles)

        counters = self._iteration_counters(streams, tiling)
        instructions = streams.instructions_per_core() * self.design.cluster.cores
        return streams, compute_cycles, dma_cycles, dram_cycles, counters, instructions

    def _dma_cycles(self, nbytes: int) -> int:
        dma = DmaEngine(self.design.cluster.dma, self.dram)
        return dma.transfer_cycles(nbytes)

    def _iteration_counters(self, streams, tiling: ThreadBlockTiling) -> Counters:
        counters = Counters()
        # Core-side events for every core in the cluster.
        core_events = self.core.count_events(streams.programs_for_core())
        counters.merge(core_events.scaled(self.design.cluster.cores))
        # Matrix-unit events for every tile operation in the iteration.
        tile_ops = streams.tile_ops_per_core * self.design.cluster.cores
        per_tile = Counters()
        self.tensor_core.record_tile_events(per_tile)
        counters.merge(per_tile.scaled(tile_ops))
        counters.add("matrix_unit.pe.macs", tile_ops * self.design.matrix_unit.tile_macs)
        # Data delivery traffic.
        nbytes = tiling.input_bytes_per_iteration
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        if self.has_dma:
            counters.add("dma.bytes", nbytes)
            counters.add("dma.descriptors", 2)
            counters.add("smem.dma.write_words", nbytes // 4)
        else:
            counters.add("l1.bytes", nbytes)
            counters.add("l1.requests", nbytes // 64)
            counters.add("smem.core.write_words", nbytes // 4)
        return counters

    def _epilogue(self, tiling: ThreadBlockTiling):
        """Result write-back of one output tile (register file -> global).

        The accumulators live in the register file, so the warps store them
        to global memory with store instructions at the end of the K loop and
        zero-initialize them for the next output tile.
        """
        nbytes = tiling.output_tile_bytes
        store_instructions = -(-nbytes // 32) * 2  # address + store per 32 B
        cluster = self.design.cluster
        elements_per_core = tiling.block_m * tiling.block_n // cluster.cores
        init_instructions_per_core = -(-elements_per_core // cluster.core.lanes)
        issue_cycles = -(-store_instructions // cluster.cores)
        dram_cycles = self.dram.transfer_cycles(nbytes, include_latency=False)
        cycles = max(issue_cycles, dram_cycles) + init_instructions_per_core

        counters = Counters()
        init_instructions = init_instructions_per_core * cluster.cores
        counters.add("core.issue.instructions", store_instructions + init_instructions)
        counters.add("core.alu.ops", store_instructions // 2 * cluster.core.lanes)
        counters.add("core.writeback.rf_write_words", init_instructions * cluster.core.lanes)
        counters.add("core.lsu.requests", store_instructions // 2)
        counters.add("core.issue.rf_read_words", store_instructions * cluster.core.lanes)
        counters.add("l2.bytes", nbytes)
        counters.add("dram.bytes", nbytes)
        return cycles, counters, store_instructions + init_instructions

    # ------------------------------------------------------------------ #
    # Whole-kernel simulation
    # ------------------------------------------------------------------ #

    def simulate(self, workload: GemmWorkload, full_expansion: bool = False) -> GemmKernelResult:
        tiling = tiling_for_design(self.design, workload)
        (
            streams,
            compute_cycles,
            dma_cycles,
            dram_cycles,
            iter_counters,
            iter_instructions,
        ) = self._iteration(tiling)
        epilogue_cycles, epilogue_counters, epilogue_instructions = self._epilogue(tiling)

        prologue = self._dma_cycles(tiling.input_bytes_per_iteration) if self.has_dma else max(
            dram_cycles, compute_cycles // 4
        )
        # Each cluster works on its share of the (M, N) output tiles; the
        # slowest cluster's schedule determines the kernel runtime.  With a
        # DMA, the loads double buffer (fetch while the compute two
        # iterations back still runs) and the first load of a new output
        # tile waits for the previous tile's epilogue; without one the same
        # warps copy the next tile, so the inter-iteration barrier exposes
        # the global-memory streaming time inside the compute duration.
        spec = GemmLoopSpec(
            cluster_tiles=tiling.output_tiles_per_cluster(self.design.soc.clusters),
            k_iterations=tiling.k_iterations,
            compute_resource="compute",
            compute_cycles=compute_cycles if self.has_dma else compute_cycles + dram_cycles,
            load_cycles=max(dma_cycles, dram_cycles) if self.has_dma else None,
            epilogue_cycles=epilogue_cycles,
            epilogue_resource="compute",
            double_buffer_deps=True,
            epilogue_advances_chain=True,
            first_compute_ready=prologue,
        )
        schedule = execute_gemm_loop(spec, full_expansion=full_expansion)

        iterations = tiling.total_iterations
        counters = iter_counters.scaled(iterations)
        counters.merge(epilogue_counters.scaled(tiling.output_tiles))
        instructions = iter_instructions * iterations + epilogue_instructions * tiling.output_tiles

        return GemmKernelResult(
            design=self.design,
            workload=workload,
            total_cycles=schedule.total_cycles,
            ideal_mac_cycles=ideal_mac_cycles(self.design, workload),
            counters=counters,
            retired_instructions=instructions,
            iteration_cycles=compute_cycles,
            phase_cycles=schedule.kind_cycles,
            resource_busy=schedule.resource_busy,
            schedule_stats=schedule.stats(),
        )
