"""Functional (numerically verified) tiled GEMM on each matrix-unit model.

These kernels execute the same tiling the timing models assume, but actually
move numpy data through the functional matrix-unit models, so the end-to-end
result can be checked against a numpy reference.  They are used by the test
suite and the examples on small problem sizes.
"""

from __future__ import annotations

import numpy as np

from repro.config.soc import DesignConfig, IntegrationStyle
from repro.core.gemmini import GemminiMatrixUnit
from repro.sim.stats import Counters
from repro.tensorcore.fragments import load_fragment
from repro.tensorcore.hopper import HopperTensorCore
from repro.tensorcore.volta import VoltaTensorCore


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"invalid GEMM operand shapes {a.shape} x {b.shape}")


def reference_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FP32 reference with FP16 operand quantization (matches the units)."""
    _check_shapes(a, b)
    return a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)


def gemm_tightly_coupled(
    design: DesignConfig, a: np.ndarray, b: np.ndarray, counters: Counters | None = None
) -> np.ndarray:
    """Tiled GEMM through the Volta/Ampere-style tensor core model."""
    _check_shapes(a, b)
    unit = design.matrix_unit
    tensor_core = VoltaTensorCore(unit)
    m, k = a.shape
    n = b.shape[1]
    if m % unit.tile_m or n % unit.tile_n or k % unit.tile_k:
        raise ValueError(
            f"dimensions must be multiples of the {unit.tile_m}x{unit.tile_n}x{unit.tile_k} tile"
        )
    result = np.zeros((m, n), dtype=np.float32)
    for i in range(0, m, unit.tile_m):
        for j in range(0, n, unit.tile_n):
            accumulator = np.zeros((unit.tile_m, unit.tile_n), dtype=np.float32)
            for kk in range(0, k, unit.tile_k):
                a_frag = load_fragment(a, i, kk, unit.tile_m, unit.tile_k, unit.dtype)
                b_frag = load_fragment(b, kk, j, unit.tile_k, unit.tile_n, unit.dtype)
                accumulator = tensor_core.mma(a_frag, b_frag, accumulator, counters)
            result[i : i + unit.tile_m, j : j + unit.tile_n] = accumulator
    return result


def gemm_operand_decoupled(
    design: DesignConfig, a: np.ndarray, b: np.ndarray, counters: Counters | None = None
) -> np.ndarray:
    """Tiled GEMM through the Hopper-style operand-decoupled model."""
    _check_shapes(a, b)
    unit = design.matrix_unit
    tensor_core = HopperTensorCore(unit, design.cluster.shared_memory)
    m, k = a.shape
    n = b.shape[1]
    if m % unit.tile_m or n % unit.tile_n or k % unit.tile_k:
        raise ValueError(
            f"dimensions must be multiples of the {unit.tile_m}x{unit.tile_n}x{unit.tile_k} tile"
        )
    result = np.zeros((m, n), dtype=np.float32)
    for i in range(0, m, unit.tile_m):
        for j in range(0, n, unit.tile_n):
            accumulator = np.zeros((unit.tile_m, unit.tile_n), dtype=np.float32)
            for kk in range(0, k, unit.tile_k):
                a_frag = load_fragment(a, i, kk, unit.tile_m, unit.tile_k, unit.dtype, "shared")
                b_frag = load_fragment(b, kk, j, unit.tile_k, unit.tile_n, unit.dtype, "shared")
                accumulator = tensor_core.wgmma(a_frag, b_frag, accumulator, counters)
            result[i : i + unit.tile_m, j : j + unit.tile_n] = accumulator
    return result


def gemm_disaggregated(
    design: DesignConfig, a: np.ndarray, b: np.ndarray, counters: Counters | None = None
) -> np.ndarray:
    """Tiled GEMM through Virgo's Gemmini-based cluster matrix unit."""
    _check_shapes(a, b)
    unit = design.matrix_unit
    matrix_unit = GemminiMatrixUnit(unit, design.cluster.shared_memory)
    m, k = a.shape
    n = b.shape[1]
    block_m = min(unit.tile_m, m)
    block_n = min(unit.tile_n, n)
    block_k = min(unit.tile_k, k)
    result = np.zeros((m, n), dtype=np.float32)
    for i in range(0, m, block_m):
        for j in range(0, n, block_n):
            accumulator = np.zeros((min(block_m, m - i), min(block_n, n - j)), dtype=np.float32)
            for kk in range(0, k, block_k):
                a_block = a[i : i + block_m, kk : kk + block_k]
                b_block = b[kk : kk + block_k, j : j + block_n]
                partial = matrix_unit.compute(a_block, b_block, counters=counters)
                accumulator = accumulator + partial
            result[i : i + block_m, j : j + block_n] = accumulator
    return result


def gemm_functional(
    design: DesignConfig, a: np.ndarray, b: np.ndarray, counters: Counters | None = None
) -> np.ndarray:
    """Dispatch to the functional GEMM of ``design``'s integration style."""
    if design.style in (IntegrationStyle.TIGHTLY_COUPLED, IntegrationStyle.TIGHTLY_COUPLED_DMA):
        return gemm_tightly_coupled(design, a, b, counters)
    if design.style is IntegrationStyle.OPERAND_DECOUPLED:
        return gemm_operand_decoupled(design, a, b, counters)
    return gemm_disaggregated(design, a, b, counters)
