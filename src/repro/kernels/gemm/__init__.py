"""Tiled GEMM kernels: timing/energy models per design plus functional kernels."""

from __future__ import annotations

from typing import Dict, Union

from repro.config.soc import DataType, DesignConfig, IntegrationStyle
from repro.config.presets import DesignKind, make_design
from repro.kernels.gemm.base import (
    GEMM_SIZES,
    GemmKernelResult,
    GemmWorkload,
    ideal_mac_cycles,
)
from repro.kernels.gemm.tiling import ThreadBlockTiling, tiling_for_design
from repro.kernels.gemm.reuse import (
    ReuseExtents,
    reuse_extents,
    smem_read_footprint_bytes,
    smem_footprint_table,
)
from repro.kernels.gemm.functional import (
    gemm_functional,
    gemm_tightly_coupled,
    gemm_operand_decoupled,
    gemm_disaggregated,
    reference_gemm,
)
from repro.kernels.gemm.volta_gemm import TightlyCoupledGemmKernel
from repro.kernels.gemm.hopper_gemm import OperandDecoupledGemmKernel
from repro.kernels.gemm.virgo_gemm import VirgoGemmKernel

__all__ = [
    "GEMM_SIZES",
    "GemmKernelResult",
    "GemmWorkload",
    "ThreadBlockTiling",
    "tiling_for_design",
    "ideal_mac_cycles",
    "ReuseExtents",
    "reuse_extents",
    "smem_read_footprint_bytes",
    "smem_footprint_table",
    "gemm_functional",
    "gemm_tightly_coupled",
    "gemm_operand_decoupled",
    "gemm_disaggregated",
    "reference_gemm",
    "TightlyCoupledGemmKernel",
    "OperandDecoupledGemmKernel",
    "VirgoGemmKernel",
    "simulate_gemm",
    "kernel_for_design",
]


def kernel_for_design(design: DesignConfig):
    """Instantiate the design-appropriate GEMM kernel model."""
    if design.style in (IntegrationStyle.TIGHTLY_COUPLED, IntegrationStyle.TIGHTLY_COUPLED_DMA):
        return TightlyCoupledGemmKernel(design)
    if design.style is IntegrationStyle.OPERAND_DECOUPLED:
        return OperandDecoupledGemmKernel(design)
    return VirgoGemmKernel(design)


def simulate_gemm(
    design: Union[DesignKind, DesignConfig],
    size: Union[int, GemmWorkload],
    dtype: DataType = DataType.FP16,
    full_expansion: bool = False,
) -> GemmKernelResult:
    """Simulate a square (or explicit) GEMM on one design and return the result.

    ``full_expansion=True`` materializes every tile operation on the
    operation graph instead of using steady-state schedule compression; the
    two paths produce bit-identical results and differ only in cost.
    """
    if isinstance(design, DesignKind):
        design = make_design(design, dtype)
    workload = size if isinstance(size, GemmWorkload) else GemmWorkload.square(size, dtype)
    kernel = kernel_for_design(design)
    return kernel.simulate(workload, full_expansion=full_expansion)


def simulate_gemm_suite(
    design: Union[DesignKind, DesignConfig],
    sizes=GEMM_SIZES,
    dtype: DataType = DataType.FP16,
) -> Dict[int, GemmKernelResult]:
    """Simulate the paper's three GEMM sizes on one design."""
    return {size: simulate_gemm(design, size, dtype) for size in sizes}
