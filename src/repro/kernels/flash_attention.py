"""FlashAttention-3 kernel: functional algorithm plus Virgo/Ampere mappings.

The paper (Section 4.5, 6.2) maps the fused attention forward pass onto Virgo
by running the two GEMMs (S = Q K^T and O += P V) on the cluster matrix unit
while the SIMT cores compute the online softmax concurrently, synchronized
with fences and cluster-wide barriers and double-buffered in shared memory.
The Ampere-style baseline uses warp specialization with ping-pong scheduling:
GEMM and softmax alternate across two warp groups, competing for the same
issue slots and register file.

Because the Vortex core has no exponential unit, the paper substitutes a
2nd-order Taylor approximation for ``exp``; the functional model reproduces
that (and its accuracy impact) as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.config.soc import DataType, DesignConfig, IntegrationStyle
from repro.config.presets import DesignKind, ampere_style, make_design, virgo
from repro.core.gemmini import GemminiMatrixUnit
from repro.isa.instructions import OpClass
from repro.isa.program import WarpProgram
from repro.kernels.gemm.instruction_streams import _fragment_loads
from repro.kernels.gemm.schedule_loops import (
    FlashLoopSpec,
    FlashPipe,
    FlashSegment,
    execute_flash_loop,
)
from repro.kernels.masking import (
    masked_elements,
    masked_elements_varlen,
    tile_trips,
    tile_trips_varlen,
    trip_segments,
)
from repro.memory.dma import DmaEngine
from repro.memory.dram import DramChannel
from repro.sim.stats import Counters
from repro.simt.core import VortexCore
from repro.tensorcore.volta import VoltaTensorCore


# --------------------------------------------------------------------------- #
# Functional algorithm
# --------------------------------------------------------------------------- #


def taylor_exp(x: np.ndarray, order: int = 2) -> np.ndarray:
    """2nd-order Taylor approximation of exp used on the SIMT cores.

    ``exp(x) ~= 1 + x + x^2/2`` for the (negative, post-max-subtraction)
    arguments the online softmax produces, clamped at zero to stay a valid
    (non-negative) probability weight.
    """
    result = np.ones_like(x)
    term = np.ones_like(x)
    for i in range(1, order + 1):
        term = term * x / i
        result = result + term
    return np.maximum(result, 0.0)


def attention_reference(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: float | None = None
) -> np.ndarray:
    """Exact (softmax) attention reference."""
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ k.T) * scale
    scores = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights = weights / weights.sum(axis=-1, keepdims=True)
    return weights @ v


def flash_attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_q: int = 64,
    block_kv: int = 64,
    scale: float | None = None,
    use_taylor_exp: bool = False,
) -> np.ndarray:
    """Blocked online-softmax attention (the FlashAttention recurrence).

    Processes KV tiles one at a time, maintaining per-row running max,
    normalizer and un-normalized output -- the same loop structure the Virgo
    kernel executes, so it doubles as the functional model of the mapping.
    """
    if q.ndim != 2 or k.ndim != 2 or v.ndim != 2:
        raise ValueError("q, k, v must be 2-D (sequence x head_dim)")
    if k.shape != v.shape or q.shape[1] != k.shape[1]:
        raise ValueError("q, k, v head dimensions must agree")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    exp_fn = taylor_exp if use_taylor_exp else np.exp

    seq_q, head_dim = q.shape
    seq_kv = k.shape[0]
    output = np.zeros((seq_q, head_dim), dtype=np.float32)

    for q_start in range(0, seq_q, block_q):
        q_tile = q[q_start : q_start + block_q].astype(np.float32)
        rows = q_tile.shape[0]
        running_max = np.full((rows, 1), -np.inf, dtype=np.float32)
        normalizer = np.zeros((rows, 1), dtype=np.float32)
        accumulator = np.zeros((rows, head_dim), dtype=np.float32)

        for kv_start in range(0, seq_kv, block_kv):
            k_tile = k[kv_start : kv_start + block_kv].astype(np.float32)
            v_tile = v[kv_start : kv_start + block_kv].astype(np.float32)

            scores = (q_tile @ k_tile.T) * scale                     # GEMM-1
            tile_max = scores.max(axis=-1, keepdims=True)
            new_max = np.maximum(running_max, tile_max)
            # Clamp the (non-positive) rescale argument so the first tile's
            # -inf running max does not propagate NaNs through the exp.
            correction = exp_fn(np.maximum(running_max - new_max, np.float32(-80.0)))
            probs = exp_fn(scores - new_max)                          # softmax
            normalizer = normalizer * correction + probs.sum(axis=-1, keepdims=True)
            accumulator = accumulator * correction + probs @ v_tile   # GEMM-2
            running_max = new_max

        output[q_start : q_start + block_q] = accumulator / normalizer
    return output


# --------------------------------------------------------------------------- #
# Workload and result types
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FlashAttentionWorkload:
    """Forward-pass attention problem (paper: seq 1024, head dim 64, 1 head).

    The mask fields describe the shapes a serving mix actually contains:
    ``causal`` turns on the triangular mask; ``kv_len > seq_len`` is causal
    prefill over prior KV context (chunked prefill -- the current chunk is
    the tail of the context); ``window`` keeps only the last ``window``
    allowed keys per query (sliding-window attention); ``seq_lens`` packs a
    ragged batch into one kernel call (varlen: each sequence attends only
    to itself, block-diagonal causal).  Work accounting is *exact*: score
    elements come from the integer mask arithmetic in
    :mod:`repro.kernels.masking`, and the tile loop visits only the KV
    tiles the mask leaves non-empty (a visited tile costs full tile work --
    tile-granular skipping, as production flash kernels implement).
    """

    seq_len: int = 1024
    head_dim: int = 64
    heads: int = 1
    block_q: int = 64
    block_kv: int = 64
    causal: bool = False
    kv_len: int = 0  # 0 = seq_len; larger = causal prefill over prior context
    window: int = 0  # sliding-window width; 0 = unwindowed
    seq_lens: Tuple[int, ...] = ()  # varlen packed batch; sum == seq_len

    def __post_init__(self) -> None:
        if self.seq_len <= 0 or self.head_dim <= 0 or self.heads <= 0:
            raise ValueError("flash workload dimensions must be positive")
        if self.block_q <= 0 or self.block_kv <= 0:
            raise ValueError("flash tile sizes must be positive")
        if (self.window or self.seq_lens or self.kv_len) and not self.causal:
            raise ValueError(
                "window / kv_len / seq_lens describe causal masks; set causal=True"
            )
        if self.kv_len and self.kv_len < self.seq_len:
            raise ValueError(
                f"kv_len ({self.kv_len}) must be >= seq_len ({self.seq_len})"
            )
        if self.seq_lens:
            if self.kv_len:
                raise ValueError("varlen batches carry no prior context (kv_len)")
            if any(length <= 0 for length in self.seq_lens):
                raise ValueError(f"seq_lens must be positive, got {self.seq_lens}")
            if sum(self.seq_lens) != self.seq_len:
                raise ValueError(
                    f"seq_lens {self.seq_lens} must sum to seq_len {self.seq_len}"
                )

    @property
    def kv_length(self) -> int:
        return self.kv_len or self.seq_len

    @property
    def score_elements(self) -> int:
        """Surviving score elements per head -- the exact mask count."""
        if not self.causal:
            return self.seq_len * self.kv_length
        if self.seq_lens:
            return masked_elements_varlen(self.seq_lens, self.window)
        return masked_elements(self.seq_len, self.kv_length, self.window)

    @property
    def gemm_macs(self) -> int:
        """MACs of the two GEMMs (S = QK^T and O = PV) across all heads."""
        return 2 * self.heads * self.score_elements * self.head_dim

    @property
    def softmax_elements(self) -> int:
        return self.heads * self.score_elements

    def head_trips(self) -> "list[int]":
        """Visited-KV-tile count per Q tile of one head."""
        if self.seq_lens:
            return tile_trips_varlen(self.seq_lens, self.block_q, self.block_kv,
                                     self.window)
        if self.causal:
            return tile_trips(self.seq_len, self.kv_length, self.block_q,
                              self.block_kv, self.window)
        q_tiles = -(-self.seq_len // self.block_q)
        kv_tiles = -(-self.kv_length // self.block_kv)
        return [kv_tiles] * q_tiles

    def flash_segments(self) -> Tuple[FlashSegment, ...]:
        """Run-length-encoded per-head trip profile for the tile loop.

        Empty for unmasked workloads: the spec then takes the historical
        uniform-loop path, which keeps every existing unmasked schedule
        (and golden file) byte-identical.
        """
        if not self.causal:
            return ()
        return tuple(
            FlashSegment(q_tiles=q_tiles, kv_trips=trips)
            for q_tiles, trips in trip_segments(self.head_trips())
        )

    @property
    def iterations(self) -> int:
        """(Q tile, KV tile) loop iterations the kernel actually executes."""
        return self.heads * sum(self.head_trips())


@dataclass
class FlashAttentionResult:
    """Outcome of simulating FlashAttention-3 on one design.

    ``schedule_stats`` reports how the tile loop was scheduled (executed vs
    extrapolated operations, see :mod:`repro.sim.steady_state`); it is
    diagnostic only and never serialized.
    """

    design: DesignConfig
    workload: FlashAttentionWorkload
    total_cycles: int
    ideal_mac_cycles: float
    counters: Counters
    fence_poll_cycles_avg: float = 0.0
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    schedule_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def mac_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.ideal_mac_cycles / self.total_cycles)

    @property
    def mac_utilization_percent(self) -> float:
        return 100.0 * self.mac_utilization

    @property
    def fence_overhead_fraction(self) -> float:
        """Fraction of runtime spent polling in virgo_fence (Section 4.5.1)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.fence_poll_cycles_avg * self.workload.iterations / self.total_cycles


# --------------------------------------------------------------------------- #
# Softmax cost model (shared by both mappings)
# --------------------------------------------------------------------------- #

#: FP operations per score element for the online softmax with Taylor exp:
#: row-max reduction, subtract, 2nd-order exp (2 mul + 2 add), running-sum
#: reduction, probability write, running-max correction and the O-tile
#: rescale that consumes one multiply-add per score element.
SOFTMAX_FLOPS_PER_ELEMENT = 20

#: Non-FPU instructions (loads/stores of S, P and O tiles, address updates,
#: loop control) per FPU instruction in the softmax inner loop.
SOFTMAX_OVERHEAD_INSTRUCTION_RATIO = 1.0


def _softmax_cycles(design: DesignConfig, elements: int, cores_share: float = 1.0) -> int:
    """Cycles for the SIMT cores to run softmax over ``elements`` scores."""
    cluster = design.cluster
    lanes = cluster.cores * cluster.core.lanes * cores_share
    flops = elements * SOFTMAX_FLOPS_PER_ELEMENT
    fpu_cycles = flops / lanes
    issue_cycles = fpu_cycles * (1.0 + SOFTMAX_OVERHEAD_INSTRUCTION_RATIO)
    return max(1, int(max(fpu_cycles, issue_cycles / design.cluster.core.issue_width)))


def _softmax_counters(design: DesignConfig, elements: int) -> Counters:
    counters = Counters()
    flops = elements * SOFTMAX_FLOPS_PER_ELEMENT
    lanes = design.cluster.core.lanes
    fpu_instructions = flops / lanes
    overhead_instructions = fpu_instructions * SOFTMAX_OVERHEAD_INSTRUCTION_RATIO
    counters.add("core.fpu.ops", flops)
    counters.add("core.issue.instructions", fpu_instructions + overhead_instructions)
    counters.add("core.alu.ops", overhead_instructions * lanes / 2)
    counters.add("core.lsu.requests", overhead_instructions / 2)
    counters.add("core.issue.rf_read_words", 2 * (flops + overhead_instructions * lanes))
    counters.add("core.writeback.rf_write_words", flops)
    counters.add("smem.core.read_words", 3 * elements)
    counters.add("smem.core.write_words", 2 * elements)
    return counters


# --------------------------------------------------------------------------- #
# Virgo mapping (Listing 1)
# --------------------------------------------------------------------------- #


class VirgoFlashAttentionKernel:
    """FlashAttention-3 mapped onto Virgo (GEMMs on the matrix unit, softmax on SIMT)."""

    #: Average cycles the leader warp spends in the fence polling loop per
    #: iteration (the paper measures ~260 cycles, 2.4% of runtime).
    FENCE_POLL_CYCLES = 260
    BARRIER_CYCLES = 24

    def __init__(self, design: DesignConfig | None = None) -> None:
        self.design = design or virgo(DataType.FP32)
        if self.design.style is not IntegrationStyle.DISAGGREGATED:
            raise ValueError("VirgoFlashAttentionKernel requires the disaggregated design")
        self.matrix_unit = GemminiMatrixUnit(
            self.design.matrix_unit, self.design.cluster.shared_memory
        )
        self.dram = DramChannel(self.design.soc.dram)
        self.dma = DmaEngine(self.design.cluster.dma, self.dram)

    def simulate(
        self, workload: FlashAttentionWorkload, full_expansion: bool = False
    ) -> FlashAttentionResult:
        bq, bkv, d = workload.block_q, workload.block_kv, workload.head_dim

        # Per-iteration GEMM timings on the cluster matrix unit.
        gemm1 = self.matrix_unit.operation_timing(bq, bkv, d)      # S = Q K^T
        gemm2 = self.matrix_unit.operation_timing(bq, d, bkv)      # O += P V
        matrix_cycles = gemm1.total_cycles + gemm2.total_cycles

        softmax_cycles = _softmax_cycles(self.design, bq * bkv)
        kv_bytes = 2 * bkv * d * 4  # FP32 K and V tiles
        dma_cycles = self.dma.transfer_cycles(kv_bytes)

        # Software pipeline: per iteration the matrix unit, the SIMT softmax
        # and the next KV tile's DMA all run concurrently and re-synchronize
        # at the fence + cluster barrier, so each iteration is paced by its
        # slowest pipe plus the sync cost.  Masked workloads visit only the
        # KV tiles their trip profile keeps.  The loop is scheduled through
        # the steady-state engine (O(#segments), independent of ``heads x
        # q_tiles x kv_tiles``) unless ``full_expansion`` asks for the
        # materialized graph.
        spec = FlashLoopSpec(
            iterations=workload.iterations,
            pipes=(
                FlashPipe(kind="matrix", resource="matrix", cycles=matrix_cycles),
                FlashPipe(kind="softmax", resource="simt", cycles=softmax_cycles),
                FlashPipe(kind="dma", resource="dma", cycles=dma_cycles),
            ),
            sync_cycles=self.FENCE_POLL_CYCLES + self.BARRIER_CYCLES,
            # Prologue (first Q/K/V loads) and epilogue (per-Q-tile O store).
            prologue_cycles=self.dma.transfer_cycles(3 * bq * d * 4),
            epilogue_cycles=self.dma.transfer_cycles(bq * d * 4),
            epilogue_count=workload.seq_len // bq,
            trip_profile=workload.flash_segments(),
            profile_repeats=workload.heads if workload.causal else 1,
        )
        schedule = execute_flash_loop(spec, full_expansion=full_expansion)

        counters = self._counters(workload, gemm1, gemm2)
        ideal = workload.gemm_macs / float(self.design.cluster.total_macs_per_cycle)
        return FlashAttentionResult(
            design=self.design,
            workload=workload,
            total_cycles=schedule.total_cycles,
            ideal_mac_cycles=ideal,
            counters=counters,
            fence_poll_cycles_avg=self.FENCE_POLL_CYCLES,
            phase_cycles=dict(schedule.kind_cycles),
            schedule_stats=schedule.stats(),
        )

    def _counters(self, workload: FlashAttentionWorkload, gemm1, gemm2) -> Counters:
        counters = Counters()
        iterations = workload.iterations
        bq, bkv, d = workload.block_q, workload.block_kv, workload.head_dim

        per_iter = Counters()
        per_iter.add("matrix_unit.pe.macs", bq * bkv * d + bq * d * bkv)
        operand_words = (
            self.matrix_unit.smem_read_bytes(bq, bkv, d)
            + self.matrix_unit.smem_read_bytes(bq, d, bkv)
        ) // 4
        per_iter.add("smem.matrix.read_words", operand_words)
        per_iter.add("matrix_unit.smem_interface_words", operand_words)
        per_iter.add("matrix_unit.control_events", 2)
        per_iter.add("accum.write_words", bq * (bkv + d))
        per_iter.add("accum.read_words", bq * d)
        per_iter.add("mmio.stores", 12)
        per_iter.add("mmio.commands", 2)
        per_iter.add("mmio.loads", self.FENCE_POLL_CYCLES // 10)
        per_iter.add("core.issue.instructions", 40)
        per_iter.add("dma.bytes", 2 * bkv * d * 4)
        per_iter.add("dma.descriptors", 2)
        per_iter.add("l2.bytes", 2 * bkv * d * 4)
        per_iter.add("dram.bytes", 2 * bkv * d * 4)
        per_iter.add("smem.dma.write_words", 2 * bkv * d)
        per_iter.add("sync.barrier_requests", self.design.cluster.cores)
        per_iter.add("sync.barriers_released", 1)
        per_iter.merge(_softmax_counters(self.design, bq * bkv))

        counters.merge(per_iter.scaled(iterations))
        return counters


# --------------------------------------------------------------------------- #
# Ampere-style mapping (warp-specialized ping-pong scheduling)
# --------------------------------------------------------------------------- #


class AmpereFlashAttentionKernel:
    """FlashAttention-3 on the tightly-coupled Ampere-style baseline.

    The 8 warps of each core split into two groups of four; one group issues
    the synchronous HMMA sequences of the two GEMMs while the other runs the
    softmax, alternating every KV tile (ping-pong).  Both groups share the
    core's single issue port, register file and tensor core, which is why the
    achieved MAC utilization is far lower than Virgo's.
    """

    BARRIER_CYCLES = 24

    def __init__(self, design: DesignConfig | None = None) -> None:
        self.design = design or ampere_style(DataType.FP32)
        if self.design.style is not IntegrationStyle.TIGHTLY_COUPLED_DMA:
            raise ValueError("AmpereFlashAttentionKernel requires the Ampere-style design")
        self.tensor_core = VoltaTensorCore(self.design.matrix_unit)
        self.core = VortexCore(self.design.cluster.core)
        self.dram = DramChannel(self.design.soc.dram)
        self.dma = DmaEngine(self.design.cluster.dma, self.dram)

    def _iteration_programs(self, workload: FlashAttentionWorkload):
        """Warp programs of one core for one KV-tile iteration."""
        design = self.design
        cluster = design.cluster
        unit = design.matrix_unit
        lanes = cluster.core.lanes
        bq, bkv, d = workload.block_q, workload.block_kv, workload.head_dim

        gemm_macs = bq * bkv * d + bq * d * bkv
        tile_ops_total = gemm_macs // unit.tile_macs
        gemm_warps = cluster.core.warps // 2
        tile_ops_per_warp = max(
            1, tile_ops_total // (cluster.cores * gemm_warps)
        )

        sequence = self.tensor_core.hmma_sequence()
        a_bytes = unit.tile_m * unit.tile_k * unit.dtype.bytes
        b_bytes = unit.tile_k * unit.tile_n * unit.dtype.bytes

        gemm_program = WarpProgram(name="fa_gemm_warp")
        for _ in range(tile_ops_per_warp):
            gemm_program.emit_class(OpClass.ALU, repeat=4)
            _fragment_loads(gemm_program, a_bytes, lanes)
            _fragment_loads(gemm_program, b_bytes, lanes)
            for instruction in sequence.as_instructions():
                gemm_program.emit(instruction)
            gemm_program.emit_class(OpClass.ALU, repeat=2)
            gemm_program.emit_class(OpClass.BRANCH, repeat=1)
        gemm_program.emit_class(OpClass.VX_BAR, repeat=1)

        softmax_elements = bq * bkv
        softmax_warps = cluster.core.warps - gemm_warps
        flops_per_warp = softmax_elements * SOFTMAX_FLOPS_PER_ELEMENT / (
            cluster.cores * softmax_warps
        )
        softmax_program = WarpProgram(name="fa_softmax_warp")
        fpu_instructions = max(1, int(flops_per_warp / lanes))
        for index in range(fpu_instructions):
            softmax_program.emit_class(OpClass.FPU, reg_reads=2, reg_writes=1)
            # Interleaved loads/addressing/loop control of the softmax loop.
            if index % max(1, int(1.0 / max(SOFTMAX_OVERHEAD_INSTRUCTION_RATIO, 0.01))) == 0:
                softmax_program.emit_class(OpClass.ALU, reg_reads=2, reg_writes=1)
        # Score tile loads/stores between shared memory and registers.
        softmax_program.emit_class(
            OpClass.LOAD_SHARED,
            repeat=max(1, softmax_elements // (cluster.cores * softmax_warps * lanes)),
            bytes_accessed=4 * lanes,
        )
        softmax_program.emit_class(
            OpClass.STORE_SHARED,
            repeat=max(1, softmax_elements // (cluster.cores * softmax_warps * lanes)),
            bytes_accessed=4 * lanes,
        )
        softmax_program.emit_class(OpClass.VX_BAR, repeat=1)

        programs = [gemm_program] * gemm_warps + [softmax_program] * softmax_warps
        leader = WarpProgram(name="fa_leader")
        leader.emit_class(OpClass.DMA_PROGRAM, repeat=4)
        programs[0] = WarpProgram(name="fa_gemm_leader").extend(gemm_program).extend(leader)
        return programs, tile_ops_per_warp * gemm_warps

    def simulate(
        self, workload: FlashAttentionWorkload, full_expansion: bool = False
    ) -> FlashAttentionResult:
        programs, tile_ops_per_core = self._iteration_programs(workload)
        execution = self.core.execute(programs)

        bkv, d = workload.block_kv, workload.head_dim
        kv_bytes = 2 * bkv * d * 4
        dma_cycles = self.dma.transfer_cycles(kv_bytes)

        # Ping-pong iteration: the warp-specialized core phase (GEMM + softmax
        # groups, closed by the core barrier) overlaps only with the DMA of
        # the next KV tile; the slower of the two paces the loop.  Masked
        # workloads skip the KV tiles their trip profile rules out.
        spec = FlashLoopSpec(
            iterations=workload.iterations,
            pipes=(
                FlashPipe(
                    kind="core",
                    resource="core",
                    cycles=execution.cycles + self.BARRIER_CYCLES,
                ),
                FlashPipe(kind="dma", resource="dma", cycles=dma_cycles),
            ),
            prologue_cycles=self.dma.transfer_cycles(3 * workload.block_q * d * 4),
            trip_profile=workload.flash_segments(),
            profile_repeats=workload.heads if workload.causal else 1,
        )
        schedule = execute_flash_loop(spec, full_expansion=full_expansion)

        counters = self._counters(workload, execution.counters, tile_ops_per_core)
        ideal = workload.gemm_macs / float(self.design.cluster.total_macs_per_cycle)
        return FlashAttentionResult(
            design=self.design,
            workload=workload,
            total_cycles=schedule.total_cycles,
            ideal_mac_cycles=ideal,
            counters=counters,
            phase_cycles=dict(schedule.kind_cycles),
            schedule_stats=schedule.stats(),
        )

    def _counters(
        self, workload: FlashAttentionWorkload, core_counters: Counters, tile_ops_per_core: int
    ) -> Counters:
        counters = Counters()
        cluster = self.design.cluster
        iterations = workload.iterations

        per_iter = Counters()
        per_iter.merge(core_counters.scaled(cluster.cores))
        tile_ops = tile_ops_per_core * cluster.cores
        per_tile = Counters()
        self.tensor_core.record_tile_events(per_tile)
        per_iter.merge(per_tile.scaled(tile_ops))
        per_iter.add("matrix_unit.pe.macs", tile_ops * self.design.matrix_unit.tile_macs)

        kv_bytes = 2 * workload.block_kv * workload.head_dim * 4
        per_iter.add("dma.bytes", kv_bytes)
        per_iter.add("dma.descriptors", 2)
        per_iter.add("l2.bytes", kv_bytes)
        per_iter.add("dram.bytes", kv_bytes)
        per_iter.add("smem.dma.write_words", kv_bytes // 4)

        counters.merge(per_iter.scaled(iterations))
        return counters


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #


def simulate_flash_attention(
    design: DesignKind | DesignConfig,
    workload: FlashAttentionWorkload | None = None,
    full_expansion: bool = False,
) -> FlashAttentionResult:
    """Simulate FlashAttention-3 on Virgo or the Ampere-style baseline.

    ``full_expansion=True`` materializes the whole (Q tile, KV tile) loop on
    the taskgraph scheduler instead of the steady-state-compressed default;
    both paths are bit-identical (``tests/test_flash_compression.py``).
    """
    workload = workload or FlashAttentionWorkload()
    if isinstance(design, DesignKind):
        if design is DesignKind.VIRGO:
            return VirgoFlashAttentionKernel().simulate(workload, full_expansion)
        if design is DesignKind.AMPERE:
            return AmpereFlashAttentionKernel().simulate(workload, full_expansion)
        design = make_design(design, DataType.FP32)
    if design.style is IntegrationStyle.DISAGGREGATED:
        return VirgoFlashAttentionKernel(design).simulate(workload, full_expansion)
    if design.style is IntegrationStyle.TIGHTLY_COUPLED_DMA:
        return AmpereFlashAttentionKernel(design).simulate(workload, full_expansion)
    raise ValueError(
        "the paper evaluates FlashAttention-3 on the Virgo and Ampere-style designs only"
    )
