"""Kernel models: tiled GEMM per design, FlashAttention-3, heterogeneous units."""

from repro.kernels.gemm import (
    GemmWorkload,
    GemmKernelResult,
    simulate_gemm,
    GEMM_SIZES,
)
from repro.kernels.flash_attention import (
    FlashAttentionWorkload,
    FlashAttentionResult,
    simulate_flash_attention,
    flash_attention_reference,
)
from repro.kernels.heterogeneous import HeterogeneousResult, simulate_heterogeneous

__all__ = [
    "GemmWorkload",
    "GemmKernelResult",
    "simulate_gemm",
    "GEMM_SIZES",
    "FlashAttentionWorkload",
    "FlashAttentionResult",
    "simulate_flash_attention",
    "flash_attention_reference",
    "HeterogeneousResult",
    "simulate_heterogeneous",
]
