"""In-process memoization of kernel timing results (the *timing cache*).

Model workloads re-simulate the same kernel shapes over and over: every
transformer block of a GPT lowers to the same handful of GEMM / attention /
SIMT shapes, so a 24-layer model needs ~3 distinct kernel simulations, not
~75.  This subsystem makes that reuse automatic: the runner entry points
(:func:`repro.runner.run_gemm`, :func:`repro.runner.run_flash_attention`)
and the SIMT cost model in :mod:`repro.workloads.lowering` consult a
process-wide :class:`TimingCache` before simulating, and publish their
results into it afterwards.

Cache-key contract
------------------
An entry is keyed by a SHA-256 over the canonical JSON encoding of:

* ``SCHEMA_VERSION`` -- bump it whenever a timing model changes behaviour,
  so snapshots from older code can never satisfy newer lookups;
* the kernel *kind* (``"gemm"``, ``"flash"``, ``"simt"``, ...);
* the **full design configuration content** -- every field of the
  :class:`~repro.config.soc.DesignConfig` tree, via
  :func:`canonical_value`, so any hardware parameter change (bank counts,
  MAC widths, clock, DMA, ...) transparently invalidates exactly the
  affected entries;
* the workload content: all fields of the workload dataclass (including
  its dtype) for GEMM and FlashAttention, or ``elements`` and
  ``flops_per_element`` for SIMT kernels.

Nothing else may influence a timing result; if a new input does, it must be
folded into the key (that is the invalidation rule).  Entries are returned
**by reference** -- treat cached result objects and their counters as
immutable.

Persistence
-----------
Entries live for the process lifetime by default, but a snapshot of the
cache can be persisted next to the batch runner's on-disk result cache:
:func:`persistent_timing_cache` loads ``<dir>/timing-cache.pkl`` on entry
and atomically merges/flushes it on exit (temp-file + rename, union with
whatever another process flushed in the meantime).  The snapshot container
is stamped with ``SCHEMA_VERSION`` and ``SNAPSHOT_FORMAT_VERSION``;
:meth:`TimingCache.load` orphans (skips wholesale) snapshots from any other
schema or container format, so stale entries can never satisfy fresh
lookups -- per-entry invalidation still rides the key contract above
(design fingerprint + workload content + schema version inside every key).
The CLI ``serve`` and ``model`` subcommands opt in via ``--cache-dir``.

Registering a new kernel kind
-----------------------------
A new timing model opts in by wrapping its entry point::

    cache = timing_cache()
    key = cache.key("mykernel", design, {"field": value, ...})
    return cache.get_or_compute(key, lambda: simulate_mykernel(...))

where the payload dict contains every workload parameter the result depends
on.  ``canonical_value`` handles dataclasses and enums, so passing the
workload object itself is usually enough.

Worker seeding
--------------
The batch runner (:mod:`repro.workloads.batch`) serializes a
:meth:`TimingCache.snapshot` of the parent's warm cache into each process
pool worker via the executor initializer, so sweeps start warm instead of
re-simulating shared shapes per worker.
"""

from repro.perf.cache import (
    SCHEMA_VERSION,
    SNAPSHOT_FILENAME,
    SNAPSHOT_FORMAT_VERSION,
    TimingCache,
    cache_disabled,
    canonical_value,
    design_fingerprint,
    load_snapshot,
    persistent_timing_cache,
    save_snapshot,
    snapshot_path,
    timing_cache,
)

__all__ = [
    "SCHEMA_VERSION",
    "SNAPSHOT_FILENAME",
    "SNAPSHOT_FORMAT_VERSION",
    "TimingCache",
    "cache_disabled",
    "canonical_value",
    "design_fingerprint",
    "load_snapshot",
    "persistent_timing_cache",
    "save_snapshot",
    "snapshot_path",
    "timing_cache",
]
