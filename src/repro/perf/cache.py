"""The in-process timing cache: content-hashed memoization of kernel timings.

See the :mod:`repro.perf` package docstring for the cache-key contract and
usage guidance.
"""

from __future__ import annotations

import enum
import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, Iterator, Mapping, TypeVar

from repro.config.soc import DesignConfig

#: Bump when a timing model changes shape, so stale entries can never be
#: confused with fresh ones (relevant when snapshots cross process borders).
SCHEMA_VERSION = 1

T = TypeVar("T")


def canonical_value(value: Any) -> Any:
    """Encode ``value`` into plain JSON-serializable data, deterministically.

    Dataclasses map to ``{field: value}`` dicts, enums to their ``value``;
    containers are converted recursively.  This is the normalization the
    cache key is computed over, so anything that changes the canonical form
    changes the key.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical_value(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    return value


@lru_cache(maxsize=None)
def design_fingerprint(design: DesignConfig) -> str:
    """Content hash over every field of a design configuration tree.

    Memoized on the (frozen, hashable) config object so repeated kernels on
    the same design pay the canonicalization cost once.
    """
    canonical = json.dumps(canonical_value(design), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _derive_key(kind: str, design: DesignConfig, payload_items: tuple) -> str:
    canonical = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "design": design_fingerprint(design),
            "payload": canonical_value(dict(payload_items)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_derive_key_cached = lru_cache(maxsize=65536)(_derive_key)


class TimingCache:
    """A process-local map from kernel-content keys to timing results.

    Entries are shared objects: callers must treat cached results (and the
    :class:`~repro.sim.stats.Counters` inside them) as immutable.  The cache
    is thread-safe; hit/miss counters are cumulative for the process and can
    be sampled around a region to attribute activity to it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def key(self, kind: str, design: DesignConfig, payload: Mapping[str, Any]) -> str:
        """Content hash identifying one kernel invocation's result.

        Key derivation is pure, so for hashable payloads (frozen workload
        dataclasses, scalars) the digest itself is memoized -- on a warm
        cache the lookup cost is a hash probe, not a JSON round-trip.
        """
        try:
            return _derive_key_cached(kind, design, tuple(sorted(payload.items())))
        except TypeError:  # unhashable payload value: derive without memoizing
            return _derive_key(kind, design, tuple(sorted(payload.items())))

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """Return the cached result for ``key``, computing and storing on miss."""
        if not self.enabled:
            return compute()
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
        # Compute outside the lock: kernel simulations are pure, so a rare
        # duplicate computation is cheaper than serializing all of them.
        # Whoever stores first wins; losers return the stored entry so one
        # shared object circulates per key.
        result = compute()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self._entries[key] = result
            self.misses += 1
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def snapshot(self) -> Dict[str, Any]:
        """A picklable copy of the entries, for seeding worker processes."""
        with self._lock:
            return dict(self._entries)

    def load(self, entries: Mapping[str, Any]) -> None:
        """Merge ``entries`` (typically a :meth:`snapshot`) into the cache."""
        with self._lock:
            for key, value in entries.items():
                self._entries.setdefault(key, value)


_GLOBAL_CACHE = TimingCache()


def timing_cache() -> TimingCache:
    """The process-wide timing cache used by the runner entry points."""
    return _GLOBAL_CACHE


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Temporarily bypass the global cache (cold-path measurement, tests)."""
    cache = timing_cache()
    previous = cache.enabled
    cache.enabled = False
    try:
        yield
    finally:
        cache.enabled = previous
