"""The in-process timing cache: content-hashed memoization of kernel timings.

See the :mod:`repro.perf` package docstring for the cache-key contract and
usage guidance.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Mapping, TypeVar, Union

from repro.config.soc import DesignConfig
from repro.obs.phase import phase

#: Bump when a timing model changes shape, so stale entries can never be
#: confused with fresh ones (relevant when snapshots cross process borders).
SCHEMA_VERSION = 1

#: Version of the snapshot *container* (the dict ``snapshot()`` returns and
#: ``save_snapshot`` pickles).  Bump when the container shape changes, so an
#: old on-disk file is orphaned instead of misread.
SNAPSHOT_FORMAT_VERSION = 1

#: File name of the on-disk snapshot, stored next to the batch runner's
#: result cache when one is configured.
SNAPSHOT_FILENAME = "timing-cache.pkl"

T = TypeVar("T")


def canonical_value(value: Any) -> Any:
    """Encode ``value`` into plain JSON-serializable data, deterministically.

    Dataclasses map to ``{field: value}`` dicts, enums to their ``value``;
    containers are converted recursively.  This is the normalization the
    cache key is computed over, so anything that changes the canonical form
    changes the key.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical_value(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    return value


@lru_cache(maxsize=None)
def design_fingerprint(design: DesignConfig) -> str:
    """Content hash over every field of a design configuration tree.

    Memoized on the (frozen, hashable) config object so repeated kernels on
    the same design pay the canonicalization cost once.
    """
    canonical = json.dumps(canonical_value(design), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _derive_key(kind: str, design: DesignConfig, payload_items: tuple) -> str:
    canonical = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "design": design_fingerprint(design),
            "payload": canonical_value(dict(payload_items)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_derive_key_cached = lru_cache(maxsize=65536)(_derive_key)


class TimingCache:
    """A process-local map from kernel-content keys to timing results.

    Entries are shared objects: callers must treat cached results (and the
    :class:`~repro.sim.stats.Counters` inside them) as immutable.  The cache
    is thread-safe; hit/miss counters are cumulative for the process and can
    be sampled around a region to attribute activity to it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: Bumped on every :meth:`clear`.  Caches *derived from* timing-cache
        #: contents key their validity on this counter so clearing the
        #: timing cache clears them too.
        self.generation = 0
        self._entries: Dict[str, Any] = {}
        #: Named auxiliary memo tables (e.g. the serving iteration memo)
        #: that ride along with the cache: cleared on :meth:`clear`,
        #: included in :meth:`snapshot` / :meth:`load` under the same schema
        #: gating.  Entries must be picklable plain data keyed by content.
        self._namespaces: Dict[str, Dict[Any, Any]] = {}
        self._lock = threading.Lock()

    def namespace(self, name: str) -> Dict[Any, Any]:
        """A named memo table sharing this cache's lifecycle.

        Higher-level memos whose entries are *derived from* cached timing
        results (and therefore must be invalidated together with them) store
        here instead of in module globals: the table empties on
        :meth:`clear` and persists/loads with the snapshot.  The returned
        dict is the live table -- callers own their key/value hygiene
        (content-addressed keys, immutable plain-data values).

        Unlike :meth:`get_or_compute`, namespace tables are *not* guarded
        against concurrent mutation: callers mutate the returned dict
        directly, so mutating a table while another thread snapshots the
        cache is a data race.  The current consumers respect that contract
        -- the serving scheduler runs single-threaded, and the persistence
        layer flushes after runs complete.
        """
        with self._lock:
            return self._namespaces.setdefault(name, {})

    def key(self, kind: str, design: DesignConfig, payload: Mapping[str, Any]) -> str:
        """Content hash identifying one kernel invocation's result.

        Key derivation is pure, so for hashable payloads (frozen workload
        dataclasses, scalars) the digest itself is memoized -- on a warm
        cache the lookup cost is a hash probe, not a JSON round-trip.
        """
        try:
            return _derive_key_cached(kind, design, tuple(sorted(payload.items())))
        except TypeError:  # unhashable payload value: derive without memoizing
            return _derive_key(kind, design, tuple(sorted(payload.items())))

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """Return the cached result for ``key``, computing and storing on miss."""
        if not self.enabled:
            return compute()
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
        # Compute outside the lock: kernel simulations are pure, so a rare
        # duplicate computation is cheaper than serializing all of them.
        # Whoever stores first wins; losers return the stored entry so one
        # shared object circulates per key.
        result = compute()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self._entries[key] = result
            self.misses += 1
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def size_signature(self) -> Dict[str, int]:
        """Entry counts per store (timing entries + each namespace table).

        A cheap growth probe: the persistence layer flushes when any count
        increased, so a run that only grew a derived memo (its kernel
        entries all warm from disk) still persists that progress.
        """
        with self._lock:
            signature = {"": len(self._entries)}
            for name, table in self._namespaces.items():
                signature[name] = len(table)
            return signature

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def credit_hits(self, count: int) -> None:
        """Record ``count`` lookups that were skipped by a higher-level memo.

        When a coarser cache (e.g. the serving iteration memo) reuses a
        result that covers several kernel-cache lookups, crediting those
        lookups as hits keeps cross-layer accounting consistent: a memoized
        run reports the same lookup totals a non-memoized warm run would.
        No-op while the cache is disabled (a disabled cache counts nothing).
        """
        if count <= 0 or not self.enabled:
            return
        with self._lock:
            self.hits += count

    def clear(self) -> None:
        """Drop all entries (and namespace tables), reset the counters."""
        with self._lock:
            self._entries.clear()
            for table in self._namespaces.values():
                table.clear()
            self.hits = 0
            self.misses = 0
            self.generation += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def snapshot(self) -> Dict[str, Any]:
        """A picklable, schema-stamped copy of the entries.

        The snapshot is a versioned container --
        ``{"format", "schema", "entries", "namespaces"}`` -- so consumers
        (worker seeding, the on-disk persistence layer) can tell which code
        generation wrote it and orphan stale entries instead of misreading
        them.  Namespace memo tables (see :meth:`namespace`) ride along so
        derived memos survive process borders together with the entries
        they were computed from.
        """
        with self._lock:
            return {
                "format": SNAPSHOT_FORMAT_VERSION,
                "schema": SCHEMA_VERSION,
                "entries": dict(self._entries),
                "namespaces": {
                    name: dict(table)
                    for name, table in self._namespaces.items()
                    if table
                },
            }

    def load(self, snapshot: Mapping[str, Any]) -> int:
        """Merge a :meth:`snapshot` into the cache; returns entries merged.

        Snapshots stamped with a different schema or container format are
        *orphaned* -- skipped wholesale, never partially loaded -- because a
        timing-model change makes old results wrong for new lookups even
        when the keys happen to collide.  A bare ``{key: entry}`` mapping
        (the pre-versioned snapshot shape) is accepted for compatibility and
        treated as current-schema.  The count returned covers timing entries
        only; namespace tables merge alongside.
        """
        entries: Mapping[str, Any] = snapshot
        namespaces: Mapping[str, Mapping[Any, Any]] = {}
        if "format" in snapshot or "schema" in snapshot:
            # A stamped container.  The stamps are checked *before* the
            # payload shape: a future format that restructures "entries"
            # must be orphaned by its stamp, never fall through to the
            # legacy branch and have its container keys merged as entries.
            # (Legacy bare mappings can't collide -- their keys are SHA-256
            # hex digests, never "format"/"schema".)
            if snapshot.get("schema") != SCHEMA_VERSION:
                return 0
            if snapshot.get("format") != SNAPSHOT_FORMAT_VERSION:
                return 0
            stamped = snapshot.get("entries")
            if not isinstance(stamped, Mapping):
                return 0
            entries = stamped
            loaded = snapshot.get("namespaces")
            if isinstance(loaded, Mapping):
                namespaces = loaded
        merged = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    merged += 1
            for name, table in namespaces.items():
                target = self._namespaces.setdefault(name, {})
                for key, value in table.items():
                    target.setdefault(key, value)
        return merged


_GLOBAL_CACHE = TimingCache()


def timing_cache() -> TimingCache:
    """The process-wide timing cache used by the runner entry points."""
    return _GLOBAL_CACHE


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Temporarily bypass the global cache (cold-path measurement, tests)."""
    cache = timing_cache()
    previous = cache.enabled
    cache.enabled = False
    try:
        yield
    finally:
        cache.enabled = previous


# --------------------------------------------------------------------------- #
# On-disk snapshot persistence
# --------------------------------------------------------------------------- #


def snapshot_path(directory: Union[str, Path]) -> Path:
    """Where the persistent snapshot lives inside a cache directory."""
    return Path(directory) / SNAPSHOT_FILENAME


def load_snapshot(
    path: Union[str, Path], cache: "TimingCache" | None = None
) -> int:
    """Merge an on-disk snapshot into ``cache``; returns entries merged.

    Missing, unreadable, corrupt or stale-schema files all count as a cold
    start (return 0) -- the snapshot is an accelerator, never a dependency.
    """
    cache = cache if cache is not None else timing_cache()
    with phase("cache.load", path=str(path)):
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except FileNotFoundError:
            return 0
        except Exception:
            # Torn writes, newer pickle protocols, renamed classes: unpickling
            # hostile bytes can raise nearly anything (UnpicklingError,
            # ValueError, AttributeError, ...), and the snapshot is a pure
            # accelerator -- any unreadable file is a cold start, and the next
            # save overwrites it atomically.
            return 0
        if not isinstance(snapshot, Mapping):
            return 0
        return cache.load(snapshot)


def save_snapshot(
    path: Union[str, Path], cache: "TimingCache" | None = None
) -> int:
    """Atomically write ``cache`` merged with the existing on-disk snapshot.

    Existing same-schema entries on disk are folded in first, so concurrent
    processes flushing different working sets converge on the union instead
    of overwriting each other wholesale; the write is temp-file + rename, so
    readers never observe a torn snapshot.  Returns the entry count written.
    """
    cache = cache if cache is not None else timing_cache()
    path = Path(path)
    with phase("cache.save", path=str(path)):
        path.parent.mkdir(parents=True, exist_ok=True)
        # Fold the on-disk union through a scratch cache: disk entries load
        # first, then are shadowed by nothing (same keys means same content by
        # the key contract), and our own entries fill the rest.
        merged = TimingCache()
        load_snapshot(path, merged)
        merged.load(cache.snapshot())
        snapshot = merged.snapshot()
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(snapshot["entries"])


@contextmanager
def persistent_timing_cache(
    directory: Union[str, Path], cache: "TimingCache" | None = None
) -> Iterator[Path]:
    """Load the snapshot in ``directory`` on entry, flush back on exit.

    The CLI entry points (``python -m repro serve/model --cache-dir ...``)
    and the batch runner wrap their runs in this context so repeat
    invocations start from a warm kernel-timing cache: the first process
    pays every distinct kernel simulation once, every later process replays
    them as cache hits.  Flushing is skipped when the run added no entries
    (pure-hit runs leave the file untouched).
    """
    cache = cache if cache is not None else timing_cache()
    path = snapshot_path(directory)
    load_snapshot(path, cache)
    before = cache.size_signature()
    try:
        yield path
    finally:
        after = cache.size_signature()
        if any(count > before.get(name, 0) for name, count in after.items()):
            save_snapshot(path, cache)
