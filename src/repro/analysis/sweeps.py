"""Design-space sweeps around the Virgo design point.

The paper positions Virgo as a *generator* (Section 5.2): cores per cluster,
clusters, systolic-array geometry and memory widths are all parameters.
These sweeps exercise that flexibility with the timing/energy models:

* :func:`mesh_scaling_sweep` -- grow the systolic array (and the shared-memory
  port feeding it) and report utilization, power and energy per FLOP: the
  cluster-level integration keeps scaling because no register file is in the
  way.
* :func:`cluster_scaling_sweep` -- add clusters to the SoC and report the
  runtime scaling of a fixed GEMM.
* :func:`dma_bandwidth_sweep` -- vary the DMA/global bandwidth to find the
  point where data delivery, not the matrix unit, limits utilization.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.config.presets import virgo
from repro.config.soc import DesignConfig
from repro.kernels.gemm import GemmWorkload
from repro.runner import run_gemm


def _with_mesh(base: DesignConfig, mesh: int) -> DesignConfig:
    """A Virgo variant with a mesh x mesh systolic array and a matched SMEM port."""
    unit = replace(
        base.matrix_unit,
        systolic_rows=mesh,
        systolic_cols=mesh,
        macs_per_cycle=mesh * mesh,
        tile_m=8 * mesh,
        tile_n=4 * mesh,
        tile_k=8 * mesh,
        accumulator_bytes=max(base.matrix_unit.accumulator_bytes, 8 * mesh * 4 * mesh * 4),
    )
    shared_memory = replace(base.soc.cluster.shared_memory, subbanks=max(4, mesh // 2))
    cluster = replace(base.soc.cluster, matrix_unit=unit, shared_memory=shared_memory)
    return replace(base, soc=replace(base.soc, cluster=cluster))


def mesh_scaling_sweep(size: int = 1024, meshes=(8, 16, 32)) -> List[Dict[str, float]]:
    """Scale the Virgo matrix unit and report utilization / power / energy-per-FLOP."""
    base = virgo()
    workload = GemmWorkload.square(size)
    results = []
    for mesh in meshes:
        design = _with_mesh(base, mesh)
        run = run_gemm(design, workload.m)
        flops = workload.flops
        results.append(
            {
                "mesh": float(mesh),
                "macs_per_cycle": float(mesh * mesh),
                "mac_utilization_percent": run.mac_utilization_percent,
                "active_power_mw": run.active_power_mw,
                "energy_pj_per_flop": run.power.total_energy_pj / flops,
                "cycles": float(run.total_cycles),
            }
        )
    return results


def cluster_scaling_sweep(size: int = 1024, cluster_counts=(1, 2, 4)) -> List[Dict[str, float]]:
    """Add clusters to the SoC and report strong-scaling of a fixed GEMM."""
    base = virgo()
    results = []
    baseline_cycles = None
    for clusters in cluster_counts:
        design = replace(base, soc=replace(base.soc, clusters=clusters))
        run = run_gemm(design, size)
        if baseline_cycles is None:
            baseline_cycles = run.total_cycles
        results.append(
            {
                "clusters": float(clusters),
                "cycles": float(run.total_cycles),
                "speedup": baseline_cycles / run.total_cycles,
                "mac_utilization_percent": run.mac_utilization_percent,
                "active_energy_uj": run.active_energy_uj,
            }
        )
    return results


def dma_bandwidth_sweep(size: int = 512, bandwidths=(8.0, 16.0, 32.0, 64.0)) -> List[Dict[str, float]]:
    """Vary the DMA/global-memory bandwidth and find the delivery-bound region."""
    base = virgo()
    results = []
    for bandwidth in bandwidths:
        dma = replace(base.soc.cluster.dma, bytes_per_cycle=bandwidth)
        dram = replace(base.soc.dram, bandwidth_bytes_per_cycle=bandwidth)
        cluster = replace(base.soc.cluster, dma=dma)
        design = replace(base, soc=replace(base.soc, cluster=cluster, dram=dram))
        run = run_gemm(design, size)
        results.append(
            {
                "bytes_per_cycle": bandwidth,
                "mac_utilization_percent": run.mac_utilization_percent,
                "cycles": float(run.total_cycles),
            }
        )
    return results
