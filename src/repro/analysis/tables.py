"""Regeneration of the paper's tables (1 through 4)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.config.soc import DataType
from repro.config.presets import DesignKind, all_designs, gemm_design_kinds, make_design
from repro.kernels.gemm import GEMM_SIZES, GemmWorkload, smem_footprint_table
from repro.runner import run_gemm
from repro.simt.occupancy import (
    GENERATIONS,
    TABLE1_REGISTER_USAGE,
    table1_occupancies,
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table (fixed-width columns)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def table1_scaling_trends() -> Dict[str, Dict[str, float]]:
    """Table 1: GPU generation scaling trends and CUTLASS kernel occupancy.

    Throughput scaling and MACs-per-Tensor-Core come from the generation
    specs; register usage is the paper's profiled value; occupancy is
    recomputed with the register-file occupancy calculator.
    """
    occupancies = table1_occupancies()
    table: Dict[str, Dict[str, float]] = {}
    for gpu, spec in GENERATIONS.items():
        occupancy = occupancies[gpu]
        table[gpu] = {
            "tensor_fp16_tflops_rel": spec.tensor_fp16_tflops_rel,
            "cuda_fp32_tflops_rel": spec.cuda_fp32_tflops_rel,
            "tensor_cores_rel": spec.tensor_cores_rel,
            "macs_per_tensor_core": spec.macs_per_tensor_core,
            "register_usage": TABLE1_REGISTER_USAGE[gpu],
            "occupancy_percent": 100.0 * occupancy.occupancy,
            "limiting_factor": occupancy.limiting_factor,
        }
    return table


def table2_hardware_configuration() -> Dict[str, Dict[str, object]]:
    """Table 2: hardware configuration of the evaluated designs."""
    designs = all_designs()
    table: Dict[str, Dict[str, object]] = {}
    for kind, design in designs.items():
        cluster = design.cluster
        unit = design.matrix_unit
        table[kind.display_name] = {
            "cores_per_cluster": cluster.cores,
            "warps_per_core": cluster.core.warps,
            "lanes_per_warp": cluster.core.lanes,
            "shared_memory_kib": cluster.shared_memory.size_bytes // 1024,
            "smem_banks": cluster.shared_memory.banks,
            "smem_subbanks": cluster.shared_memory.subbanks,
            "l2_kib": design.soc.l2.size_bytes // 1024,
            "matrix_units": cluster.matrix_units,
            "macs_per_unit_fp16": unit.macs_per_cycle,
            "macs_per_cluster": cluster.total_macs_per_cycle,
            "tile": f"{unit.tile_m}x{unit.tile_n}x{unit.tile_k}",
            "has_dma": design.has_dma,
            "accumulator_kib": unit.accumulator_bytes // 1024,
        }
    return table


def table3_mac_utilization(
    sizes: Sequence[int] = GEMM_SIZES,
    designs: Sequence[DesignKind] | None = None,
) -> Dict[str, Dict[int, float]]:
    """Table 3: MAC utilization (%) of the GEMM kernel across designs and sizes."""
    kinds = list(designs) if designs is not None else gemm_design_kinds()
    table: Dict[str, Dict[int, float]] = {}
    for kind in kinds:
        row: Dict[int, float] = {}
        for size in sizes:
            row[size] = run_gemm(kind, size).mac_utilization_percent
        table[kind.display_name] = row
    return table


def table4_smem_footprint(size: int = 256) -> Dict[str, Dict[str, float]]:
    """Table 4: shared-memory read footprint of the 256^3 GEMM per design."""
    designs = {
        "Tightly-coupled": make_design(DesignKind.VOLTA),
        "Operand-decoupled": make_design(DesignKind.HOPPER),
        "Disaggregated": make_design(DesignKind.VIRGO),
    }
    workload = GemmWorkload.square(size, DataType.FP16)
    return smem_footprint_table(designs, workload)


def table3_rows(table: Dict[str, Dict[int, float]]) -> List[List[str]]:
    """Format the Table 3 dict for :func:`format_table`."""
    sizes = sorted(next(iter(table.values())).keys())
    rows = []
    for design, row in table.items():
        rows.append([design] + [f"{row[size]:.1f}" for size in sizes])
    return rows
