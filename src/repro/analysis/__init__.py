"""Experiment drivers and report formatting for every paper table and figure."""

from repro.analysis.tables import (
    table1_scaling_trends,
    table2_hardware_configuration,
    table3_mac_utilization,
    table4_smem_footprint,
    format_table,
)
from repro.analysis.figures import (
    figure7_area_breakdown,
    figure8_power_energy,
    figure9_soc_power_breakdown,
    figure10_core_power_breakdown,
    figure11_matrix_unit_energy,
    figure12_flash_attention,
)
from repro.analysis.report import paper_comparison, PAPER_VALUES
from repro.analysis.ablations import (
    granularity_ablation,
    accumulator_placement_ablation,
    unified_unit_ablation,
    async_interface_ablation,
    run_all_ablations,
)
from repro.analysis.sweeps import (
    mesh_scaling_sweep,
    cluster_scaling_sweep,
    dma_bandwidth_sweep,
)
from repro.analysis.model_breakdown import (
    compare_models,
    format_overlap_report,
    model_breakdown_report,
    model_kind_cycles,
    model_layer_rows,
    model_overlap_report,
    model_phase_summary,
)
from repro.analysis.fleet import (
    fleet_perf_stats,
    fleet_report,
    fleet_request_rows,
    format_fleet_report,
)
from repro.analysis.serving import (
    format_latency_report,
    latency_summary,
    percentile,
    serving_latency_report,
    serving_request_rows,
)
from repro.analysis.trace_report import (
    format_trace_summary,
    load_trace,
    trace_summary,
    validate_chrome_trace,
)

__all__ = [
    "compare_models",
    "format_overlap_report",
    "model_breakdown_report",
    "model_overlap_report",
    "model_kind_cycles",
    "model_layer_rows",
    "model_phase_summary",
    "fleet_perf_stats",
    "fleet_report",
    "fleet_request_rows",
    "format_fleet_report",
    "format_latency_report",
    "latency_summary",
    "percentile",
    "serving_latency_report",
    "serving_request_rows",
    "format_trace_summary",
    "load_trace",
    "trace_summary",
    "validate_chrome_trace",
    "granularity_ablation",
    "accumulator_placement_ablation",
    "unified_unit_ablation",
    "async_interface_ablation",
    "run_all_ablations",
    "mesh_scaling_sweep",
    "cluster_scaling_sweep",
    "dma_bandwidth_sweep",
    "table1_scaling_trends",
    "table2_hardware_configuration",
    "table3_mac_utilization",
    "table4_smem_footprint",
    "format_table",
    "figure7_area_breakdown",
    "figure8_power_energy",
    "figure9_soc_power_breakdown",
    "figure10_core_power_breakdown",
    "figure11_matrix_unit_energy",
    "figure12_flash_attention",
    "paper_comparison",
    "PAPER_VALUES",
]
