"""Regeneration of the paper's evaluation figures (7 through 12).

Each function returns the data series the corresponding figure plots (no
plotting dependency is required); the benchmark harness prints them and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.config.presets import DesignKind, gemm_design_kinds, make_design
from repro.energy.area import soc_area_breakdown
from repro.kernels.flash_attention import FlashAttentionWorkload
from repro.runner import run_all_gemm_designs, run_flash_attention, run_gemm


def figure7_area_breakdown() -> Dict[str, Dict[str, float]]:
    """Figure 7: SoC area breakdown (um^2) of Volta-style, Hopper-style and Virgo."""
    kinds = [DesignKind.VOLTA, DesignKind.HOPPER, DesignKind.VIRGO]
    return {
        kind.display_name: soc_area_breakdown(make_design(kind)) for kind in kinds
    }


def figure8_power_energy(sizes: Sequence[int] = (512, 1024)) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Figure 8: active power (mW) and energy (mJ) per design for 512^3 and 1024^3 GEMM."""
    result: Dict[int, Dict[str, Dict[str, float]]] = {}
    for size in sizes:
        runs = run_all_gemm_designs(size)
        result[size] = {
            kind.display_name: {
                "active_power_mw": run.active_power_mw,
                "active_energy_mj": run.power.total_energy_mj,
                "cycles": run.total_cycles,
            }
            for kind, run in runs.items()
        }
    return result


def figure9_soc_power_breakdown(size: int = 1024) -> Dict[str, Dict[str, float]]:
    """Figure 9: SoC active power breakdown (mW) by component for the 1024^3 GEMM."""
    runs = run_all_gemm_designs(size)
    breakdown: Dict[str, Dict[str, float]] = {}
    for kind, run in runs.items():
        energy = run.soc_breakdown()
        seconds = run.total_cycles / (run.design.soc.clock_mhz * 1e6)
        breakdown[kind.display_name] = {
            component: value * 1e-12 / seconds * 1e3
            for component, value in energy.parts_pj.items()
        }
    return breakdown


def figure10_core_power_breakdown(size: int = 1024) -> Dict[str, Dict[str, float]]:
    """Figure 10: active power breakdown (mW) within the Vortex core."""
    runs = run_all_gemm_designs(size)
    breakdown: Dict[str, Dict[str, float]] = {}
    for kind, run in runs.items():
        energy = run.core_breakdown()
        seconds = run.total_cycles / (run.design.soc.clock_mhz * 1e6)
        breakdown[kind.display_name] = {
            component: value * 1e-12 / seconds * 1e3
            for component, value in energy.parts_pj.items()
        }
    return breakdown


def figure11_matrix_unit_energy(size: int = 1024) -> Dict[str, Dict[str, float]]:
    """Figure 11: matrix-unit active energy breakdown (uJ) for the 1024^3 GEMM."""
    runs = run_all_gemm_designs(size)
    breakdown: Dict[str, Dict[str, float]] = {}
    for kind, run in runs.items():
        energy = run.matrix_unit_breakdown()
        breakdown[kind.display_name] = energy.parts_uj()
    return breakdown


def figure12_flash_attention(
    workload: FlashAttentionWorkload | None = None,
) -> Dict[str, Dict[str, object]]:
    """Figure 12 + Section 6.2: FlashAttention-3 power, energy, utilization."""
    workload = workload or FlashAttentionWorkload()
    results: Dict[str, Dict[str, object]] = {}
    for kind in (DesignKind.AMPERE, DesignKind.VIRGO):
        run = run_flash_attention(kind, workload)
        seconds = run.total_cycles / (run.design.soc.clock_mhz * 1e6)
        breakdown = run.soc_breakdown()
        results[kind.display_name] = {
            "mac_utilization_percent": run.mac_utilization_percent,
            "active_power_mw": run.active_power_mw,
            "active_energy_uj": run.active_energy_uj,
            "cycles": run.total_cycles,
            "power_breakdown_mw": {
                component: value * 1e-12 / seconds * 1e3
                for component, value in breakdown.parts_pj.items()
            },
        }
    return results


def gemm_power_reduction(size: int = 1024) -> Dict[str, float]:
    """Headline claims: Virgo's power/energy reduction vs Ampere and Hopper styles."""
    runs = run_all_gemm_designs(size)
    virgo_run = runs[DesignKind.VIRGO]
    ampere_run = runs[DesignKind.AMPERE]
    hopper_run = runs[DesignKind.HOPPER]
    return {
        "power_reduction_vs_ampere_percent": 100.0
        * (1.0 - virgo_run.active_power_mw / ampere_run.active_power_mw),
        "power_reduction_vs_hopper_percent": 100.0
        * (1.0 - virgo_run.active_power_mw / hopper_run.active_power_mw),
        "energy_reduction_vs_ampere_percent": 100.0
        * (1.0 - virgo_run.active_energy_uj / ampere_run.active_energy_uj),
        "energy_reduction_vs_hopper_percent": 100.0
        * (1.0 - virgo_run.active_energy_uj / hopper_run.active_energy_uj),
    }
