"""Paper-vs-measured comparison helpers used by EXPERIMENTS.md and the benches.

``PAPER_VALUES`` records the numbers the paper reports for every experiment
we regenerate; :func:`paper_comparison` pairs them with the values this
reproduction measures so the benchmark harness can print both side by side.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.figures import figure12_flash_attention, gemm_power_reduction
from repro.analysis.tables import table3_mac_utilization, table4_smem_footprint
from repro.kernels.heterogeneous import heterogeneous_summary, simulate_heterogeneous

#: Values reported in the paper (Tables 3-4, Sections 6.1-6.3).
PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "table3_mac_utilization_percent": {
        "Volta-style_256": 25.6,
        "Volta-style_512": 30.3,
        "Volta-style_1024": 30.3,
        "Ampere-style_256": 37.5,
        "Ampere-style_512": 45.6,
        "Ampere-style_1024": 52.3,
        "Hopper-style_256": 60.5,
        "Hopper-style_512": 72.8,
        "Hopper-style_1024": 77.0,
        "Virgo_256": 66.1,
        "Virgo_512": 77.9,
        "Virgo_1024": 86.5,
    },
    "table4_smem_footprint_mib": {
        "Tightly-coupled": 6.0,
        "Operand-decoupled": 4.0,
        "Disaggregated": 2.25,
    },
    "headline_reductions_percent": {
        "power_reduction_vs_ampere_percent": 67.3,
        "power_reduction_vs_hopper_percent": 24.2,
        "energy_reduction_vs_ampere_percent": 80.3,
        "energy_reduction_vs_hopper_percent": 32.5,
    },
    "flash_attention": {
        "virgo_mac_utilization_percent": 65.7,
        "ampere_mac_utilization_percent": 35.1,
        "energy_reduction_percent": 50.6,
        "fence_poll_cycles": 260.0,
        "fence_overhead_percent": 2.4,
    },
    "heterogeneous": {
        "parallel_utilization_percent": 59.5,
        "serial_utilization_percent": 59.7,
        "power_per_flop_increase_percent": 4.3,
    },
}


def paper_comparison() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measured-vs-paper values for the headline experiments.

    Returns ``{experiment: {metric: {"paper": x, "measured": y}}}``.
    Running this touches every kernel model, so it is the single entry point
    EXPERIMENTS.md is generated from.
    """
    comparison: Dict[str, Dict[str, Dict[str, float]]] = {}

    measured_util = table3_mac_utilization()
    util_section: Dict[str, Dict[str, float]] = {}
    for design, row in measured_util.items():
        for size, value in row.items():
            key = f"{design}_{size}"
            util_section[key] = {
                "paper": PAPER_VALUES["table3_mac_utilization_percent"][key],
                "measured": value,
            }
    comparison["table3_mac_utilization_percent"] = util_section

    footprints = table4_smem_footprint()
    comparison["table4_smem_footprint_mib"] = {
        name: {
            "paper": PAPER_VALUES["table4_smem_footprint_mib"][name],
            "measured": data["mib"],
        }
        for name, data in footprints.items()
    }

    reductions = gemm_power_reduction()
    comparison["headline_reductions_percent"] = {
        key: {"paper": PAPER_VALUES["headline_reductions_percent"][key], "measured": value}
        for key, value in reductions.items()
    }

    flash = figure12_flash_attention()
    virgo_flash = flash["Virgo"]
    ampere_flash = flash["Ampere-style"]
    energy_reduction = 100.0 * (
        1.0 - virgo_flash["active_energy_uj"] / ampere_flash["active_energy_uj"]
    )
    comparison["flash_attention"] = {
        "virgo_mac_utilization_percent": {
            "paper": PAPER_VALUES["flash_attention"]["virgo_mac_utilization_percent"],
            "measured": virgo_flash["mac_utilization_percent"],
        },
        "ampere_mac_utilization_percent": {
            "paper": PAPER_VALUES["flash_attention"]["ampere_mac_utilization_percent"],
            "measured": ampere_flash["mac_utilization_percent"],
        },
        "energy_reduction_percent": {
            "paper": PAPER_VALUES["flash_attention"]["energy_reduction_percent"],
            "measured": energy_reduction,
        },
    }

    hetero = heterogeneous_summary(simulate_heterogeneous())
    comparison["heterogeneous"] = {
        key: {"paper": PAPER_VALUES["heterogeneous"][key], "measured": value}
        for key, value in hetero.items()
        if key in PAPER_VALUES["heterogeneous"]
    }
    return comparison
