"""Fleet-level analysis: latency percentiles, goodput, availability.

Consumes a :class:`repro.workloads.fleet.FleetRunResult` and produces the
report the CLI ``fleet`` subcommand prints: fleet-wide p50/p95/p99 latency
and TTFT over finished requests, goodput and availability, the disposition
census, failover/retry activity, and per-replica occupancy under load.

Shares :func:`repro.analysis.serving.latency_summary` so an all-shed fleet
(total outage, everything degraded away) reports well-defined zeros instead
of dividing by an empty sample.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.serving import latency_summary
from repro.workloads.fleet import FleetRunResult

FLEET_REQUEST_HEADERS = [
    "request",
    "model",
    "arrival",
    "replica",
    "disposition",
    "failovers",
    "retries",
    "TTFT",
    "latency",
]


def fleet_report(result: FleetRunResult) -> Dict[str, object]:
    """The full fleet report: percentiles, dispositions, per-replica load.

    Percentiles cover finished requests only -- a shed or failed request
    has no latency, and folding zeros in would flatter the tail exactly
    when the fleet is degrading.  Goodput and the disposition census
    account for the unfinished.
    """
    finished = [request for request in result.requests if request.finished]
    report: Dict[str, object] = {
        "kind": "fleet_latency",
        "trace": result.trace,
        "policy": result.policy,
        "fleet": list(result.fleet),
        "heterogeneous": result.heterogeneous,
        "replicas": len(result.replicas),
        "requests": len(result.requests),
        "finished": len(finished),
        "total_cycles": result.total_cycles,
        "goodput": result.goodput,
        "availability": result.availability,
        "dispositions": dict(result.dispositions),
        "dispatch_count": result.dispatch_count,
        "failed_dispatches": result.failed_dispatches,
        "retry_count": result.retry_count,
        "failover_count": result.failover_count,
        "reprefill_cycles": sum(request.reprefill_cycles for request in result.requests),
        "latency_cycles": latency_summary(
            [float(request.latency_cycles) for request in finished]
        ),
        "ttft_cycles": latency_summary([float(request.ttft_cycles) for request in finished]),
        "queueing_cycles": latency_summary(
            [
                float(request.queueing_cycles)
                for request in result.requests
                if request.queueing_cycles is not None
            ]
        ),
        "replica_occupancy": {
            f"replica{replica.index}": replica.to_dict()["unit_occupancy_percent"]
            for replica in result.replicas
        },
    }
    return report


def fleet_perf_stats(result: FleetRunResult) -> Dict[str, Dict[str, int]]:
    """Process-local perf diagnostics: memo, cache and epoch activity.

    Kept out of :func:`fleet_report` deliberately -- the report (like
    ``FleetRunResult.to_dict``) is a canonical encoding that must stay
    byte-identical across cache and memo states, while these counters
    describe how *this* process happened to execute the run.
    """
    return {key: dict(value) for key, value in result.perf.items()}


def _cell(value) -> str:
    return f"{value:,}" if value is not None else "-"


def fleet_request_rows(result: FleetRunResult) -> List[List[str]]:
    """One formatted row per request for the CLI table."""
    rows = []
    for request in result.requests:
        rows.append(
            [
                request.request_id,
                request.model_family,
                f"{request.arrival_cycle:,}",
                str(request.replica) if request.replica is not None else "-",
                request.disposition,
                str(request.failovers),
                str(request.retries),
                _cell(request.ttft_cycles),
                _cell(request.latency_cycles),
            ]
        )
    return rows


def format_fleet_report(result: FleetRunResult) -> str:
    """Human-readable fleet report for the CLI ``--latency-report`` flag."""
    report = fleet_report(result)

    def line(metric: str, summary: Dict[str, float]) -> str:
        return (
            f"{metric}: p50 {summary['p50']:,.0f}  p95 {summary['p95']:,.0f}  "
            f"p99 {summary['p99']:,.0f}  mean {summary['mean']:,.0f}  "
            f"max {summary['max']:,.0f} cycles"
        )

    dispositions = "  ".join(
        f"{name} {count}" for name, count in report["dispositions"].items()
    )
    lines = [
        (
            f"fleet of {report['replicas']} ({', '.join(report['fleet'])}) "
            f"under {report['policy']}: {report['requests']} requests, "
            f"makespan {report['total_cycles']:,} cycles"
        ),
        (
            f"goodput {report['goodput']:.3f}  availability {report['availability']:.3f}  "
            f"({dispositions})"
        ),
        (
            f"dispatches {report['dispatch_count']} "
            f"({report['failed_dispatches']} failed), "
            f"retries {report['retry_count']}, failovers {report['failover_count']}, "
            f"re-prefill {report['reprefill_cycles']:,} cycles"
        ),
    ]
    if report["requests"] and not report["finished"]:
        lines.append(
            "no request finished (all shed, timed out or failed): latency and "
            "ttft percentiles are empty, zeros below are placeholders"
        )
    lines.append(line("latency", report["latency_cycles"]))
    lines.append(line("ttft", report["ttft_cycles"]))
    lines.append(line("queueing", report["queueing_cycles"]))
    for replica in result.replicas:
        occupancy = "  ".join(
            f"{resource} {percent:.1f}%"
            for resource, percent in report["replica_occupancy"][
                f"replica{replica.index}"
            ].items()
        )
        flags = []
        if replica.crashes:
            flags.append(f"{replica.crashes} crash")
        if replica.slowdowns:
            flags.append(f"{replica.slowdowns} slow")
        if replica.partitions:
            flags.append(f"{replica.partitions} partition")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"replica{replica.index} ({replica.design}): "
            f"{replica.completed}/{replica.dispatched} completed over "
            f"{replica.iterations} iterations; {occupancy}{suffix}"
        )
    perf = fleet_perf_stats(result)
    memo, cache = perf["iteration_memo"], perf["timing_cache"]
    lines.append(
        f"iteration memo: {memo.get('hits', 0)} hits, "
        f"{memo.get('misses', 0)} misses; timing cache: "
        f"{cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses"
    )
    epochs = perf["epochs"]
    extrapolated = int(epochs.get("extrapolated_iterations", 0))
    executed = int(epochs.get("executed_iterations", 0))
    if extrapolated:
        lines.append(
            f"epoch extrapolation: {epochs.get('epochs', 0)} epochs; "
            f"{extrapolated}/{executed + extrapolated} iterations extrapolated"
        )
    return "\n".join(lines)
