"""Per-layer and per-phase breakdown reporting for model-level runs.

Consumes a :class:`repro.workloads.lowering.ModelRunResult` and produces the
table rows and summary dictionaries the CLI ``model`` subcommand prints --
the model-scale analogue of the per-kernel tables in
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.obs import occupancy_percent
from repro.workloads.lowering import ModelRunResult

#: Kernel-name segment marking one routed (``e<j>``) or shared (``s<j>``)
#: expert chain emitted by the MoE lowering.
_EXPERT_TAG = re.compile(r"\.([es]\d+)\.")

LAYER_HEADERS = [
    "layer",
    "phase",
    "kinds",
    "cycles",
    "span",
    "MAC util %",
    "energy uJ",
]


def model_layer_rows(result: ModelRunResult) -> List[List[str]]:
    """One formatted row per layer: cycles, schedule span, utilization, energy."""
    rows: List[List[str]] = []
    for layer in result.layers:
        rows.append(
            [
                layer.layer,
                layer.phase,
                "+".join(layer.kinds),
                f"{layer.cycles:,}",
                f"{layer.start:,}..{layer.end:,}",
                f"{layer.mac_utilization_percent:.1f}" if layer.macs else "-",
                f"{layer.energy_uj:.2f}",
            ]
        )
    return rows


def model_phase_summary(result: ModelRunResult) -> Dict[str, Dict[str, float]]:
    """Per-phase totals: busy cycles, energy, and share of total energy."""
    total_energy = sum(result.phase_energy_uj.values()) or 1.0
    summary: Dict[str, Dict[str, float]] = {}
    for phase, cycles in result.phase_cycles.items():
        energy = result.phase_energy_uj.get(phase, 0.0)
        summary[phase] = {
            "busy_cycles": cycles,
            "energy_uj": energy,
            "energy_share_percent": 100.0 * energy / total_energy,
        }
    return summary


def model_kind_cycles(result: ModelRunResult) -> Dict[str, int]:
    """Busy cycles grouped by kernel kind (gemm / flash / simt)."""
    totals: Dict[str, int] = {}
    for layer in result.layers:
        # Split the layer's cycles evenly when it mixes kinds; kernels of one
        # layer are lowered from the same operator so this stays indicative.
        share = layer.cycles // max(1, len(layer.kinds))
        for kind in layer.kinds:
            totals[kind] = totals.get(kind, 0) + share
    return totals


def _expert_width(kernels: Sequence[str]) -> int:
    """Distinct expert chains among a layer's kernel names (0 for non-MoE)."""
    return len({match.group(1) for name in kernels for match in _EXPERT_TAG.finditer(name)})


def model_overlap_report(result: ModelRunResult) -> Dict[str, object]:
    """Measured dual-unit overlap: makespan vs. the sum of kernel times.

    ``serialized_cycles`` is what the schedule would cost if every kernel ran
    back to back on one timeline; the gap to the real makespan is work the
    scheduler overlapped across the matrix / small-matrix / SIMT units.
    ``unit_occupancy_percent`` is each resource's busy share of the makespan,
    so a heterogeneous MoE run shows *both* matrix units substantially
    occupied at the same time -- the paper's dual-unit claim at model scale.
    """
    makespan = max(1, result.total_cycles)
    serialized = sum(layer.cycles for layer in result.layers)
    moe_layers = [
        {
            "layer": layer.layer,
            "experts": width,
            "kernels": len(layer.kernels),
            "busy_cycles": layer.cycles,
            "span_cycles": layer.end - layer.start,
        }
        for layer in result.layers
        if (width := _expert_width(layer.kernels)) > 0
    ]
    return {
        "makespan_cycles": result.total_cycles,
        "serialized_cycles": serialized,
        "overlap_cycles_saved": serialized - result.total_cycles,
        "overlap_speedup": serialized / makespan,
        "unit_occupancy_percent": occupancy_percent(
            result.resource_busy, result.total_cycles
        ),
        "moe_layers": moe_layers,
    }


def format_overlap_report(result: ModelRunResult) -> str:
    """Human-readable rendering of :func:`model_overlap_report` for the CLI."""
    report = model_overlap_report(result)
    occupancy = "  ".join(
        f"{resource} {percent:.1f}%"
        for resource, percent in report["unit_occupancy_percent"].items()
    )
    lines = [
        (
            f"overlap: makespan {report['makespan_cycles']:,} vs "
            f"serialized {report['serialized_cycles']:,} cycles "
            f"({report['overlap_speedup']:.2f}x, "
            f"{report['overlap_cycles_saved']:,} cycles overlapped)"
        ),
        f"unit occupancy: {occupancy}",
    ]
    for entry in report["moe_layers"]:
        lines.append(
            f"{entry['layer']}: {entry['experts']} expert chains, "
            f"{entry['kernels']} kernels, {entry['busy_cycles']:,} busy cycles "
            f"in a {entry['span_cycles']:,}-cycle span"
        )
    return "\n".join(lines)


def model_breakdown_report(result: ModelRunResult) -> Dict[str, object]:
    """The full JSON report the CLI emits with ``--json``."""
    report = result.to_dict()
    report["phase_summary"] = model_phase_summary(result)
    report["kind_busy_cycles"] = model_kind_cycles(result)
    report["overlap"] = model_overlap_report(result)
    return report


def compare_models(
    results: Sequence[ModelRunResult],
) -> Tuple[List[str], List[List[str]]]:
    """Headline comparison rows across several model runs (designs/phases)."""
    headers = [
        "model",
        "design",
        "kernels",
        "total cycles",
        "MAC util %",
        "power mW",
        "energy uJ",
    ]
    rows = [
        [
            result.model,
            result.design_name + ("+hetero" if result.heterogeneous else ""),
            str(result.kernel_count),
            f"{result.total_cycles:,}",
            f"{result.mac_utilization_percent:.1f}",
            f"{result.active_power_mw:.1f}",
            f"{result.active_energy_uj:.1f}",
        ]
        for result in results
    ]
    return headers, rows
