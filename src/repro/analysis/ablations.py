"""Ablation studies of Virgo's individual design choices.

The paper attributes Virgo's efficiency to three mechanisms -- larger
operation granularity (fewer instructions), operand offloading from the
register file, and the dedicated accumulator memory -- plus the unified
(single-instance) unit's data reuse.  These ablations isolate each mechanism
by constructing intermediate design points and re-running the GEMM models:

* :func:`granularity_ablation` -- sweep the Virgo operation-tile size and show
  utilization and core-energy falling as tiles shrink (instruction overhead
  returns).
* :func:`accumulator_placement_ablation` -- charge the accumulator traffic to
  register-file-class storage instead of the private SRAM and report the
  energy difference (the Section 3.2.2 argument).
* :func:`unified_unit_ablation` -- split the cluster-level unit into per-core
  units of the same aggregate throughput and report the shared-memory read
  footprint increase (the Table 4 mechanism).
* :func:`async_interface_ablation` -- serialize the DMA with compute
  (no double buffering) to quantify what the asynchronous interface and
  software pipelining buy (Section 4.1).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.config.presets import DesignKind, make_design, virgo
from repro.config.soc import DataType, DesignConfig
from repro.energy.model import EnergyEventSpec, EnergyTable
from repro.kernels.gemm import GemmWorkload, VirgoGemmKernel, smem_read_footprint_bytes
from repro.kernels.gemm.tiling import tiling_for_design
from repro.memory.dma import DmaEngine
from repro.memory.dram import DramChannel


def _virgo_with_tile(base: DesignConfig, tile_m: int, tile_n: int, tile_k: int) -> DesignConfig:
    unit = replace(base.matrix_unit, tile_m=tile_m, tile_n=tile_n, tile_k=tile_k)
    cluster = replace(base.soc.cluster, matrix_unit=unit)
    return replace(base, soc=replace(base.soc, cluster=cluster))


def granularity_ablation(size: int = 512) -> List[Dict[str, float]]:
    """Shrink Virgo's operation tile and watch utilization / instructions degrade."""
    base = virgo()
    workload = GemmWorkload.square(size)
    results = []
    for factor in (1, 2, 4):
        tile_m = max(base.matrix_unit.systolic_rows, base.matrix_unit.tile_m // factor)
        tile_n = max(base.matrix_unit.systolic_cols, base.matrix_unit.tile_n // factor)
        tile_k = max(base.matrix_unit.systolic_rows, base.matrix_unit.tile_k // factor)
        design = _virgo_with_tile(base, tile_m, tile_n, tile_k)
        result = VirgoGemmKernel(design).simulate(workload)
        results.append(
            {
                "tile": f"{tile_m}x{tile_n}x{tile_k}",
                "mac_utilization_percent": result.mac_utilization_percent,
                "retired_instructions": float(result.retired_instructions),
                "mmio_commands": result.counters.get("mmio.commands"),
            }
        )
    return results


def accumulator_placement_ablation(size: int = 512) -> Dict[str, float]:
    """Energy cost of keeping accumulators in RF-class storage vs the private SRAM.

    The counters of a Virgo GEMM run are re-priced with the accumulator
    accesses charged at register-file energy (multi-banked, SIMT-ported)
    instead of the single-banked SRAM, which is exactly the difference the
    dedicated accumulator memory makes.
    """
    result = VirgoGemmKernel(virgo()).simulate(GemmWorkload.square(size))
    sram_table = EnergyTable.for_design(result.design.style)
    rf_priced = EnergyTable(
        overrides={
            "accum.read_words": EnergyEventSpec("accumulator", 1.2),
            "accum.write_words": EnergyEventSpec("accumulator", 1.5),
        }
    )
    sram_energy = sram_table.energy_picojoules(result.counters)
    rf_energy = rf_priced.energy_picojoules(result.counters)
    return {
        "accumulator_in_sram_uj": sram_energy / 1e6,
        "accumulator_in_rf_class_storage_uj": rf_energy / 1e6,
        "energy_increase_percent": 100.0 * (rf_energy / sram_energy - 1.0),
    }


def unified_unit_ablation(size: int = 256) -> Dict[str, float]:
    """Shared-memory footprint of the unified unit vs per-core units (Table 4)."""
    workload = GemmWorkload.square(size)
    unified = smem_read_footprint_bytes(make_design(DesignKind.VIRGO), workload)
    per_core = smem_read_footprint_bytes(make_design(DesignKind.HOPPER), workload)
    return {
        "unified_mib": unified / 2**20,
        "per_core_mib": per_core / 2**20,
        "footprint_increase_percent": 100.0 * (per_core / unified - 1.0),
    }


def async_interface_ablation(size: int = 512) -> Dict[str, float]:
    """Utilization with and without overlapping the DMA behind the matrix unit.

    The synchronous variant issues the DMA and waits for it before every
    matrix operation (no double buffering), which is what a blocking command
    interface would force.  The difference is the benefit of Section 4.1's
    asynchronous interface plus Section 4.4.2's software pipelining.
    """
    design = virgo()
    workload = GemmWorkload.square(size)
    pipelined = VirgoGemmKernel(design).simulate(workload)

    tiling = tiling_for_design(design, workload)
    dram = DramChannel(design.soc.dram)
    dma = DmaEngine(design.cluster.dma, dram)
    dma_cycles = dma.transfer_cycles(tiling.input_bytes_per_iteration)
    # Serial: every iteration pays DMA then compute back to back.
    serial_cycles = tiling.total_iterations * (pipelined.iteration_cycles + dma_cycles)
    serial_cycles += tiling.output_tiles * dma.transfer_cycles(tiling.output_tile_bytes)
    serial_utilization = 100.0 * pipelined.ideal_mac_cycles / serial_cycles
    return {
        "asynchronous_utilization_percent": pipelined.mac_utilization_percent,
        "synchronous_utilization_percent": serial_utilization,
        "speedup_from_async_pipelining": serial_cycles / pipelined.total_cycles,
    }


def run_all_ablations() -> Dict[str, object]:
    """Convenience bundle used by the ablation benchmark."""
    return {
        "granularity": granularity_ablation(),
        "accumulator_placement": accumulator_placement_ablation(),
        "unified_unit": unified_unit_ablation(),
        "async_interface": async_interface_ablation(),
    }
