"""Summarize and validate Chrome trace-event JSON produced by ``repro.obs``.

The trace-report layer closes the observability loop without leaving the
terminal: ``python -m repro trace-report --input trace.json`` prints the
top-N longest spans, a per-unit occupancy timeline (busy share per time
bucket, rendered as a block-character sparkline) and the per-iteration batch
composition table -- the same questions a Perfetto session answers, reduced
to text.

``validate_chrome_trace`` checks the structural contract of the trace-event
format (the schema Perfetto and ``chrome://tracing`` load) and is what the
CI trace-smoke step runs against every exported trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "load_trace",
    "validate_chrome_trace",
    "trace_summary",
    "format_trace_summary",
]

#: Event phases the recorder emits (complete, metadata, flow start/finish).
_KNOWN_PHASES = {"X", "M", "s", "f"}

#: Sparkline glyphs from idle to fully busy.
_SPARK = " ▁▂▃▄▅▆▇█"

#: Buckets in the per-unit occupancy timeline.
_TIMELINE_BUCKETS = 24


def load_trace(path: Union[str, Path]) -> Dict[str, object]:
    """Parse a trace-event JSON file (object form with ``traceEvents``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_chrome_trace(trace: object) -> List[str]:
    """Structural errors that would break loading the trace in a viewer.

    Checks the JSON-object trace format: a ``traceEvents`` list whose
    entries carry a known ``ph``, integer ``pid``/``tid``, and -- for
    complete ("X") events -- a name plus non-negative ``ts``/``dur``.  Flow
    events must carry an ``id``.  Returns a list of human-readable errors,
    empty when the trace is well-formed.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    for index, event in enumerate(events):
        label = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{label}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{label}: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{label}: missing integer {field!r}")
        if ph == "X":
            if not event.get("name"):
                errors.append(f"{label}: complete event without a name")
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{label}: bad {field!r} {value!r}")
        elif ph in ("s", "f"):
            if "id" not in event:
                errors.append(f"{label}: flow event without an id")
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{label}: flow event without a timestamp")
    return errors


def _names(events: List[dict]) -> Tuple[Dict[int, str], Dict[Tuple[int, int], str]]:
    """(pid -> process name, (pid, tid) -> track name) from metadata events."""
    processes: Dict[int, str] = {}
    tracks: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        name = (event.get("args") or {}).get("name")
        if event.get("name") == "process_name":
            processes[event["pid"]] = name
        elif event.get("name") == "thread_name":
            tracks[(event["pid"], event["tid"])] = name
    return processes, tracks


def _sparkline(busy: List[float]) -> str:
    """Render per-bucket busy fractions (0..1) as block characters."""
    glyphs = []
    for fraction in busy:
        level = min(len(_SPARK) - 1, int(round(fraction * (len(_SPARK) - 1))))
        if fraction > 0 and level == 0:
            level = 1  # visible floor: busy-at-all beats blank
        glyphs.append(_SPARK[level])
    return "".join(glyphs)


def trace_summary(trace: Dict[str, object], top: int = 10) -> Dict[str, object]:
    """Digest a recorded trace: top spans, unit occupancy timeline, iterations.

    Only simulated-time processes contribute (the wall-clock ``profile``
    process uses a different timebase and is reported solely by its span
    count).  ``makespan_ts`` is the latest span end across the simulated
    processes; unit occupancy is measured against it.
    """
    events = trace.get("traceEvents", [])
    processes, tracks = _names(events)

    spans = []
    profile_spans = 0
    for event in events:
        if event.get("ph") != "X":
            continue
        process = processes.get(event["pid"], str(event["pid"]))
        if process == "profile":
            profile_spans += 1
            continue
        spans.append(
            {
                "name": event["name"],
                "process": process,
                "track": tracks.get((event["pid"], event["tid"]), str(event["tid"])),
                "ts": event["ts"],
                "dur": event["dur"],
                "cat": event.get("cat", ""),
            }
        )

    makespan = max((span["ts"] + span["dur"] for span in spans), default=0)

    unit_spans = [span for span in spans if span["process"] == "units"]
    units: Dict[str, Dict[str, object]] = {}
    for span in unit_spans:
        entry = units.setdefault(
            span["track"], {"busy": 0, "spans": 0, "buckets": [0.0] * _TIMELINE_BUCKETS}
        )
        entry["busy"] += span["dur"]
        entry["spans"] += 1
        if makespan > 0:
            # Attribute the span's duration to the timeline buckets it
            # overlaps, proportionally.
            width = makespan / _TIMELINE_BUCKETS
            start, end = span["ts"], span["ts"] + span["dur"]
            first = min(_TIMELINE_BUCKETS - 1, int(start // width))
            last = min(_TIMELINE_BUCKETS - 1, int(max(start, end - 1) // width))
            for bucket in range(first, last + 1):
                lo = bucket * width
                hi = lo + width
                overlap = max(0.0, min(end, hi) - max(start, lo))
                entry["buckets"][bucket] += overlap / width

    unit_occupancy = {
        track: {
            "busy": entry["busy"],
            "spans": entry["spans"],
            "occupancy_percent": 100.0 * entry["busy"] / makespan if makespan else 0.0,
            "timeline": _sparkline([min(1.0, b) for b in entry["buckets"]]),
        }
        for track, entry in sorted(units.items())
    }

    iterations = [
        {
            "name": span["name"],
            "ts": span["ts"],
            "dur": span["dur"],
            "args": next(
                (
                    event.get("args", {})
                    for event in events
                    if event.get("ph") == "X"
                    and event.get("name") == span["name"]
                    and event.get("ts") == span["ts"]
                    and processes.get(event["pid"]) == "scheduler"
                ),
                {},
            ),
        }
        for span in sorted(
            (s for s in spans if s["process"] == "scheduler"),
            key=lambda s: s["ts"],
        )
    ]

    top_spans = sorted(spans, key=lambda s: (-s["dur"], s["ts"], s["name"]))[:top]
    flow_events = sum(1 for event in events if event.get("ph") in ("s", "f"))
    return {
        "events": len(events),
        "spans": len(spans),
        "profile_spans": profile_spans,
        "flow_events": flow_events,
        "makespan_ts": makespan,
        "top_spans": top_spans,
        "unit_occupancy": unit_occupancy,
        "iterations": iterations,
    }


def format_trace_summary(summary: Dict[str, object], title: Optional[str] = None) -> str:
    """Human-readable rendering of :func:`trace_summary` for the CLI."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{summary['events']} events: {summary['spans']} spans, "
        f"{summary['flow_events']} flow events, "
        f"{summary['profile_spans']} profile spans; "
        f"makespan {summary['makespan_ts']:,} cycles"
    )
    if summary["unit_occupancy"]:
        lines.append("")
        lines.append("unit occupancy timeline:")
        width = max(len(track) for track in summary["unit_occupancy"])
        for track, entry in summary["unit_occupancy"].items():
            lines.append(
                f"  {track:<{width}}  |{entry['timeline']}|  "
                f"{entry['occupancy_percent']:5.1f}%  "
                f"({entry['spans']} spans, {entry['busy']:,} busy cycles)"
            )
    if summary["top_spans"]:
        lines.append("")
        lines.append(f"top {len(summary['top_spans'])} spans:")
        for span in summary["top_spans"]:
            lines.append(
                f"  {span['dur']:>12,}  {span['name']}  "
                f"[{span['process']}/{span['track']}] @ {span['ts']:,}"
            )
    if summary["iterations"]:
        lines.append("")
        lines.append("iterations:")
        for entry in summary["iterations"]:
            args = entry["args"]
            requests = ",".join(args.get("requests", []))
            lines.append(
                f"  {entry['name']}: start {entry['ts']:,}, "
                f"{entry['dur']:,} cycles, batch {args.get('batch', '?')}"
                + (f" [{requests}]" if requests else "")
                + (f" memo={args['memo']}" if "memo" in args else "")
            )
    return "\n".join(lines)
