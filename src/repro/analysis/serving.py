"""Latency analysis for continuous-batching serving runs.

Consumes a :class:`repro.workloads.serving.ServingRunResult` and produces the
per-request latency report the CLI ``serve`` subcommand prints: p50/p95/p99
end-to-end latency, time to first token, queueing delay, decode throughput
and per-unit occupancy under load -- the serving-scale analogue of the
per-model breakdown in :mod:`repro.analysis.model_breakdown`.

Percentiles use the nearest-rank definition (the smallest value with at
least ``p`` percent of the sample at or below it): deterministic, exact on
the small request counts serving traces carry, and dependency-free.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.obs import occupancy_percent
from repro.workloads.serving import ServingRunResult

REQUEST_HEADERS = [
    "request",
    "model",
    "arrival",
    "queue",
    "TTFT",
    "latency",
    "steps",
]

#: The percentiles every latency summary reports.
PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (p in 0..100, values non-empty).

    The rank is ``ceil(p * n / 100)``, computed in exact integer arithmetic
    for integral ``p``: the float form ``ceil(p / 100 * n)`` overshoots
    whenever ``p / 100`` rounds up in binary (p55 of 100 samples must be the
    55th value, but ``0.55 * 100`` is ``55.000000000000007`` and ceils to
    56).  Small samples are the visible casualty -- with one value every
    percentile is that value, and with two, p50 must be the lower one --
    which the explicit edge-case tests pin down.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    ordered = sorted(values)
    n = len(ordered)
    if float(p).is_integer():
        rank = (int(p) * n + 99) // 100
    else:
        rank = math.ceil(p * n / 100.0)
    rank = min(max(1, rank), n)
    return ordered[rank - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus mean and max of one metric across requests.

    An empty sample (every request shed under a control-plane policy or a
    degraded fleet, so no finished request carries the metric) reports
    all-zero -- the report must stay serializable even when a run degrades
    to zero completions.  The emptiness test is an explicit length check:
    ``if not values`` raises on the numpy arrays bulk request paths hand in
    (ambiguous truth value), which is exactly the all-shed traceback this
    guard exists to prevent.
    """
    if len(values) == 0:
        return {**{f"p{p}": 0.0 for p in PERCENTILES}, "mean": 0.0, "max": 0.0}
    # One numpy sort serves every percentile: the old per-percentile
    # ``percentile(values, p)`` calls re-sorted (and, fed a numpy array,
    # re-listed) the sample three times per metric, which dominated report
    # time on million-request runs.  Ranks reuse the exact integer
    # nearest-rank arithmetic of :func:`percentile`, and the regression
    # suite pins both paths to identical output.
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = int(ordered.size)
    summary: Dict[str, float] = {
        f"p{p}": float(ordered[min(max(1, (p * n + 99) // 100), n) - 1])
        for p in PERCENTILES
    }
    # Builtin sum on purpose: the mean is a strict left fold over the
    # sample, while ``np.sum`` is pairwise and can differ in the last ulp.
    summary["mean"] = sum(values) / len(values)
    summary["max"] = float(ordered[-1])
    return summary


def serving_latency_report(result: ServingRunResult) -> Dict[str, object]:
    """The full latency report: percentiles per metric plus load metrics.

    ``unit_occupancy_percent`` is each resource's busy share of the *serving*
    span (iterations only, arrival gaps excluded), so it reports occupancy
    under load rather than diluting it with trace idle time.
    """
    # Percentiles cover finished requests only: a shed request has no
    # latency, and folding zeros in would *flatter* the percentiles exactly
    # when the system is degrading.  Goodput accounts for the unfinished.
    finished = [request for request in result.requests if request.finished]
    latencies = [float(request.latency_cycles) for request in finished]
    ttfts = [float(request.ttft_cycles) for request in finished]
    queueing = [
        float(request.queueing_cycles)
        for request in result.requests
        if request.queueing_cycles is not None
    ]
    report: Dict[str, object] = {
        "kind": "serving_latency",
        "trace": result.trace,
        "design": result.design_name,
        "heterogeneous": result.heterogeneous,
        "requests": len(result.requests),
        "iterations": result.iteration_count,
        "makespan_cycles": result.total_cycles,
        "serving_cycles": result.serving_cycles,
        "decode_steps": result.decode_steps_executed,
        "mean_batch": result.mean_batch,
        "tokens_per_kilocycle": result.tokens_per_kilocycle,
        "latency_cycles": latency_summary(latencies),
        "ttft_cycles": latency_summary(ttfts),
        "queueing_cycles": latency_summary(queueing),
        "unit_occupancy_percent": occupancy_percent(
            result.resource_busy, result.serving_cycles
        ),
    }
    # Control-plane keys ride along only when the control plane was active,
    # keeping the default report byte-identical to its golden.
    if result.control_active:
        report["policy"] = result.policy
        report["goodput"] = result.goodput
        report["dispositions"] = dict(result.dispositions)
        report["preemption_count"] = result.preemption_count
    return report


def serving_perf_stats(result: ServingRunResult) -> Dict[str, Dict[str, int]]:
    """Run-local perf diagnostics: iteration-memo and timing-cache activity.

    Kept out of :func:`serving_latency_report` deliberately -- that report
    (like ``ServingRunResult.to_dict``) is a canonical, golden-pinned
    encoding that must stay byte-stable across cache and memo states, while
    these counters describe how *this* process happened to execute the run.
    """
    return {
        "iteration_memo": dict(result.iteration_memo),
        "timing_cache": dict(result.timing_cache),
        "epochs": dict(result.epochs),
    }


def _cycles_cell(value) -> str:
    return f"{value:,}" if value is not None else "-"


def serving_request_rows(result: ServingRunResult) -> List[List[str]]:
    """One formatted row per request for the CLI table.

    Shed / timed-out requests have no TTFT or latency; their cells render as
    ``-``.  A disposition column is appended only on control-plane runs so
    the default table layout is unchanged.
    """
    control = result.control_active
    rows = []
    for request in result.requests:
        row = [
            request.request_id,
            request.model_family,
            f"{request.arrival_cycle:,}",
            _cycles_cell(request.queueing_cycles),
            _cycles_cell(request.ttft_cycles),
            _cycles_cell(request.latency_cycles),
            str(request.decode_steps),
        ]
        if control:
            row.append(request.disposition or "-")
        rows.append(row)
    return rows


def format_latency_report(result: ServingRunResult) -> str:
    """Human-readable latency report for the CLI ``--latency-report`` flag."""
    report = serving_latency_report(result)

    def line(metric: str, summary: Dict[str, float]) -> str:
        return (
            f"{metric}: p50 {summary['p50']:,.0f}  p95 {summary['p95']:,.0f}  "
            f"p99 {summary['p99']:,.0f}  mean {summary['mean']:,.0f}  "
            f"max {summary['max']:,.0f} cycles"
        )

    occupancy = "  ".join(
        f"{resource} {percent:.1f}%"
        for resource, percent in report["unit_occupancy_percent"].items()
    )
    perf = serving_perf_stats(result)
    memo, cache = perf["iteration_memo"], perf["timing_cache"]
    lines = [
        (
            f"{report['requests']} requests over {report['iterations']} iterations: "
            f"makespan {report['makespan_cycles']:,} cycles "
            f"({report['serving_cycles']:,} serving), "
            f"mean batch {report['mean_batch']:.2f}, "
            f"{report['tokens_per_kilocycle']:.2f} tokens/kcycle"
        ),
        line("latency", report["latency_cycles"]),
        line("ttft", report["ttft_cycles"]),
        line("queueing", report["queueing_cycles"]),
        f"unit occupancy (serving span): {occupancy}",
    ]
    # Total degradation (every request shed / timed out) leaves the latency
    # and TTFT summaries empty; say so instead of letting the all-zero
    # percentiles read as a suspiciously fast run.
    if report["requests"] and not any(request.finished for request in result.requests):
        lines.insert(
            1,
            "no request finished (all shed or timed out): latency and ttft "
            "percentiles are empty, zeros below are placeholders",
        )
    if result.control_active:
        dispositions = "  ".join(
            f"{name} {count}" for name, count in report["dispositions"].items()
        )
        lines.insert(
            1,
            (
                f"policy {report['policy']}: goodput {report['goodput']:.3f} "
                f"({dispositions}; {report['preemption_count']} preemptions)"
            ),
        )
    lines.append(
        f"iteration memo: {memo.get('hits', 0)} hits, "
        f"{memo.get('misses', 0)} misses; timing cache: "
        f"{cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses"
    )
    epochs = perf["epochs"]
    if epochs.get("enabled"):
        executed = int(epochs.get("executed_iterations", 0))
        extrapolated = int(epochs.get("extrapolated_iterations", 0))
        lines.append(
            f"epoch compression: {epochs.get('epochs', 0)} epochs, "
            f"{epochs.get('episode_runs', 0)} episode runs; "
            f"{extrapolated}/{executed + extrapolated} iterations extrapolated"
        )
    return "\n".join(lines)
