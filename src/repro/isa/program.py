"""Instruction stream builders used by the kernel models.

A :class:`WarpProgram` is the per-warp instruction stream of one steady-state
kernel iteration (or of a whole prologue/epilogue).  Kernels construct these
programs from their loop structure; the SIMT core model then evaluates how
many cycles a core needs to issue the stream and how many register-file and
memory accesses it generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.isa.instructions import Instruction, OpClass


@dataclass
class WarpProgram:
    """An ordered list of instructions issued by a single warp."""

    name: str = ""
    instructions: List[Instruction] = field(default_factory=list)

    def emit(self, instruction: Instruction, repeat: int = 1) -> "WarpProgram":
        """Append ``instruction`` ``repeat`` times."""
        if repeat < 0:
            raise ValueError("repeat must be non-negative")
        self.instructions.extend([instruction] * repeat)
        return self

    def emit_class(
        self,
        op_class: OpClass,
        repeat: int = 1,
        reg_reads: int = 2,
        reg_writes: int = 1,
        bytes_accessed: int = 0,
        tag: str = "",
    ) -> "WarpProgram":
        """Append ``repeat`` instructions of ``op_class`` with uniform operands."""
        return self.emit(
            Instruction(
                op_class=op_class,
                reg_reads=reg_reads,
                reg_writes=reg_writes,
                bytes_accessed=bytes_accessed,
                tag=tag,
            ),
            repeat=repeat,
        )

    def extend(self, other: "WarpProgram", repeat: int = 1) -> "WarpProgram":
        """Append another program ``repeat`` times."""
        for _ in range(repeat):
            self.instructions.extend(other.instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def count_by_class(self) -> Dict[OpClass, int]:
        counts: Dict[OpClass, int] = {}
        for instruction in self.instructions:
            counts[instruction.op_class] = counts.get(instruction.op_class, 0) + 1
        return counts

    def total_reg_reads(self) -> int:
        return sum(instruction.reg_reads for instruction in self.instructions)

    def total_reg_writes(self) -> int:
        return sum(instruction.reg_writes for instruction in self.instructions)

    def total_bytes(self, op_classes: Iterable[OpClass] | None = None) -> int:
        """Total bytes accessed, optionally restricted to certain classes."""
        selected = set(op_classes) if op_classes is not None else None
        total = 0
        for instruction in self.instructions:
            if selected is None or instruction.op_class in selected:
                total += instruction.bytes_accessed
        return total


@dataclass
class InstructionStream:
    """A collection of warp programs plus replication information.

    ``warps`` is the number of warps that each execute every program in
    ``programs`` (collaborative execution of warps, Section 4.2), and
    ``iterations`` is how many times the steady-state stream repeats.
    """

    programs: List[WarpProgram] = field(default_factory=list)
    warps: int = 1
    iterations: int = 1

    def add(self, program: WarpProgram) -> "InstructionStream":
        self.programs.append(program)
        return self

    def instructions_per_warp(self) -> int:
        return sum(len(program) for program in self.programs)

    def total_instructions(self) -> int:
        """Total dynamic instructions across all warps and iterations."""
        return self.instructions_per_warp() * self.warps * self.iterations

    def count_by_class(self) -> Dict[OpClass, int]:
        """Dynamic instruction counts per class across all warps/iterations."""
        counts: Dict[OpClass, int] = {}
        for program in self.programs:
            for op_class, count in program.count_by_class().items():
                counts[op_class] = counts.get(op_class, 0) + count
        scale = self.warps * self.iterations
        return {op_class: count * scale for op_class, count in counts.items()}

    def merged_program(self) -> WarpProgram:
        """Concatenate all programs into one per-warp stream (single iteration)."""
        merged = WarpProgram(name="merged")
        for program in self.programs:
            merged.extend(program)
        return merged
