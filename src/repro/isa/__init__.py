"""Vortex-like RISC-V ISA model with matrix-unit extensions.

The ISA layer does not execute real binaries; it provides the vocabulary the
kernel models use to describe the per-iteration instruction streams each warp
issues.  The SIMT core timing model turns these streams into issue cycles,
and the energy model turns them into per-stage energy events.
"""

from repro.isa.instructions import (
    OpClass,
    Instruction,
    latency_of,
    is_memory,
    is_matrix,
)
from repro.isa.program import InstructionStream, WarpProgram

__all__ = [
    "OpClass",
    "Instruction",
    "latency_of",
    "is_memory",
    "is_matrix",
    "InstructionStream",
    "WarpProgram",
]
