"""Instruction classes of the Vortex-like ISA and its matrix extensions.

The baseline ISA is the RV32IMF subset Vortex implements, extended with:

* ``HMMA_SET`` / ``HMMA_STEP`` -- the Volta-style tightly-coupled tensor core
  instructions (Section 5.1.1); a tile operation is a sequence of set/step
  pairs, each step taking two cycles in the matrix unit.
* ``WGMMA_INIT`` / ``WGMMA_WAIT`` -- the Hopper-style asynchronous interface
  (Section 5.1.3); a warp kicks off the unit and later waits for the result.
* ``MMIO_STORE`` / ``MMIO_POLL`` -- Virgo's memory-mapped command interface
  (Section 3.1); regular stores and polling loads to the matrix unit's
  control registers.
* ``VX_BAR`` -- Vortex's cluster-wide barrier instruction (Section 3.3).
* ``DMA_PROGRAM`` -- MMIO stores that program the cluster DMA engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class OpClass(enum.Enum):
    """Instruction classes, grouped by the execution unit they occupy."""

    ALU = "alu"                  # integer ALU: address generation, loop counters
    FPU = "fpu"                  # SIMT floating point (softmax, scaling, activation)
    SFU = "sfu"                  # special function approximations (Taylor exp helpers)
    LOAD_GLOBAL = "load_global"  # loads served by L1/L2/DRAM
    STORE_GLOBAL = "store_global"
    LOAD_SHARED = "load_shared"  # loads from the cluster shared memory
    STORE_SHARED = "store_shared"
    BRANCH = "branch"
    BARRIER = "barrier"          # intra-core barrier
    VX_BAR = "vx_bar"            # cluster-wide barrier (synchronizer)
    HMMA_SET = "hmma_set"
    HMMA_STEP = "hmma_step"
    WGMMA_INIT = "wgmma_init"
    WGMMA_WAIT = "wgmma_wait"
    MMIO_STORE = "mmio_store"
    MMIO_POLL = "mmio_poll"
    DMA_PROGRAM = "dma_program"
    NOP = "nop"


#: Issue-to-writeback latency (cycles) of each class when it does not miss.
_LATENCIES: Dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.FPU: 4,
    OpClass.SFU: 8,
    OpClass.LOAD_GLOBAL: 30,
    OpClass.STORE_GLOBAL: 4,
    OpClass.LOAD_SHARED: 6,
    OpClass.STORE_SHARED: 4,
    OpClass.BRANCH: 2,
    OpClass.BARRIER: 4,
    OpClass.VX_BAR: 20,
    OpClass.HMMA_SET: 1,
    OpClass.HMMA_STEP: 2,
    OpClass.WGMMA_INIT: 2,
    OpClass.WGMMA_WAIT: 4,
    OpClass.MMIO_STORE: 6,
    OpClass.MMIO_POLL: 10,
    OpClass.DMA_PROGRAM: 6,
    OpClass.NOP: 1,
}

_MEMORY_CLASSES = {
    OpClass.LOAD_GLOBAL,
    OpClass.STORE_GLOBAL,
    OpClass.LOAD_SHARED,
    OpClass.STORE_SHARED,
    OpClass.MMIO_STORE,
    OpClass.MMIO_POLL,
    OpClass.DMA_PROGRAM,
}

_MATRIX_CLASSES = {
    OpClass.HMMA_SET,
    OpClass.HMMA_STEP,
    OpClass.WGMMA_INIT,
    OpClass.WGMMA_WAIT,
}


def latency_of(op_class: OpClass) -> int:
    """Nominal issue-to-writeback latency of ``op_class`` in cycles."""
    return _LATENCIES[op_class]


def is_memory(op_class: OpClass) -> bool:
    """True if the instruction occupies the load/store unit."""
    return op_class in _MEMORY_CLASSES


def is_matrix(op_class: OpClass) -> bool:
    """True if the instruction drives a core-coupled matrix unit."""
    return op_class in _MATRIX_CLASSES


@dataclass(frozen=True)
class Instruction:
    """One static instruction in a warp's stream.

    Attributes
    ----------
    op_class:
        The execution class (determines latency, energy and the unit used).
    reg_reads / reg_writes:
        Register file accesses the instruction performs *per lane*.  HMMA
        instructions read operand fragments and write accumulator fragments,
        which is where the register file energy of the tightly-coupled
        designs comes from.
    bytes_accessed:
        Bytes moved per warp for memory instructions (drives the memory
        system energy and bandwidth models).
    tag:
        Optional free-form label for tracing.
    """

    op_class: OpClass
    reg_reads: int = 2
    reg_writes: int = 1
    bytes_accessed: int = 0
    tag: str = ""

    @property
    def latency(self) -> int:
        return latency_of(self.op_class)

    @property
    def is_memory(self) -> bool:
        return is_memory(self.op_class)

    @property
    def is_matrix(self) -> bool:
        return is_matrix(self.op_class)
