"""Unified metrics registry: counters, gauges and histograms for run results.

Every execution layer (kernel schedules, model runs, serving runs) used to
grow its own ad-hoc stat fields; the registry replaces that with one
namespace of named metrics collected during a run and snapshotted into the
result's canonical encoding.

Three metric kinds cover everything the simulator counts:

* :class:`Counter` -- monotonically accumulated totals (kernel counts, unit
  busy cycles, scheduler events);
* :class:`Gauge` -- last-written values (makespans, occupancy percentages);
* :class:`Histogram` -- streaming count/total/min/max over observations
  (batch sizes, queueing delays).  Only moments are kept, never samples, so
  a histogram's snapshot size is O(1) regardless of trace length.

Metrics registered with ``diagnostic=True`` describe how *this process*
happened to execute the run (timing-cache and iteration-memo hit rates) and
are excluded from the default snapshot: ``to_dict()`` encodings are
golden-pinned and cached on disk, so they must stay byte-stable across cache
and memo states.  ``snapshot(include_diagnostic=True)`` (the CLI
``--metrics`` path) reports everything.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "occupancy_percent",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "diagnostic", "value")

    def __init__(self, name: str, diagnostic: bool = False) -> None:
        self.name = name
        self.diagnostic = diagnostic
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "diagnostic", "value")

    def __init__(self, name: str, diagnostic: bool = False) -> None:
        self.name = name
        self.diagnostic = diagnostic
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Streaming moments (count/total/min/max) over observed values."""

    __slots__ = ("name", "diagnostic", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, diagnostic: bool = False) -> None:
        self.name = name
        self.diagnostic = diagnostic
        self.count = 0
        self.total: Number = 0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, value: Number, count: int) -> None:
        """Observe ``value`` ``count`` times in O(1).

        The streaming moments are order-insensitive and integer-exact under
        repetition (``count * value`` equals ``count`` additions for the int
        values this registry records), so bulk observation of a compressed
        run snapshots identically to the expanded loop.
        """
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "max": self.maximum if self.maximum is not None else 0,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0,
            "total": self.total,
        }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Accessors are get-or-create: ``registry.counter("serving.requests")``
    returns the existing counter or registers a fresh one.  Re-registering a
    name under a different kind (or a different ``diagnostic`` flag) is a
    programming error and raises immediately -- a metric's identity is its
    name, and two call sites disagreeing about it would silently corrupt the
    snapshot.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, kind: type, diagnostic: bool) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, diagnostic=diagnostic)
            self._metrics[name] = metric
            return metric
        if type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        if metric.diagnostic != diagnostic:
            raise ValueError(
                f"metric {name!r} re-registered with diagnostic={diagnostic}"
            )
        return metric

    def counter(self, name: str, diagnostic: bool = False) -> Counter:
        return self._get_or_create(name, Counter, diagnostic)

    def gauge(self, name: str, diagnostic: bool = False) -> Gauge:
        return self._get_or_create(name, Gauge, diagnostic)

    def histogram(self, name: str, diagnostic: bool = False) -> Histogram:
        return self._get_or_create(name, Histogram, diagnostic)

    def snapshot(self, include_diagnostic: bool = False) -> Dict[str, object]:
        """Name-sorted values of every (non-diagnostic) metric.

        The default snapshot is the one embedded in result ``to_dict()``
        encodings; it deliberately omits diagnostic metrics so the canonical
        bytes never depend on cache or memo state.
        """
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
            if include_diagnostic or not metric.diagnostic
        }


def occupancy_percent(
    resource_busy: Mapping[str, int], span_cycles: int
) -> Dict[str, float]:
    """Each resource's busy share of ``span_cycles``, name-sorted, in percent.

    The single definition of per-unit occupancy shared by the model-level
    overlap report (span = schedule makespan), the serving latency report
    (span = serving cycles, idle arrival gaps excluded) and the metrics
    registry.  ``span_cycles`` is clamped to at least 1 so an empty run
    reports 0% rather than dividing by zero.
    """
    span = max(1, span_cycles)
    return {
        resource: 100.0 * busy / span
        for resource, busy in sorted(resource_busy.items())
    }
