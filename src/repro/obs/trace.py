"""Schedule trace recording and Chrome trace-event export.

A :class:`TraceRecorder` collects :class:`TraceSpan` records from every
execution layer -- per-kernel placements out of
:class:`repro.sim.taskgraph.ScheduleResult`, serving iterations and request
lifecycles out of :class:`repro.workloads.serving.ServingScheduler`, and
(wall-clock) phase spans out of :mod:`repro.obs.phase` -- and exports them
as Chrome trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.

Spans are grouped into *processes* (rendered as process groups in the
viewer) and *tracks* (rendered as named threads):

* ``units``     -- one track per hardware resource (``matrix``, ``simt``,
  ``matrix.small``), one span per scheduled kernel;
* ``scheduler`` -- the ``iterations`` track, one span per continuous-batching
  iteration;
* ``requests``  -- one track per request id: queue span, decode span and the
  per-step spans nested inside it;
* ``profile``   -- wall-clock phase spans (:func:`repro.obs.phase.phase`).

Simulated spans use **1 cycle = 1 trace microsecond** (the trace-event
``ts``/``dur`` unit); wall-clock phase spans use real microseconds since the
recorder was created.  Kernel dependency edges are exported as flow events
(``ph: "s"``/``"f"``), drawn as arrows between spans in the viewer.

Activation follows the timing cache's module-global pattern: instrumented
code probes :func:`trace_recorder` -- ``None`` unless a
:func:`tracing` context is active, so the recording-off cost is one global
read per site.

>>> from repro.obs import TraceRecorder, tracing
>>> recorder = TraceRecorder()
>>> with tracing(recorder):
...     pass  # run_model(...) / run_serving(...)
>>> recorder.write("trace.json")  # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.sim.taskgraph import ScheduleResult

__all__ = [
    "TraceSpan",
    "CapturedSpans",
    "TraceRecorder",
    "trace_recorder",
    "tracing",
]

#: Process names every recorder uses; fixed so traces from different runs
#: line up and the summarizer can key on them.
UNITS_PROCESS = "units"
SCHEDULER_PROCESS = "scheduler"
REQUESTS_PROCESS = "requests"
PROFILE_PROCESS = "profile"

#: Processes whose timestamps are simulated cycles (vs wall-clock).
CYCLE_PROCESSES = (UNITS_PROCESS, SCHEDULER_PROCESS, REQUESTS_PROCESS)


@dataclass
class TraceSpan:
    """One complete ("X") trace event before pid/tid assignment."""

    name: str
    process: str
    track: str
    start: int
    duration: int
    category: str = ""
    args: Optional[Dict[str, object]] = None


@dataclass
class CapturedSpans:
    """A run of spans (and their flow edges) lifted to a relative timebase.

    The serving scheduler stashes one of these per iteration composition at
    memo-miss time; on a memo hit the merged schedule was never rebuilt, so
    the captured shape is replayed at the new iteration start instead
    (:meth:`TraceRecorder.replay`).  Flow indices are relative to the start
    of the capture.
    """

    spans: List[TraceSpan] = field(default_factory=list)
    flows: List[Tuple[int, int]] = field(default_factory=list)


class TraceRecorder:
    """Accumulates spans and flow edges; exports Chrome trace-event JSON."""

    def __init__(self, label: str = "repro", capture_phases: bool = True) -> None:
        self.label = label
        #: Whether wall-clock :func:`repro.obs.phase.phase` spans are mirrored
        #: into the trace.  Golden tests switch this off: wall-clock values
        #: are nondeterministic by nature.
        self.capture_phases = capture_phases
        self.spans: List[TraceSpan] = []
        self.flows: List[Tuple[int, int]] = []
        self._offset = 0
        self._wall_epoch = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def add_span(
        self,
        name: str,
        *,
        process: str,
        track: str,
        start: int,
        duration: int,
        category: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> int:
        """Append one span (``start`` shifted by the active time offset);
        returns its index for flow-edge wiring."""
        self.spans.append(
            TraceSpan(
                name=name,
                process=process,
                track=track,
                start=start + self._offset,
                duration=duration,
                category=category,
                args=args,
            )
        )
        return len(self.spans) - 1

    def add_flow(self, source: int, target: int) -> None:
        """Record a dependency arrow from span ``source`` to span ``target``."""
        self.flows.append((source, target))

    @contextmanager
    def time_offset(self, base: int) -> Iterator[None]:
        """Shift spans recorded inside the context by ``base`` cycles.

        The serving scheduler executes each iteration's merged schedule on an
        iteration-relative clock; wrapping the execution in
        ``time_offset(now)`` lands the kernel spans at absolute trace time.
        Offsets nest additively.
        """
        self._offset += base
        try:
            yield
        finally:
            self._offset -= base

    def add_phase_span(
        self,
        name: str,
        wall_start: float,
        wall_seconds: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one wall-clock phase span (timestamps in real microseconds
        since the recorder was created)."""
        start_us = int((wall_start - self._wall_epoch) * 1e6)
        self.spans.append(
            TraceSpan(
                name=name,
                process=PROFILE_PROCESS,
                track="phases",
                start=max(0, start_us),
                duration=max(0, int(wall_seconds * 1e6)),
                category="phase",
                args=args or None,
            )
        )

    def record_schedule(
        self,
        placed: ScheduleResult,
        *,
        extra_args: Optional[Mapping[str, Mapping[str, object]]] = None,
        flows: bool = True,
    ) -> Tuple[int, int]:
        """Record every operation of a :class:`ScheduleResult` placement.

        One span per scheduled operation on the ``units`` process (track =
        the operation's resource, category = its kind), in placement order;
        dependency edges become flow events when ``flows`` is set.
        ``extra_args`` optionally enriches spans by operation name (the
        lowering layer passes layer/phase/compression annotations through
        it).  Returns the recorded ``(first, last + 1)`` span index range.
        """
        first = len(self.spans)
        index_of: Dict[str, int] = {}
        for name, item in placed.scheduled.items():
            operation = item.operation
            args: Dict[str, object] = {}
            if extra_args and name in extra_args:
                args.update(extra_args[name])
            if operation.deps:
                args["deps"] = list(operation.deps)
            index_of[name] = self.add_span(
                name,
                process=UNITS_PROCESS,
                track=operation.resource,
                start=item.start,
                duration=item.end - item.start,
                category=operation.kind or "op",
                args=args or None,
            )
        if flows:
            for name, item in placed.scheduled.items():
                for dep in item.operation.deps:
                    if dep in index_of:
                        self.add_flow(index_of[dep], index_of[name])
        return first, len(self.spans)

    # ------------------------------------------------------------------ #
    # Capture / replay (memoized serving iterations)
    # ------------------------------------------------------------------ #

    def mark(self) -> Tuple[int, int]:
        """Current (span, flow) high-water marks; pair with :meth:`capture`."""
        return len(self.spans), len(self.flows)

    def capture(self, marker: Tuple[int, int], base: int) -> CapturedSpans:
        """Copy everything recorded since ``marker``, rebased to ``base``.

        The recorder keeps the original spans; the returned copy carries
        starts relative to ``base`` and flow indices relative to the
        capture start, ready for :meth:`replay` at a different time.
        """
        span_mark, flow_mark = marker
        spans = [
            replace(span, start=span.start - base, args=dict(span.args) if span.args else None)
            for span in self.spans[span_mark:]
        ]
        flows = [
            (source - span_mark, target - span_mark)
            for source, target in self.flows[flow_mark:]
            if source >= span_mark and target >= span_mark
        ]
        return CapturedSpans(spans=spans, flows=flows)

    def replay(self, captured: CapturedSpans, base: int) -> None:
        """Re-emit a captured span shape shifted to start at ``base``."""
        span_base = len(self.spans)
        for span in captured.spans:
            self.add_span(
                span.name,
                process=span.process,
                track=span.track,
                start=span.start + base,
                duration=span.duration,
                category=span.category,
                args=dict(span.args) if span.args else None,
            )
        for source, target in captured.flows:
            self.add_flow(span_base + source, span_base + target)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object for everything recorded.

        Processes and tracks are numbered in first-appearance order (stable
        for a deterministic run) and named via ``process_name`` /
        ``thread_name`` metadata events; dependency edges become flow-event
        pairs (``ph: "s"`` at the source span's end, ``ph: "f"`` at the
        target span's start).
        """
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        for span in self.spans:
            pids.setdefault(span.process, len(pids) + 1)
            tids.setdefault((span.process, span.track), len(tids) + 1)

        events: List[Dict[str, object]] = []
        for process, pid in pids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )
        for (process, track), tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": pids[process],
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )

        for span in self.spans:
            event: Dict[str, object] = {
                "ph": "X",
                "name": span.name,
                "cat": span.category or span.process,
                "ts": span.start,
                "dur": span.duration,
                "pid": pids[span.process],
                "tid": tids[(span.process, span.track)],
            }
            if span.args:
                event["args"] = span.args
            events.append(event)

        for flow_id, (source, target) in enumerate(self.flows, start=1):
            src, dst = self.spans[source], self.spans[target]
            common = {"cat": "dep", "name": "dep", "id": flow_id}
            events.append(
                {
                    "ph": "s",
                    "ts": src.start + src.duration,
                    "pid": pids[src.process],
                    "tid": tids[(src.process, src.track)],
                    **common,
                }
            )
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "ts": dst.start,
                    "pid": pids[dst.process],
                    "tid": tids[(dst.process, dst.track)],
                    **common,
                }
            )

        return {
            "traceEvents": events,
            "otherData": {
                "generator": self.label,
                "time_unit": "1 trace us = 1 simulated cycle (profile process: wall-clock us)",
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(
            json.dumps(self.chrome_trace(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


#: The process-wide active recorder (None = recording off), mirroring the
#: timing cache's module-global pattern.
_ACTIVE_RECORDER: Optional[TraceRecorder] = None


def trace_recorder() -> Optional[TraceRecorder]:
    """The active recorder, or ``None`` when recording is off.

    Instrumented code must treat ``None`` as "skip all trace work": the
    single global read is the entire recording-off overhead.
    """
    return _ACTIVE_RECORDER


@contextmanager
def tracing(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Activate ``recorder`` (or a fresh one) for the duration of the context.

    Nested contexts stack: the innermost recorder wins and the outer one is
    restored on exit.
    """
    global _ACTIVE_RECORDER
    active = recorder if recorder is not None else TraceRecorder()
    previous = _ACTIVE_RECORDER
    _ACTIVE_RECORDER = active
    try:
        yield active
    finally:
        _ACTIVE_RECORDER = previous
