"""Phase profiling: wall-clock spans around the simulator's own pipeline.

Simulated cycles say where the *modelled hardware* spends time;
:func:`phase` says where the *simulator process* spends time -- lowering,
merging, list scheduling, kernel simulation, cache I/O.  Instrumented sites
wrap their work in ``with phase("lower", model=name): ...``; the spans land
in the active :class:`PhaseProfiler` (activated with :func:`profiling`) and,
when a trace recorder is active with ``capture_phases`` set, on the trace's
``profile`` process as wall-clock spans.

With neither a profiler nor a recorder active, :func:`phase` short-circuits
before touching the clock: the cost of an inactive site is two module-global
reads, which keeps instrumentation safe on hot paths (and is what the
perf-smoke overhead guard measures).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.obs.trace import trace_recorder

__all__ = [
    "PhaseRecord",
    "PhaseProfiler",
    "phase",
    "phase_profiler",
    "profiling",
]


@dataclass
class PhaseRecord:
    """One completed phase span (wall-clock seconds)."""

    name: str
    seconds: float
    args: Dict[str, object]


class PhaseProfiler:
    """Accumulates :class:`PhaseRecord` entries across a profiled region."""

    def __init__(self) -> None:
        self.records: List[PhaseRecord] = []

    def add(self, name: str, seconds: float, args: Dict[str, object]) -> None:
        self.records.append(PhaseRecord(name=name, seconds=seconds, args=args))

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase aggregate: call count and total wall-clock seconds."""
        summary: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = summary.setdefault(record.name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += record.seconds
        return summary

    def format_totals(self) -> str:
        """Human-readable per-phase totals, slowest first."""
        totals = self.totals()
        if not totals:
            return "no phases recorded"
        width = max(len(name) for name in totals)
        lines = [
            f"{name:<{width}}  {entry['seconds'] * 1e3:9.2f} ms  "
            f"{int(entry['calls']):5d} calls"
            for name, entry in sorted(
                totals.items(), key=lambda item: -item[1]["seconds"]
            )
        ]
        return "\n".join(lines)


#: The process-wide active profiler (None = profiling off).
_ACTIVE_PROFILER: Optional[PhaseProfiler] = None


def phase_profiler() -> Optional[PhaseProfiler]:
    """The active profiler, or ``None`` when phase profiling is off."""
    return _ACTIVE_PROFILER


@contextmanager
def profiling(profiler: Optional[PhaseProfiler] = None) -> Iterator[PhaseProfiler]:
    """Activate ``profiler`` (or a fresh one) for the duration of the context."""
    global _ACTIVE_PROFILER
    active = profiler if profiler is not None else PhaseProfiler()
    previous = _ACTIVE_PROFILER
    _ACTIVE_PROFILER = active
    try:
        yield active
    finally:
        _ACTIVE_PROFILER = previous


class phase:
    """Wall-clock span around one pipeline phase (no-op unless activated).

    A plain slotted context manager rather than ``@contextmanager``: sites
    sit on hot paths and the inactive case must stay cheap (no generator
    frame -- just the two global reads plus one small object), which the
    perf-smoke overhead guard measures.
    """

    __slots__ = ("name", "args", "_profiler", "_recorder", "_start")

    def __init__(self, name: str, **args: object) -> None:
        self.name = name
        self.args = args

    def __enter__(self) -> None:
        profiler = _ACTIVE_PROFILER
        recorder = trace_recorder()
        if recorder is not None and not recorder.capture_phases:
            recorder = None
        self._profiler = profiler
        self._recorder = recorder
        if profiler is not None or recorder is not None:
            self._start = time.perf_counter()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._profiler is None and self._recorder is None:
            return False
        seconds = time.perf_counter() - self._start
        if self._profiler is not None:
            self._profiler.add(self.name, seconds, self.args)
        if self._recorder is not None:
            self._recorder.add_phase_span(
                self.name, self._start, seconds, self.args or None
            )
        return False
