"""Observability: schedule traces, a unified metrics registry, phase profiling.

Zero-dependency instrumentation wired through every execution layer
(kernels, model schedules, serving):

* :mod:`repro.obs.trace` -- record scheduler task spans and export Chrome
  trace-event JSON loadable in Perfetto / ``chrome://tracing``.  Activate
  with :func:`tracing`; instrumented code probes :func:`trace_recorder`.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms collected per run
  and snapshotted onto every result's ``to_dict()``.
* :mod:`repro.obs.phase` -- wall-clock spans around the simulator's own
  pipeline phases (lowering, merging, scheduling, kernel simulation, cache
  I/O).  Activate with :func:`profiling`.

See ``docs/observability.md`` for the end-to-end workflow.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    occupancy_percent,
)
from repro.obs.phase import (
    PhaseProfiler,
    PhaseRecord,
    phase,
    phase_profiler,
    profiling,
)
from repro.obs.trace import (
    CapturedSpans,
    TraceRecorder,
    TraceSpan,
    trace_recorder,
    tracing,
)

__all__ = [
    "CapturedSpans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseRecord",
    "TraceRecorder",
    "TraceSpan",
    "occupancy_percent",
    "phase",
    "phase_profiler",
    "profiling",
    "trace_recorder",
    "tracing",
]
