"""Off-chip DRAM channel model.

A single bandwidth-limited channel with a fixed access latency.  The GEMM and
FlashAttention kernels use it (behind the L2) to bound how fast operand tiles
can stream on chip; the energy model charges per-byte access energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.soc import DramConfig
from repro.sim.stats import Counters


@dataclass
class DramChannel:
    """Bandwidth/latency model of the main-memory channel."""

    config: DramConfig

    def __post_init__(self) -> None:
        self.bytes_transferred = 0
        self.busy_cycles = 0

    def transfer_cycles(self, nbytes: int, include_latency: bool = True) -> int:
        """Cycles to move ``nbytes`` across the channel.

        The fixed access latency is charged once per transfer (it pipelines
        with the streaming portion of large transfers on real hardware, so
        only bulk transfers should set ``include_latency``).
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0
        streaming = int(-(-nbytes // self.config.bandwidth_bytes_per_cycle))
        latency = self.config.latency_cycles if include_latency else 0
        return latency + streaming

    def record_transfer(self, nbytes: int, counters: Counters, include_latency: bool = True) -> int:
        """Account a transfer in both the local stats and ``counters``."""
        cycles = self.transfer_cycles(nbytes, include_latency=include_latency)
        self.bytes_transferred += nbytes
        self.busy_cycles += cycles
        counters.add("dram.bytes", nbytes)
        counters.add("dram.transfers", 1)
        return cycles

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.config.bandwidth_bytes_per_cycle
