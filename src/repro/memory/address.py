"""Matrix memory layouts and tile address generation.

The DMA engine and the matrix-unit FSMs generate addresses for rectangular
tiles of row-major (or column-major) matrices; the SIMT kernels generate
per-lane addresses for the same tiles.  This module provides the shared
address arithmetic so the coalescer, shared-memory and DMA models all agree
on what traffic a tile move produces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List


class MatrixLayout(enum.Enum):
    ROW_MAJOR = "row_major"
    COL_MAJOR = "col_major"


@dataclass(frozen=True)
class TileSpec:
    """A rectangular tile of a larger matrix stored in memory.

    Attributes
    ----------
    base:
        Byte address of element (0, 0) of the *tile*.
    rows, cols:
        Tile shape in elements.
    leading_dim:
        Leading dimension of the backing matrix in elements (row length for
        row-major storage).
    elem_bytes:
        Bytes per element.
    layout:
        Storage order of the backing matrix.
    """

    base: int
    rows: int
    cols: int
    leading_dim: int
    elem_bytes: int = 2
    layout: MatrixLayout = MatrixLayout.ROW_MAJOR

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("tile dimensions must be positive")
        if self.layout is MatrixLayout.ROW_MAJOR and self.leading_dim < self.cols:
            raise ValueError("leading_dim must be >= cols for row-major tiles")
        if self.layout is MatrixLayout.COL_MAJOR and self.leading_dim < self.rows:
            raise ValueError("leading_dim must be >= rows for column-major tiles")

    @property
    def bytes(self) -> int:
        """Total payload bytes of the tile."""
        return self.rows * self.cols * self.elem_bytes

    @property
    def contiguous_run_bytes(self) -> int:
        """Bytes of each naturally contiguous run (one row or one column)."""
        if self.layout is MatrixLayout.ROW_MAJOR:
            return self.cols * self.elem_bytes
        return self.rows * self.elem_bytes

    @property
    def runs(self) -> int:
        """Number of contiguous runs the tile decomposes into."""
        return self.rows if self.layout is MatrixLayout.ROW_MAJOR else self.cols

    def element_address(self, row: int, col: int) -> int:
        """Byte address of element (row, col) of the tile."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"element ({row}, {col}) outside {self.rows}x{self.cols} tile")
        if self.layout is MatrixLayout.ROW_MAJOR:
            offset = row * self.leading_dim + col
        else:
            offset = col * self.leading_dim + row
        return self.base + offset * self.elem_bytes

    def row_addresses(self, row: int) -> List[int]:
        """Byte addresses of every element of one tile row."""
        return [self.element_address(row, col) for col in range(self.cols)]

    def iter_run_bases(self) -> Iterator[int]:
        """Base byte address of each contiguous run of the tile."""
        if self.layout is MatrixLayout.ROW_MAJOR:
            for row in range(self.rows):
                yield self.element_address(row, 0)
        else:
            for col in range(self.cols):
                yield self.element_address(0, col)


def tile_addresses(tile: TileSpec, word_bytes: int = 4) -> List[int]:
    """Word-aligned byte addresses covering the whole tile, run by run.

    Used by the shared-memory and coalescer models to derive the request
    stream a tile move generates.
    """
    addresses: List[int] = []
    run_bytes = tile.contiguous_run_bytes
    for base in tile.iter_run_bases():
        offset = 0
        while offset < run_bytes:
            addresses.append(base + offset)
            offset += word_bytes
    return addresses
