"""Set-associative cache model (L1 data/instruction caches and the shared L2).

The cache is functional at the tag level: it tracks which lines are resident
(LRU replacement), classifies accesses into hits and misses, and reports the
cycles and DRAM traffic the access stream implies.  Data values are not
stored -- the functional kernels keep their data in numpy arrays -- but the
tag behaviour is enough to reproduce the bandwidth and energy effects the
paper's memory hierarchy has on matrix-unit utilization.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.config.soc import CacheConfig
from repro.sim.stats import Counters


@dataclass
class CacheStats:
    """Aggregate access statistics of one cache instance."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class Cache:
    """A blocking set-associative cache with LRU replacement."""

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.stats = CacheStats()
        # Per-set ordered dict: tag -> dirty flag.  Ordering encodes recency.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    def _index_and_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def lookup(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no state change)."""
        index, tag = self._index_and_tag(address)
        return tag in self._sets.get(index, {})

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.  Updates LRU state."""
        index, tag = self._index_and_tag(address)
        ways = self._sets.setdefault(index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            self.stats.hits += 1
            return True

        self.stats.misses += 1
        if len(ways) >= self.config.ways:
            _, dirty = ways.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def access_stream(
        self, addresses: Iterable[int], is_write: bool = False
    ) -> Tuple[int, int]:
        """Access a whole address stream; returns (hits, misses)."""
        hits = misses = 0
        for address in addresses:
            if self.access(address, is_write=is_write):
                hits += 1
            else:
                misses += 1
        return hits, misses

    def access_cycles(self, hits: int, misses: int) -> int:
        """Cycles for a given hit/miss mix, assuming misses overlap via MSHRs."""
        if hits < 0 or misses < 0:
            raise ValueError("hit/miss counts must be non-negative")
        hit_cycles = hits * self.config.hit_latency
        # Misses overlap up to the MSHR count.
        overlapped_groups = -(-misses // max(1, self.config.mshrs)) if misses else 0
        miss_cycles = overlapped_groups * self.config.miss_penalty + misses
        return hit_cycles + miss_cycles

    def record(self, counters: Counters, prefix: str) -> None:
        """Export access counts as energy events under ``prefix``."""
        counters.add(f"{prefix}.hits", self.stats.hits)
        counters.add(f"{prefix}.misses", self.stats.misses)
        counters.add(f"{prefix}.accesses", self.stats.accesses)
        counters.add(
            f"{prefix}.bytes",
            self.stats.accesses * self.config.line_bytes,
        )

    def reset(self) -> None:
        self.stats = CacheStats()
        self._sets.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

    def __repr__(self) -> str:
        return (
            f"Cache({self.name!r}, {self.config.size_bytes // 1024}KiB, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


@dataclass
class CacheHierarchy:
    """L1 (per core) backed by a shared L2 backed by DRAM.

    Provides a convenience path for the Volta-style kernels whose SIMT loads
    traverse the full hierarchy, returning the total cycles and DRAM bytes.
    """

    l1: Cache
    l2: Cache
    dram_latency: int = 100
    stats_counters: Counters = field(default_factory=Counters)

    def load(self, address: int) -> int:
        """Load one address through L1 -> L2 -> DRAM; returns latency cycles."""
        if self.l1.access(address):
            return self.l1.config.hit_latency
        if self.l2.access(address):
            return self.l1.config.hit_latency + self.l2.config.hit_latency
        self.stats_counters.add("dram.bytes", self.l2.config.line_bytes)
        return self.l1.config.hit_latency + self.l2.config.hit_latency + self.dram_latency

    def load_stream(self, addresses: Iterable[int]) -> List[int]:
        """Load a stream of addresses; returns per-access latencies."""
        return [self.load(address) for address in addresses]
