"""Cluster DMA engine (Section 3.2.4).

The DMA engine moves rectangular tiles between global memory (through the L2
and DRAM) and the cluster shared memory, and -- in Virgo -- between the
matrix unit's accumulator memory and global memory.  It is programmed over
MMIO by a SIMT warp (a handful of stores), then runs asynchronously.

Timing: a transfer takes a fixed programming latency plus the streaming time
bounded by the slower of the DRAM channel and the shared-memory port.  Energy:
per-byte DMA traffic plus the shared-memory word writes it performs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.config.soc import DmaConfig
from repro.memory.dram import DramChannel
from repro.memory.shared_memory import BankedSharedMemory
from repro.sim.stats import Counters


class DmaDirection(enum.Enum):
    GLOBAL_TO_SHARED = "g2s"
    SHARED_TO_GLOBAL = "s2g"
    ACCUM_TO_GLOBAL = "a2g"
    GLOBAL_TO_ACCUM = "g2a"


@dataclass
class DmaTransfer:
    """One completed (or planned) DMA descriptor."""

    direction: DmaDirection
    nbytes: int
    cycles: int

    @property
    def bytes_per_cycle(self) -> float:
        return self.nbytes / self.cycles if self.cycles else 0.0


class DmaEngine:
    """MMIO-programmed bulk copy engine shared by the cluster."""

    def __init__(
        self,
        config: DmaConfig,
        dram: DramChannel,
        shared_memory: Optional[BankedSharedMemory] = None,
    ) -> None:
        if not config.present:
            raise ValueError("cannot instantiate a DMA engine that the design omits")
        self.config = config
        self.dram = dram
        self.shared_memory = shared_memory
        self.transfers: list[DmaTransfer] = []

    def transfer_cycles(self, nbytes: int, touches_dram: bool = True) -> int:
        """Cycles for one descriptor of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return self.config.program_latency
        engine_cycles = int(-(-nbytes // self.config.bytes_per_cycle))
        dram_cycles = self.dram.transfer_cycles(nbytes) if touches_dram else 0
        smem_cycles = (
            self.shared_memory.streaming_cycles(nbytes, ports=1)
            if self.shared_memory is not None
            else 0
        )
        return self.config.program_latency + max(engine_cycles, dram_cycles, smem_cycles)

    def execute(
        self,
        direction: DmaDirection,
        nbytes: int,
        counters: Counters,
    ) -> DmaTransfer:
        """Account one descriptor: timing plus energy events."""
        touches_dram = direction in (
            DmaDirection.GLOBAL_TO_SHARED,
            DmaDirection.SHARED_TO_GLOBAL,
            DmaDirection.ACCUM_TO_GLOBAL,
            DmaDirection.GLOBAL_TO_ACCUM,
        )
        cycles = self.transfer_cycles(nbytes, touches_dram=touches_dram)
        counters.add("dma.bytes", nbytes)
        counters.add("dma.descriptors", 1)
        if touches_dram:
            counters.add("dram.bytes", nbytes)
            counters.add("l2.bytes", nbytes)
        if direction is DmaDirection.GLOBAL_TO_SHARED and self.shared_memory is not None:
            self.shared_memory.record_bulk(nbytes, is_write=True, requester="dma")
        elif direction is DmaDirection.SHARED_TO_GLOBAL and self.shared_memory is not None:
            self.shared_memory.record_bulk(nbytes, is_write=False, requester="dma")
        elif direction in (DmaDirection.ACCUM_TO_GLOBAL, DmaDirection.GLOBAL_TO_ACCUM):
            words = -(-nbytes // 4)
            counters.add("accum.read_words" if direction is DmaDirection.ACCUM_TO_GLOBAL
                         else "accum.write_words", words)
        transfer = DmaTransfer(direction=direction, nbytes=nbytes, cycles=cycles)
        self.transfers.append(transfer)
        return transfer

    def effective_bandwidth(self) -> float:
        """Average bytes/cycle across all executed descriptors."""
        total_bytes = sum(transfer.nbytes for transfer in self.transfers)
        total_cycles = sum(transfer.cycles for transfer in self.transfers)
        return total_bytes / total_cycles if total_cycles else 0.0
