"""Cluster-local shared-memory interconnect (Figure 3).

The interconnect arbitrates between the narrow per-lane SIMT requests and the
wide matrix-unit requests arriving at the shared-memory banks each cycle.  It
implements the paper's three design choices:

* **Unified request sizes** -- wide requests are split into word-sized
  sub-requests distributed across the subbanks of one bank and served in a
  single cycle; when SIMT and matrix requests hit the same bank in the same
  round, the wider matrix request wins (so the matrix unit runs at full
  throughput) and the SIMT request retries next round.
* **Separate read and write paths** -- reads and writes to different banks do
  not conflict, supporting producer/consumer double buffering.
* **Unaligned SIMT filtering** -- unaligned lanes are serialized through one
  port before the crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.memory.shared_memory import BankedSharedMemory


@dataclass
class RequestBundle:
    """Requests presented to the interconnect in one arbitration round."""

    #: Per-lane byte addresses of narrow (4 B) SIMT requests.
    simt_read_addresses: Sequence[int] = field(default_factory=tuple)
    simt_write_addresses: Sequence[int] = field(default_factory=tuple)
    #: (address, nbytes) wide requests from matrix units.
    matrix_reads: Sequence[Tuple[int, int]] = field(default_factory=tuple)
    matrix_writes: Sequence[Tuple[int, int]] = field(default_factory=tuple)

    @property
    def empty(self) -> bool:
        return not (
            self.simt_read_addresses
            or self.simt_write_addresses
            or self.matrix_reads
            or self.matrix_writes
        )


@dataclass
class ArbitrationResult:
    """Outcome of arbitrating one bundle."""

    cycles: int
    matrix_requests_served: int
    simt_words_served: int
    simt_retries: int


class SharedMemoryInterconnect:
    """Arbitration model between SIMT lanes and matrix units at the banks."""

    def __init__(self, shared_memory: BankedSharedMemory) -> None:
        self.shared_memory = shared_memory
        self.total_rounds = 0
        self.total_retries = 0

    def _bank_of_wide(self, address: int) -> int:
        bank, _ = self.shared_memory.bank_and_subbank(address)
        return bank

    def arbitrate(self, bundle: RequestBundle) -> ArbitrationResult:
        """Serve one round of requests and report the cycles it takes.

        Matrix requests claim their banks first; SIMT lanes whose bank is
        claimed by a matrix request of the same direction retry in follow-up
        cycles.  Reads and writes use separate paths and therefore separate
        bank-claim sets.
        """
        if bundle.empty:
            return ArbitrationResult(0, 0, 0, 0)
        config = self.shared_memory.config
        cycles = config.access_latency
        matrix_served = 0

        claimed: Dict[str, set] = {"read": set(), "write": set()}
        for direction, requests in (("read", bundle.matrix_reads), ("write", bundle.matrix_writes)):
            for address, nbytes in requests:
                bank = self._bank_of_wide(address)
                words = -(-nbytes // config.word_bytes)
                bank_cycles = -(-words // config.subbanks)
                cycles = max(cycles, config.access_latency + bank_cycles - 1)
                claimed[direction].add(bank)
                matrix_served += 1
                self.shared_memory.record_bulk(nbytes, direction == "write", requester="matrix")

        simt_words = 0
        retries = 0
        for direction, addresses in (
            ("read", bundle.simt_read_addresses),
            ("write", bundle.simt_write_addresses),
        ):
            per_subbank: Dict[Tuple[int, int], int] = {}
            for address in addresses:
                aligned = (address // config.word_bytes) * config.word_bytes
                bank, subbank = self.shared_memory.bank_and_subbank(aligned)
                if bank in claimed[direction]:
                    retries += 1
                    continue
                per_subbank[(bank, subbank)] = per_subbank.get((bank, subbank), 0) + 1
                simt_words += 1
            if per_subbank:
                conflict_serialization = max(per_subbank.values()) - 1
                cycles = max(cycles, config.access_latency + conflict_serialization)
                self.shared_memory.record_bulk(
                    simt_words * config.word_bytes, direction == "write", requester="core"
                )
        # Retried lanes are served in extra back-to-back rounds.
        if retries:
            extra_rounds = -(-retries // max(1, config.subbanks))
            cycles += extra_rounds

        self.total_rounds += 1
        self.total_retries += retries
        return ArbitrationResult(
            cycles=cycles,
            matrix_requests_served=matrix_served,
            simt_words_served=simt_words,
            simt_retries=retries,
        )

    def concurrent_stream_cycles(
        self,
        matrix_bytes: int,
        simt_bytes: int,
        duration_hint: int,
    ) -> int:
        """Cycles for sustained concurrent matrix and SIMT streaming.

        Used by the kernel schedulers to inflate phase durations when the
        matrix unit and the cores stream from the shared memory at the same
        time.  With enough banks (double buffering places producer and
        consumer tiles in different banks) there is no interference; when the
        aggregate demand exceeds the peak bandwidth the phase stretches.
        """
        config = self.shared_memory.config
        peak = config.peak_bytes_per_cycle
        demand_per_cycle = (matrix_bytes + simt_bytes) / max(1, duration_hint)
        if demand_per_cycle <= peak:
            return duration_hint
        return int(duration_hint * demand_per_cycle / peak)
