"""Memory coalescing unit (Section 3.2.3).

Vortex originally issued one memory request per SIMT lane; the paper adds a
coalescer that merges the per-lane requests of a warp into L1-line-sized
requests.  The model takes the per-lane byte addresses of one warp memory
instruction and reports how many line-sized requests remain after merging.
The Volta-style (no-DMA) GEMM kernel depends on this unit for its data
delivery rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set


@dataclass
class CoalesceResult:
    """Outcome of coalescing one warp-wide memory access."""

    lane_requests: int
    merged_requests: int
    line_bytes: int
    unaligned_lanes: int = 0

    @property
    def efficiency(self) -> float:
        """Ratio of ideal (fully merged) requests to actual requests."""
        if self.merged_requests == 0:
            return 1.0
        ideal = max(1, -(-self.lane_requests * 4 // self.line_bytes))
        return ideal / self.merged_requests

    @property
    def bytes_requested(self) -> int:
        return self.merged_requests * self.line_bytes


class Coalescer:
    """Merges per-lane accesses of one warp into line-sized memory requests."""

    def __init__(self, line_bytes: int = 64, word_bytes: int = 4) -> None:
        if line_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError("line_bytes must be a positive multiple of word_bytes")
        self.line_bytes = line_bytes
        self.word_bytes = word_bytes

    def coalesce(self, lane_addresses: Sequence[int]) -> CoalesceResult:
        """Coalesce the byte addresses issued by the lanes of one warp."""
        lines: Set[int] = set()
        unaligned = 0
        for address in lane_addresses:
            if address < 0:
                raise ValueError("addresses must be non-negative")
            if address % self.word_bytes != 0:
                unaligned += 1
            lines.add(address // self.line_bytes)
        return CoalesceResult(
            lane_requests=len(lane_addresses),
            merged_requests=len(lines),
            line_bytes=self.line_bytes,
            unaligned_lanes=unaligned,
        )

    def coalesce_warp_accesses(
        self, accesses: Iterable[Sequence[int]]
    ) -> List[CoalesceResult]:
        """Coalesce a sequence of warp-wide accesses independently."""
        return [self.coalesce(lane_addresses) for lane_addresses in accesses]

    def requests_for_contiguous(self, nbytes: int) -> int:
        """Requests needed for a contiguous region accessed warp-by-warp."""
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        return -(-nbytes // self.line_bytes) if nbytes else 0
