"""Cluster shared memory with two-dimensional banking (Section 3.2.1).

The shared memory is partitioned into ``banks`` x ``subbanks`` word-wide SRAM
macros.  Word addresses interleave across subbanks first, then across banks:
a wide matrix-unit access of ``subbanks * 4`` bytes lands on all subbanks of
one bank in a single cycle, while the narrow 4-byte accesses of SIMT lanes
spread across subbanks.  Wide requests are prioritized when both arrive at
the same bank (Section 3.2.1, "unified request sizes").

The model provides both functional word storage (used by the functional
kernels and tests) and the timing/conflict analysis used by the kernel
schedulers, plus energy-event recording per word access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.config.soc import SharedMemoryConfig
from repro.sim.stats import Counters


@dataclass
class AccessResult:
    """Timing outcome of presenting a batch of requests in one interconnect round."""

    cycles: int
    word_accesses: int
    bank_conflicts: int
    serialized_unaligned: int = 0


class BankConflictError(Exception):
    """Raised when an address falls outside the shared memory."""


class BankedSharedMemory:
    """Functional + timing model of the banked cluster shared memory."""

    def __init__(self, config: SharedMemoryConfig) -> None:
        self.config = config
        self._words: Dict[int, int] = {}
        self.counters = Counters()

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #

    @property
    def num_words(self) -> int:
        return self.config.size_bytes // self.config.word_bytes

    def _check(self, address: int) -> None:
        if address < 0 or address + self.config.word_bytes > self.config.size_bytes:
            raise BankConflictError(
                f"address {address:#x} outside shared memory of {self.config.size_bytes} bytes"
            )

    def bank_and_subbank(self, address: int) -> Tuple[int, int]:
        """Map a byte address to its (bank, subbank) pair.

        Consecutive words interleave across the subbanks of one bank; the
        bank changes every ``bank_size`` bytes (matching Figure 3, where bank
        1 starts at 0x08000 for a 128 KiB / 4-bank configuration).
        """
        self._check(address)
        word = address // self.config.word_bytes
        words_per_bank = self.num_words // self.config.banks
        bank = word // words_per_bank
        subbank = word % self.config.subbanks
        return bank, subbank

    # ------------------------------------------------------------------ #
    # Functional storage
    # ------------------------------------------------------------------ #

    def write_word(self, address: int, value: int) -> None:
        self._check(address)
        if address % self.config.word_bytes != 0:
            raise ValueError("functional word writes must be word-aligned")
        self._words[address] = value & 0xFFFFFFFF

    def read_word(self, address: int) -> int:
        self._check(address)
        if address % self.config.word_bytes != 0:
            raise ValueError("functional word reads must be word-aligned")
        return self._words.get(address, 0)

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def simt_access(self, lane_addresses: Sequence[int], is_write: bool = False) -> AccessResult:
        """One warp-wide narrow access: each lane presents a 4-byte request.

        Lanes mapping to distinct subbanks proceed in parallel; lanes that
        collide on the same (bank, subbank) serialize.  Unaligned lanes are
        filtered into a single serialized lane (the area optimization of
        Section 3.2.1) and cost one extra cycle each.
        """
        aligned: Dict[Tuple[int, int], int] = {}
        unaligned = 0
        for address in lane_addresses:
            if address % self.config.word_bytes != 0:
                unaligned += 1
                address = (address // self.config.word_bytes) * self.config.word_bytes
            key = self.bank_and_subbank(address)
            aligned[key] = aligned.get(key, 0) + 1

        conflicts = sum(count - 1 for count in aligned.values())
        cycles = self.config.access_latency + (max(aligned.values()) - 1 if aligned else 0)
        cycles += unaligned  # serialized through the single unaligned lane
        words = len(lane_addresses)
        self._record(words, is_write, requester="core")
        return AccessResult(
            cycles=cycles,
            word_accesses=words,
            bank_conflicts=conflicts,
            serialized_unaligned=unaligned,
        )

    def wide_access(self, address: int, nbytes: int, is_write: bool = False) -> AccessResult:
        """One matrix-unit wide access: ``nbytes`` split across one bank's subbanks.

        A request of ``subbanks * word_bytes`` bytes completes in a single
        bank cycle; larger requests occupy the bank for multiple cycles.
        """
        if nbytes <= 0:
            raise ValueError("wide access must move at least one byte")
        self._check(address)
        words = -(-nbytes // self.config.word_bytes)
        per_cycle = self.config.subbanks
        cycles = self.config.access_latency + (-(-words // per_cycle)) - 1
        self._record(words, is_write, requester="matrix")
        return AccessResult(cycles=cycles, word_accesses=words, bank_conflicts=0)

    def streaming_cycles(self, nbytes: int, ports: int = 1) -> int:
        """Cycles to stream ``nbytes`` using ``ports`` banks concurrently."""
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        if nbytes == 0:
            return 0
        ports = max(1, min(ports, self.config.banks))
        bytes_per_cycle = ports * self.config.bank_width_bytes
        return max(1, int(-(-nbytes // bytes_per_cycle)))

    def contention_factor(self, concurrent_streams: int) -> float:
        """Slowdown when ``concurrent_streams`` independent streams share the banks.

        With as many banks as streams there is no slowdown (they occupy
        different banks thanks to double buffering); beyond that, streams
        time-multiplex.
        """
        if concurrent_streams <= 0:
            raise ValueError("need at least one stream")
        return max(1.0, concurrent_streams / float(self.config.banks))

    # ------------------------------------------------------------------ #
    # Energy accounting
    # ------------------------------------------------------------------ #

    def _record(self, words: int, is_write: bool, requester: str) -> None:
        direction = "write" if is_write else "read"
        self.counters.add(f"smem.{requester}.{direction}_words", words)
        self.counters.add("smem.total_words", words)

    def record_bulk(self, nbytes: int, is_write: bool, requester: str) -> None:
        """Account a bulk transfer (DMA or matrix-unit streaming) without timing."""
        words = -(-nbytes // self.config.word_bytes)
        self._record(words, is_write, requester)

    def reset(self) -> None:
        self._words.clear()
        self.counters = Counters()
