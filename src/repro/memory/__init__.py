"""Memory system substrates: DRAM, caches, coalescer, shared memory, DMA."""

from repro.memory.address import MatrixLayout, TileSpec, tile_addresses
from repro.memory.dram import DramChannel
from repro.memory.cache import Cache, CacheStats
from repro.memory.coalescer import Coalescer, CoalesceResult
from repro.memory.shared_memory import BankedSharedMemory, AccessResult
from repro.memory.dma import DmaEngine, DmaTransfer
from repro.memory.interconnect import SharedMemoryInterconnect, RequestBundle

__all__ = [
    "MatrixLayout",
    "TileSpec",
    "tile_addresses",
    "DramChannel",
    "Cache",
    "CacheStats",
    "Coalescer",
    "CoalesceResult",
    "BankedSharedMemory",
    "AccessResult",
    "DmaEngine",
    "DmaTransfer",
    "SharedMemoryInterconnect",
    "RequestBundle",
]
