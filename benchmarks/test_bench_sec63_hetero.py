"""E11 -- Section 6.3: two heterogeneous matrix units in one cluster."""

from conftest import print_comparison

from repro.analysis.report import PAPER_VALUES
from repro.kernels.heterogeneous import heterogeneous_summary, simulate_heterogeneous


def test_bench_sec63_heterogeneous_units(benchmark):
    result = benchmark.pedantic(simulate_heterogeneous, rounds=1, iterations=1)
    summary = heterogeneous_summary(result)
    paper = PAPER_VALUES["heterogeneous"]
    rows = {
        key: {"measured": value, "paper": paper.get(key)}
        for key, value in summary.items()
        if key in paper
    }
    print_comparison("Section 6.3: heterogeneous dual matrix units", rows)

    assert result.parallel_cycles < result.serial_cycles
    assert abs(result.parallel_utilization - result.serial_utilization) < 0.15
    assert result.power_per_flop_increase() < 0.10
