"""E13 -- Section 6.1.1: retired-instruction comparison across designs."""

from conftest import print_comparison

from repro.config.presets import DesignKind
from repro.kernels.gemm import simulate_gemm


def test_bench_sec611_instruction_counts(benchmark):
    def run():
        return {kind: simulate_gemm(kind, 1024) for kind in DesignKind}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    virgo = results[DesignKind.VIRGO].retired_instructions
    rows = {
        "Virgo / Volta-style instruction ratio %": {
            "measured": 100.0 * virgo / results[DesignKind.VOLTA].retired_instructions,
            "paper": 0.5,
        },
        "Virgo / Hopper-style instruction ratio %": {
            "measured": 100.0 * virgo / results[DesignKind.HOPPER].retired_instructions,
            "paper": 8.0,
        },
    }
    print_comparison("Section 6.1.1: retired instructions, GEMM 1024^3", rows)

    assert virgo / results[DesignKind.VOLTA].retired_instructions < 0.02
    assert virgo / results[DesignKind.HOPPER].retired_instructions < 0.20
