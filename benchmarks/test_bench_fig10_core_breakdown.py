"""E8 -- Figure 10: active power breakdown within the Vortex SIMT core."""

from conftest import print_series

from repro.analysis.figures import figure10_core_power_breakdown


def test_bench_fig10_core_power_breakdown(benchmark):
    breakdown = benchmark.pedantic(
        lambda: figure10_core_power_breakdown(size=1024), rounds=1, iterations=1
    )
    print_series("Figure 10: core active power breakdown (mW), GEMM 1024^3", breakdown)

    # Issue-stage power (instruction processing + RF reads) dominates the
    # tightly-coupled designs and nearly vanishes for Virgo.
    for design in ("Volta-style", "Ampere-style"):
        core_parts = {k: v for k, v in breakdown[design].items() if k.startswith("Core:")}
        assert max(core_parts, key=core_parts.get) == "Core: Issue"
    assert breakdown["Virgo"]["Core: Issue"] < 0.1 * breakdown["Ampere-style"]["Core: Issue"]
    # Hopper still pays issue-stage power for its register-file accumulators.
    assert breakdown["Hopper-style"]["Core: Issue"] > breakdown["Virgo"]["Core: Issue"]
