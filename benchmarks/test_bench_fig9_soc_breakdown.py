"""E7 -- Figure 9: SoC active power breakdown for the 1024^3 GEMM."""

from conftest import print_series

from repro.analysis.figures import figure9_soc_power_breakdown


def test_bench_fig9_soc_power_breakdown(benchmark):
    breakdown = benchmark.pedantic(
        lambda: figure9_soc_power_breakdown(size=1024), rounds=1, iterations=1
    )
    print_series("Figure 9: SoC active power breakdown (mW), GEMM 1024^3", breakdown)

    # The Vortex core dominates the core-coupled designs and collapses in Virgo.
    for design in ("Volta-style", "Ampere-style"):
        parts = breakdown[design]
        assert parts["Vortex Core"] == max(parts.values())
    assert breakdown["Virgo"]["Vortex Core"] < 0.2 * breakdown["Ampere-style"]["Vortex Core"]
    # Only Virgo has accumulator-memory power.
    assert breakdown["Virgo"]["Accum Mem"] > 0
    assert breakdown["Hopper-style"]["Accum Mem"] == 0
