"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table/figure per se: these isolate the individual mechanisms the
paper credits for Virgo's advantage (operation granularity, accumulator
placement, unified unit, asynchronous interface).
"""

from conftest import print_comparison

from repro.analysis.ablations import (
    accumulator_placement_ablation,
    async_interface_ablation,
    granularity_ablation,
    unified_unit_ablation,
)


def test_bench_ablation_granularity(benchmark):
    results = benchmark.pedantic(granularity_ablation, rounds=1, iterations=1)
    rows = {
        entry["tile"]: {"measured": entry["mac_utilization_percent"]} for entry in results
    }
    print_comparison("Ablation: Virgo operation-tile granularity (MAC util %)", rows)
    # Shrinking the operation tile must not improve utilization and must
    # increase the command/instruction count.
    assert results[0]["mac_utilization_percent"] >= results[-1]["mac_utilization_percent"]
    assert results[-1]["retired_instructions"] > results[0]["retired_instructions"]


def test_bench_ablation_accumulator_placement(benchmark):
    result = benchmark.pedantic(accumulator_placement_ablation, rounds=1, iterations=1)
    rows = {key: {"measured": value} for key, value in result.items()}
    print_comparison("Ablation: accumulator in private SRAM vs RF-class storage", rows)
    assert result["energy_increase_percent"] > 0


def test_bench_ablation_unified_unit(benchmark):
    result = benchmark.pedantic(unified_unit_ablation, rounds=1, iterations=1)
    rows = {key: {"measured": value} for key, value in result.items()}
    print_comparison("Ablation: unified cluster unit vs per-core units (SMEM footprint)", rows)
    assert result["per_core_mib"] > result["unified_mib"]


def test_bench_ablation_async_interface(benchmark):
    result = benchmark.pedantic(async_interface_ablation, rounds=1, iterations=1)
    rows = {key: {"measured": value} for key, value in result.items()}
    print_comparison("Ablation: asynchronous interface + software pipelining", rows)
    assert (
        result["asynchronous_utilization_percent"]
        > result["synchronous_utilization_percent"]
    )
    assert result["speedup_from_async_pipelining"] > 1.1
