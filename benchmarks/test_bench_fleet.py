"""Wall clock of fleet chaos sweeps: warm replica memo sharing vs cold.

Every replica of a fleet shares the process-wide iteration memo and timing
cache, and epoch extrapolation collapses steady-state stretches between
fleet events.  A warm fleet sweep (policy x fault plan over the same trace
and replica designs) therefore re-simulates almost nothing: the first cell
pays for the kernels and iteration compositions, and every later cell --
and every later *sweep* -- replays them.  The acceptance bar pins that
sharing: a second identical sweep must beat the cold one by >= 3x, while
producing byte-identical canonical results (the determinism contract the
chaos CI gate enforces across processes).

The measured ratio lands in ``BENCH_serving_perf.json`` under ``fleet_*``
keys alongside the serving and flash rows.

Run directly (also wired into the CI perf-smoke job)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_fleet.py -q
"""

import json
import time
from pathlib import Path

from conftest import print_comparison

from repro.perf import timing_cache
from repro.workloads import run_fleet

#: Second identical sweep (warm memo + timing cache) over the cold one.
MIN_FLEET_WARM_SPEEDUP = 3.0

#: The sweep: every router policy over the same trace, fleet and seeded
#: chaos -- exactly the comparison grid ``fleet_sweep_jobs`` builds.
POLICIES = ("round-robin", "least-outstanding", "least-kv", "power-of-two")
TRACE = "bursty-gpt"
FLEET = "trio-virgo"
FAULTS = "crash:0.6:400000,slow:0.5:2.5:300000"
FAULT_SEED = 11

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_serving_perf.json"


def _record_bench(section, values):
    """Merge one benchmark's measurements into ``BENCH_serving_perf.json``."""
    record = {}
    try:
        record = json.loads(BENCH_RECORD.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        pass
    record[section] = values
    BENCH_RECORD.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _sweep():
    return [
        run_fleet(TRACE, FLEET, policy=policy, faults=FAULTS,
                  fault_seed=FAULT_SEED)
        for policy in POLICIES
    ]


def test_bench_fleet_warm_sweep_speedup(benchmark):
    timing_cache().clear()  # also empties the iteration memo
    start = time.perf_counter()
    cold_results = _sweep()
    cold = time.perf_counter() - start

    benchmark.pedantic(_sweep, rounds=3, iterations=1)
    warm = min(benchmark.stats.stats.data)
    warm_results = _sweep()

    speedup = cold / warm
    print_comparison(
        "Wall clock: warm fleet chaos sweep (shared memo) vs cold",
        {
            "policies": {"measured": float(len(POLICIES))},
            "cold_sweep_ms": {"measured": cold * 1e3},
            "warm_sweep_ms": {"measured": warm * 1e3},
            "speedup": {"measured": speedup, "paper": MIN_FLEET_WARM_SPEEDUP},
        },
    )
    _record_bench(
        "fleet_warm_vs_cold",
        {
            "trace": TRACE,
            "fleet": FLEET,
            "policies": list(POLICIES),
            "faults": FAULTS,
            "fault_seed": FAULT_SEED,
            "cold_sweep_ms": round(cold * 1e3, 3),
            "warm_sweep_ms": round(warm * 1e3, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_FLEET_WARM_SPEEDUP,
        },
    )
    # Perf without correctness is a regression: the warm sweep must be a
    # byte-exact replay of the cold one, cell by cell.
    for cold_run, warm_run in zip(cold_results, warm_results):
        assert json.dumps(cold_run.to_dict(), sort_keys=True) == \
            json.dumps(warm_run.to_dict(), sort_keys=True)
    # Every cell saw chaos and kept its disposition partition intact.
    for result in cold_results:
        assert sum(result.dispositions.values()) == len(result.requests)
        assert result.fault_events
    assert speedup >= MIN_FLEET_WARM_SPEEDUP, (
        f"warm fleet sweep speedup {speedup:.2f}x below the "
        f"{MIN_FLEET_WARM_SPEEDUP}x bar"
    )
