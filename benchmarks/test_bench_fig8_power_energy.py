"""E6 -- Figure 8: active power and energy of the GEMM kernels (512^3 and 1024^3)."""

import pytest
from conftest import print_series

from repro.analysis.figures import figure8_power_energy, gemm_power_reduction
from repro.analysis.report import PAPER_VALUES


@pytest.mark.parametrize("size", (512, 1024))
def test_bench_fig8_power_energy(benchmark, size):
    data = benchmark.pedantic(lambda: figure8_power_energy(sizes=(size,)), rounds=1, iterations=1)
    print_series(f"Figure 8: GEMM {size}^3 active power (mW) / energy (mJ)", data[size])

    virgo = data[size]["Virgo"]
    ampere = data[size]["Ampere-style"]
    hopper = data[size]["Hopper-style"]
    assert virgo["active_power_mw"] < hopper["active_power_mw"] < ampere["active_power_mw"]
    assert virgo["active_energy_mj"] < hopper["active_energy_mj"] < ampere["active_energy_mj"]


def test_bench_headline_reductions(benchmark):
    reductions = benchmark.pedantic(gemm_power_reduction, rounds=1, iterations=1)
    paper = PAPER_VALUES["headline_reductions_percent"]
    rows = {
        key: {"measured": value, "paper": paper[key]} for key, value in reductions.items()
    }
    from conftest import print_comparison

    print_comparison("Headline power/energy reductions, GEMM 1024^3 (%)", rows)
    assert reductions["power_reduction_vs_ampere_percent"] > 45
    assert reductions["power_reduction_vs_hopper_percent"] > 10
    assert reductions["energy_reduction_vs_ampere_percent"] > 65
    assert reductions["energy_reduction_vs_hopper_percent"] > 15
