"""Wall-clock trajectory of the timing-cache + schedule-compression stack.

Unlike the other benchmarks (which regenerate paper numbers), this one
tracks the *simulator's own* speed so performance regressions fail loudly:

* ``run_model`` on a warm in-process timing cache must beat the uncached
  path (every layer re-simulating its kernels, the pre-cache behaviour) by
  a wide margin -- the acceptance bar is 5x, asserted here with headroom
  below the typically measured ratio so CI noise does not flake;
* ``simulate_gemm`` with steady-state schedule compression must stay
  effectively O(1) in the tile count: a 4096^3 GEMM materializes a
  constant-size operation graph and beats full expansion by a wide margin;
* a *second* ``serve`` invocation -- a fresh cache warmed from the
  persistent snapshot, iterations replaying through the iteration memo --
  must beat the true cold path by >= 3x;
* ``simulate_flash_attention`` with the steady-state-compressed tile loop
  must beat full expansion by >= 10x on long-sequence configs;
* the observability instrumentation (``repro.obs``) with recording *off*
  must stay under 2% of a warm serving run -- hot paths are allowed to be
  instrumented only because an inactive site costs a couple of global
  reads.

The serving, flash and observability ratios are additionally recorded in
``BENCH_serving_perf.json`` at the repo root.

Run directly (also wired into the CI perf-smoke job)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_perf_wallclock.py -q
"""

import gc
import json
import time
from pathlib import Path

from conftest import print_comparison

from repro.config.presets import DesignKind
from repro.obs import phase, profiling
from repro.kernels.flash_attention import (
    FlashAttentionWorkload,
    simulate_flash_attention,
)
from repro.kernels.gemm import GemmWorkload, simulate_gemm
from repro.perf import (
    cache_disabled,
    load_snapshot,
    persistent_timing_cache,
    snapshot_path,
    timing_cache,
)
from repro.workloads import (
    poisson_stream_trace,
    resolve_spec,
    run_model,
    run_serving,
    scaled_spec,
)

#: The ISSUE's motivating scenario: a deep GPT whose blocks all lower to the
#: same handful of kernel shapes.
DEEP_GPT = scaled_spec(resolve_spec("gpt-prefill"), blocks=24)

#: Generous CI thresholds (the measured ratios are typically 6-10x): fail
#: loudly on an accidental O(n^2) or cache bypass, never on timer noise.
MIN_WARM_SPEEDUP = 3.0
MIN_COMPRESSION_SPEEDUP = 3.0
#: Second serve invocation (persistent cache + iteration memo) over cold.
MIN_SERVING_WARM_SPEEDUP = 3.0
#: Compressed over fully expanded flash tile loop at long sequence length.
MIN_FLASH_COMPRESSION_SPEEDUP = 10.0
#: Cold end-to-end budget (trace build + serve) for a million-request
#: poisson stream with epoch compression on.  Without compression the same
#: run takes minutes; the budget holds a ~10x margin over the measured
#: extrapolating run so only a broken fast path can trip it.
MAX_EPOCH_MILLION_SECONDS = 10.0

#: Measured serving/flash ratios land here (repo root).  The file is
#: committed as the reviewable record of the guarded ratios -- running the
#: benchmarks refreshes it in place (like regenerating goldens), and the CI
#: perf-smoke job uploads its copy as a build artifact.
BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_serving_perf.json"


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record_bench(section, values):
    """Merge one benchmark's measurements into ``BENCH_serving_perf.json``."""
    record = {}
    try:
        record = json.loads(BENCH_RECORD.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        pass
    record[section] = values
    BENCH_RECORD.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_bench_warm_cache_model_speedup(benchmark):
    """run_model("gpt-prefill", "virgo"): warm cache vs per-layer re-simulation."""
    timing_cache().clear()
    with cache_disabled():
        uncached = _best_of(lambda: run_model("gpt-prefill", "virgo"))
    run_model("gpt-prefill", "virgo")  # seed the cache
    warm = benchmark.pedantic(
        lambda: run_model("gpt-prefill", "virgo"), rounds=5, iterations=1
    )
    warm_best = min(benchmark.stats.stats.data)
    speedup = uncached / warm_best

    timing_cache().clear()
    with cache_disabled():
        deep_uncached = _best_of(lambda: run_model(DEEP_GPT, "virgo"))
    run_model(DEEP_GPT, "virgo")
    deep_warm = _best_of(lambda: run_model(DEEP_GPT, "virgo"))

    print_comparison(
        "Wall clock: warm timing cache vs uncached (per-layer re-simulation)",
        {
            "gpt_prefill_uncached_ms": {"measured": uncached * 1e3},
            "gpt_prefill_warm_ms": {"measured": warm_best * 1e3},
            "gpt_prefill_speedup": {"measured": speedup, "paper": 5.0},
            "gpt24_uncached_ms": {"measured": deep_uncached * 1e3},
            "gpt24_warm_ms": {"measured": deep_warm * 1e3},
            "gpt24_speedup": {"measured": deep_uncached / deep_warm, "paper": 5.0},
        },
    )
    assert warm is not None
    assert speedup >= MIN_WARM_SPEEDUP
    assert deep_uncached / deep_warm >= MIN_WARM_SPEEDUP


def test_bench_schedule_compression_speedup(benchmark):
    """simulate_gemm at 4096^3: steady-state compression vs full expansion."""
    workload = GemmWorkload(m=4096, n=4096, k=4096)
    expanded_time = _best_of(
        lambda: simulate_gemm(DesignKind.VIRGO, workload, full_expansion=True), rounds=1
    )
    result = benchmark.pedantic(
        lambda: simulate_gemm(DesignKind.VIRGO, workload), rounds=3, iterations=1
    )
    compressed_time = min(benchmark.stats.stats.data)
    expanded = simulate_gemm(DesignKind.VIRGO, workload, full_expansion=True)

    print_comparison(
        "Wall clock: compressed vs fully expanded GEMM schedule (Virgo 4096^3)",
        {
            "expanded_ms": {"measured": expanded_time * 1e3},
            "compressed_ms": {"measured": compressed_time * 1e3},
            "speedup": {"measured": expanded_time / compressed_time},
            "executed_operations": {
                "measured": float(result.schedule_stats["executed_operations"])
            },
            "operations_covered": {
                "measured": float(result.schedule_stats["operation_count"])
            },
        },
    )
    assert result.total_cycles == expanded.total_cycles
    assert result.schedule_stats["executed_operations"] < 100
    assert expanded_time / compressed_time >= MIN_COMPRESSION_SPEEDUP


def test_bench_serving_warm_vs_cold(benchmark, tmp_path):
    """Second ``serve`` invocation vs the first, and vs the uncached floor.

    The cold lap is exactly what the *first* ``python -m repro serve
    --cache-dir ...`` pays in a fresh process: every distinct kernel
    simulated once, every iteration merged and list-scheduled, the snapshot
    flushed on exit.  The warm lap is the *second* invocation: an empty
    process cache re-seeded from the snapshot (kernel timings + iteration
    memo), so iterations replay instead of being re-merged/re-scheduled.
    The fully uncached floor (pre-PR2 behaviour: per-iteration
    re-simulation) is reported alongside for scale.
    """
    trace = "poisson-mixed"
    path = snapshot_path(tmp_path)
    timing_cache().clear()
    with cache_disabled():
        uncached = _best_of(lambda: run_serving(trace, "virgo"))

    def first_invocation():
        timing_cache().clear()
        if path.exists():
            path.unlink()
        with persistent_timing_cache(tmp_path):
            return run_serving(trace, "virgo")

    cold = _best_of(first_invocation)
    first_invocation()  # leave a fresh snapshot behind for the warm laps
    assert path.exists()

    def second_invocation():
        # A fresh process: empty timing cache (clearing also empties the
        # iteration memo), warmed from the on-disk snapshot.
        timing_cache().clear()
        load_snapshot(path)
        return run_serving(trace, "virgo")

    warm_result = benchmark.pedantic(second_invocation, rounds=5, iterations=1)
    warm = min(benchmark.stats.stats.data)
    timing_cache().clear()

    speedup = cold / warm
    print_comparison(
        "Wall clock: second serve invocation (persistent cache + memo) vs first",
        {
            "uncached_ms": {"measured": uncached * 1e3},
            "first_invocation_ms": {"measured": cold * 1e3},
            "second_invocation_ms": {"measured": warm * 1e3},
            "speedup": {"measured": speedup, "paper": MIN_SERVING_WARM_SPEEDUP},
        },
    )
    _record_bench(
        "serving_warm_vs_cold",
        {
            "trace": trace,
            "design": "virgo",
            "uncached_ms": round(uncached * 1e3, 3),
            "first_invocation_ms": round(cold * 1e3, 3),
            "second_invocation_ms": round(warm * 1e3, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SERVING_WARM_SPEEDUP,
        },
    )
    assert warm_result.timing_cache["misses"] == 0
    assert warm_result.iteration_memo["misses"] == 0
    assert warm_result.decode_steps_executed > 0
    assert speedup >= MIN_SERVING_WARM_SPEEDUP


def test_bench_observability_off_overhead(benchmark):
    """Recording-off instrumentation must cost < 2% of a warm serving run.

    The activation contract (``repro.obs``): with no trace recorder and no
    phase profiler active, an instrumented site is a couple of module-global
    reads.  Measure the real cost of an inactive ``phase()`` site, count the
    sites one *cold* serving run crosses (with a profiler; warm runs
    replay memoized iterations and cross far fewer),
    and bound each run's estimate -- padded by a 5x safety factor -- against
    that run's own wall clock.
    """
    trace = "poisson-mixed"

    timing_cache().clear()
    cold = _best_of(lambda: run_serving(trace, "virgo"), rounds=1)
    timing_cache().clear()
    with profiling() as profiler:
        run_serving(trace, "virgo")  # cold: every phase site fires
    cold_sites = len(profiler.records)

    benchmark.pedantic(lambda: run_serving(trace, "virgo"), rounds=5, iterations=1)
    warm = min(benchmark.stats.stats.data)
    with profiling() as profiler:
        run_serving(trace, "virgo")  # warm: memo replays skip most sites
    warm_sites = len(profiler.records)

    rounds = 200_000
    start = time.perf_counter()
    for _ in range(rounds):
        with phase("bench.noop"):
            pass
    per_site = (time.perf_counter() - start) / rounds

    # Each run is charged for the sites *it* crosses, padded 5x.
    cold_percent = 100.0 * (cold_sites * per_site * 5.0) / cold
    warm_percent = 100.0 * (warm_sites * per_site * 5.0) / warm
    overhead_percent = max(cold_percent, warm_percent)
    print_comparison(
        "Wall clock: recording-off observability overhead (5x-padded)",
        {
            "inactive_site_ns": {"measured": per_site * 1e9},
            "cold_sites": {"measured": float(cold_sites)},
            "cold_serving_ms": {"measured": cold * 1e3},
            "cold_overhead_percent": {"measured": cold_percent, "paper": 2.0},
            "warm_sites": {"measured": float(warm_sites)},
            "warm_serving_ms": {"measured": warm * 1e3},
            "warm_overhead_percent": {"measured": warm_percent, "paper": 2.0},
        },
    )
    _record_bench(
        "observability_off_overhead",
        {
            "trace": trace,
            "design": "virgo",
            "inactive_site_ns": round(per_site * 1e9, 1),
            "cold_sites": cold_sites,
            "cold_serving_ms": round(cold * 1e3, 3),
            "warm_sites": warm_sites,
            "warm_serving_ms": round(warm * 1e3, 3),
            "overhead_percent_5x_padded": round(overhead_percent, 4),
            "max_overhead_percent": 2.0,
        },
    )
    assert cold_sites > 0, "the serving path lost its phase instrumentation"
    assert overhead_percent < 2.0


def test_bench_flash_compression_speedup(benchmark):
    """Flash attention at seq 16384: steady-state compression vs the fully
    expanded (Q tile, KV tile) operation graph."""
    workload = FlashAttentionWorkload(seq_len=16384)
    expanded_time = _best_of(
        lambda: simulate_flash_attention(
            DesignKind.VIRGO, workload, full_expansion=True
        ),
        rounds=1,
    )
    result = benchmark.pedantic(
        lambda: simulate_flash_attention(DesignKind.VIRGO, workload),
        rounds=3,
        iterations=1,
    )
    compressed_time = min(benchmark.stats.stats.data)
    expanded = simulate_flash_attention(DesignKind.VIRGO, workload, full_expansion=True)

    speedup = expanded_time / compressed_time
    print_comparison(
        "Wall clock: compressed vs fully expanded flash tile loop (seq 16384)",
        {
            "expanded_ms": {"measured": expanded_time * 1e3},
            "compressed_ms": {"measured": compressed_time * 1e3},
            "speedup": {"measured": speedup, "paper": MIN_FLASH_COMPRESSION_SPEEDUP},
            "executed_operations": {
                "measured": float(result.schedule_stats["executed_operations"])
            },
            "operations_covered": {
                "measured": float(result.schedule_stats["operation_count"])
            },
        },
    )
    _record_bench(
        "flash_compression",
        {
            "design": "virgo",
            "seq_len": workload.seq_len,
            "expanded_ms": round(expanded_time * 1e3, 3),
            "compressed_ms": round(compressed_time * 1e3, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_FLASH_COMPRESSION_SPEEDUP,
        },
    )
    assert result.total_cycles == expanded.total_cycles
    assert result.phase_cycles == expanded.phase_cycles
    assert result.schedule_stats["executed_operations"] < 100
    assert speedup >= MIN_FLASH_COMPRESSION_SPEEDUP


def test_bench_epoch_compression_million_requests(benchmark):
    """A cold million-request poisson serve must finish in under 10 seconds.

    This is the epoch-compression guardrail: build the 1M-request stream
    trace and run the serving scheduler end-to-end from a cold timing
    cache.  Nearly every request is served through extrapolated epochs and
    episode replays, so the run costs O(transients), not O(iterations) --
    an accidental per-iteration loop (or a broken episode learner) blows
    the budget by an order of magnitude.  The collector is paused over the
    timed region: a gc pass over millions of live result objects measures
    the allocator, not the scheduler.
    """
    requests = 1_000_000

    def build_and_run():
        timing_cache().clear()
        trace = poisson_stream_trace("epoch-bench-1m", requests=requests)
        return run_serving(trace, "virgo")

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        result = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()
    elapsed = min(benchmark.stats.stats.data)
    timing_cache().clear()

    stats = result.epochs
    print_comparison(
        "Wall clock: cold 1M-request poisson serve (epoch compression on)",
        {
            "end_to_end_s": {"measured": elapsed, "paper": MAX_EPOCH_MILLION_SECONDS},
            "epochs": {"measured": float(stats["epochs"])},
            "episode_runs": {"measured": float(stats["episode_runs"])},
            "executed_iterations": {"measured": float(stats["executed_iterations"])},
            "extrapolated_requests": {
                "measured": float(stats["extrapolated_requests"])
            },
        },
    )
    _record_bench(
        "serving_epoch_1m",
        {
            "design": "virgo",
            "requests": requests,
            "end_to_end_s": round(elapsed, 3),
            "max_seconds": MAX_EPOCH_MILLION_SECONDS,
            "epochs": stats["epochs"],
            "episode_runs": stats["episode_runs"],
            "executed_iterations": stats["executed_iterations"],
            "extrapolated_iterations": stats["extrapolated_iterations"],
            "extrapolated_requests": stats["extrapolated_requests"],
        },
    )
    assert len(result.requests) == requests
    assert stats["enabled"] is True
    # The overwhelming majority of the stream must ride the fast paths.
    assert stats["extrapolated_requests"] > requests * 9 // 10
    assert stats["executed_iterations"] < 100_000
    assert elapsed < MAX_EPOCH_MILLION_SECONDS
