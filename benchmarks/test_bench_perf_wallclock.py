"""Wall-clock trajectory of the timing-cache + schedule-compression stack.

Unlike the other benchmarks (which regenerate paper numbers), this one
tracks the *simulator's own* speed so performance regressions fail loudly:

* ``run_model`` on a warm in-process timing cache must beat the uncached
  path (every layer re-simulating its kernels, the pre-cache behaviour) by
  a wide margin -- the acceptance bar is 5x, asserted here with headroom
  below the typically measured ratio so CI noise does not flake;
* ``simulate_gemm`` with steady-state schedule compression must stay
  effectively O(1) in the tile count: a 4096^3 GEMM materializes a
  constant-size operation graph and beats full expansion by a wide margin.

Run directly (also wired into the CI perf-smoke job)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_perf_wallclock.py -q
"""

import time

from conftest import print_comparison

from repro.config.presets import DesignKind
from repro.kernels.gemm import GemmWorkload, simulate_gemm
from repro.perf import cache_disabled, timing_cache
from repro.workloads import resolve_spec, run_model, scaled_spec

#: The ISSUE's motivating scenario: a deep GPT whose blocks all lower to the
#: same handful of kernel shapes.
DEEP_GPT = scaled_spec(resolve_spec("gpt-prefill"), blocks=24)

#: Generous CI thresholds (the measured ratios are typically 6-10x): fail
#: loudly on an accidental O(n^2) or cache bypass, never on timer noise.
MIN_WARM_SPEEDUP = 3.0
MIN_COMPRESSION_SPEEDUP = 3.0


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_warm_cache_model_speedup(benchmark):
    """run_model("gpt-prefill", "virgo"): warm cache vs per-layer re-simulation."""
    timing_cache().clear()
    with cache_disabled():
        uncached = _best_of(lambda: run_model("gpt-prefill", "virgo"))
    run_model("gpt-prefill", "virgo")  # seed the cache
    warm = benchmark.pedantic(
        lambda: run_model("gpt-prefill", "virgo"), rounds=5, iterations=1
    )
    warm_best = min(benchmark.stats.stats.data)
    speedup = uncached / warm_best

    timing_cache().clear()
    with cache_disabled():
        deep_uncached = _best_of(lambda: run_model(DEEP_GPT, "virgo"))
    run_model(DEEP_GPT, "virgo")
    deep_warm = _best_of(lambda: run_model(DEEP_GPT, "virgo"))

    print_comparison(
        "Wall clock: warm timing cache vs uncached (per-layer re-simulation)",
        {
            "gpt_prefill_uncached_ms": {"measured": uncached * 1e3},
            "gpt_prefill_warm_ms": {"measured": warm_best * 1e3},
            "gpt_prefill_speedup": {"measured": speedup, "paper": 5.0},
            "gpt24_uncached_ms": {"measured": deep_uncached * 1e3},
            "gpt24_warm_ms": {"measured": deep_warm * 1e3},
            "gpt24_speedup": {"measured": deep_uncached / deep_warm, "paper": 5.0},
        },
    )
    assert warm is not None
    assert speedup >= MIN_WARM_SPEEDUP
    assert deep_uncached / deep_warm >= MIN_WARM_SPEEDUP


def test_bench_schedule_compression_speedup(benchmark):
    """simulate_gemm at 4096^3: steady-state compression vs full expansion."""
    workload = GemmWorkload(m=4096, n=4096, k=4096)
    expanded_time = _best_of(
        lambda: simulate_gemm(DesignKind.VIRGO, workload, full_expansion=True), rounds=1
    )
    result = benchmark.pedantic(
        lambda: simulate_gemm(DesignKind.VIRGO, workload), rounds=3, iterations=1
    )
    compressed_time = min(benchmark.stats.stats.data)
    expanded = simulate_gemm(DesignKind.VIRGO, workload, full_expansion=True)

    print_comparison(
        "Wall clock: compressed vs fully expanded GEMM schedule (Virgo 4096^3)",
        {
            "expanded_ms": {"measured": expanded_time * 1e3},
            "compressed_ms": {"measured": compressed_time * 1e3},
            "speedup": {"measured": expanded_time / compressed_time},
            "executed_operations": {
                "measured": float(result.schedule_stats["executed_operations"])
            },
            "operations_covered": {
                "measured": float(result.schedule_stats["operation_count"])
            },
        },
    )
    assert result.total_cycles == expanded.total_cycles
    assert result.schedule_stats["executed_operations"] < 100
    assert expanded_time / compressed_time >= MIN_COMPRESSION_SPEEDUP
