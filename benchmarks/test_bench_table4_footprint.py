"""E4 -- Table 4: shared-memory read footprint of the 256^3 GEMM."""

from conftest import print_comparison

from repro.analysis.report import PAPER_VALUES
from repro.analysis.tables import table4_smem_footprint


def test_bench_table4_smem_footprint(benchmark):
    table = benchmark(table4_smem_footprint)
    paper = PAPER_VALUES["table4_smem_footprint_mib"]
    rows = {
        name: {"measured": data["mib"], "paper": paper[name]} for name, data in table.items()
    }
    print_comparison("Table 4: shared-memory read footprint (MiB), GEMM 256^3", rows)

    assert table["Tightly-coupled"]["mib"] > table["Operand-decoupled"]["mib"]
    assert table["Operand-decoupled"]["mib"] > table["Disaggregated"]["mib"]
    assert abs(table["Disaggregated"]["normalized"] - 1.0) < 1e-9
