"""E3 -- Table 3: MAC utilization of the GEMM kernel across designs and sizes."""

import pytest
from conftest import print_comparison

from repro.analysis.report import PAPER_VALUES
from repro.config.presets import DesignKind
from repro.runner import run_gemm

SIZES = (256, 512, 1024)


@pytest.mark.parametrize("size", SIZES)
def test_bench_table3_gemm_utilization(benchmark, size):
    def run_all():
        return {kind: run_gemm(kind, size) for kind in DesignKind}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    paper = PAPER_VALUES["table3_mac_utilization_percent"]
    rows = {
        kind.display_name: {
            "measured": result.mac_utilization_percent,
            "paper": paper[f"{kind.display_name}_{size}"],
        }
        for kind, result in results.items()
    }
    print_comparison(f"Table 3: MAC utilization (%), GEMM {size}^3", rows)

    # The paper's qualitative result: Virgo >= Hopper > Ampere > Volta.
    assert (
        results[DesignKind.VIRGO].mac_utilization
        >= results[DesignKind.HOPPER].mac_utilization
        > results[DesignKind.AMPERE].mac_utilization
        > results[DesignKind.VOLTA].mac_utilization
    )
