"""E14 -- continuous batching: merged-schedule serving vs isolated requests.

The MoE benchmark (E13) shows the dual-unit cluster overlapping independent
expert GEMMs *within* one model.  This benchmark closes the loop at serving
scale: a heterogeneous decode mix (GPT, GQA and MoE requests co-resident at
cycle 0) is continuous-batched into one merged kernel schedule per decode
iteration, and the merged makespan is compared against the sum of the
isolated per-request makespans -- what a serve-one-request-at-a-time system
would take on the same design.  Tracked metrics: the merged/isolated
speedup, per-request latency percentiles and per-unit occupancy under load.
"""

from conftest import print_comparison

from repro.analysis.serving import serving_latency_report
from repro.config.presets import DesignKind
from repro.workloads import ServingScheduler, resolve_trace
from repro.workloads.lowering import MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE

#: The paper-style acceptance bar: merging must beat isolated serving by
#: at least this factor on the co-resident heterogeneous decode mix.
MIN_MERGED_SPEEDUP = 1.15


def _run_pair():
    trace = resolve_trace("offline-mixed")
    scheduler = ServingScheduler(DesignKind.VIRGO, heterogeneous=True)
    merged = scheduler.run(trace)
    isolated_sum = sum(
        scheduler.isolated_cycles(request, trace.context_bucket)
        for request in trace.requests
    )
    return merged, isolated_sum


def test_bench_serving_merged_vs_isolated(benchmark):
    merged, isolated_sum = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    report = serving_latency_report(merged)
    occupancy = report["unit_occupancy_percent"]
    speedup = isolated_sum / merged.total_cycles
    rows = {
        "merged_makespan_cycles": {"measured": float(merged.total_cycles)},
        "isolated_sum_cycles": {"measured": float(isolated_sum)},
        "merged_speedup": {"measured": speedup},
        "latency_p50_cycles": {"measured": report["latency_cycles"]["p50"]},
        "latency_p99_cycles": {"measured": report["latency_cycles"]["p99"]},
        "ttft_p50_cycles": {"measured": report["ttft_cycles"]["p50"]},
        "mean_batch": {"measured": merged.mean_batch},
        "matrix_occupancy_percent": {"measured": occupancy[MATRIX_RESOURCE]},
        "small_matrix_occupancy_percent": {
            "measured": occupancy[SMALL_MATRIX_RESOURCE]
        },
    }
    print_comparison(
        "Serving: continuous batching vs isolated requests (Virgo, dual unit)", rows
    )

    # The acceptance bar: the merged schedule must realize real cross-request
    # overlap -- a makespan well below serving the requests one at a time --
    # with both matrix units carrying a meaningful share of the load.
    assert speedup >= MIN_MERGED_SPEEDUP, (
        f"merged serving speedup {speedup:.2f}x below the {MIN_MERGED_SPEEDUP}x bar"
    )
    assert occupancy[MATRIX_RESOURCE] > 50.0
    assert occupancy[SMALL_MATRIX_RESOURCE] > 10.0
    # Latency sanity: every request decoded its full budget, and the p99
    # request still finished inside the merged makespan.
    assert merged.decode_steps_executed == resolve_trace("offline-mixed").total_decode_steps
    assert report["latency_cycles"]["p99"] <= merged.total_cycles
