"""E10 -- Figure 12 + Section 6.2: FlashAttention-3 power, energy and utilization."""

from conftest import print_comparison, print_series

from repro.analysis.figures import figure12_flash_attention
from repro.analysis.report import PAPER_VALUES


def test_bench_fig12_flash_attention(benchmark):
    data = benchmark.pedantic(figure12_flash_attention, rounds=1, iterations=1)
    paper = PAPER_VALUES["flash_attention"]

    rows = {
        "Virgo utilization %": {
            "measured": data["Virgo"]["mac_utilization_percent"],
            "paper": paper["virgo_mac_utilization_percent"],
        },
        "Ampere utilization %": {
            "measured": data["Ampere-style"]["mac_utilization_percent"],
            "paper": paper["ampere_mac_utilization_percent"],
        },
        "Energy reduction %": {
            "measured": 100.0
            * (1.0 - data["Virgo"]["active_energy_uj"] / data["Ampere-style"]["active_energy_uj"]),
            "paper": paper["energy_reduction_percent"],
        },
    }
    print_comparison("FlashAttention-3 (seq 1024, head dim 64)", rows)
    print_series(
        "Figure 12: FlashAttention-3 power breakdown (mW)",
        {name: values["power_breakdown_mw"] for name, values in data.items()},
    )

    assert (
        data["Virgo"]["mac_utilization_percent"]
        > 1.4 * data["Ampere-style"]["mac_utilization_percent"]
    )
    assert data["Virgo"]["active_energy_uj"] < data["Ampere-style"]["active_energy_uj"]
    assert data["Virgo"]["active_power_mw"] < data["Ampere-style"]["active_power_mw"]
