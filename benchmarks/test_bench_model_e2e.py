"""E12 -- model-level end to end: one GPT block on Virgo vs the baseline.

The paper evaluates per-kernel metrics; this benchmark starts the model-level
trajectory: a full GPT-style decoder block (prefill) lowered through
``repro.workloads`` onto Virgo and the Ampere-style baseline, tracking
end-to-end cycles, MAC utilization and energy so future PRs can see whether
model-scale numbers move.
"""

from conftest import print_comparison

from repro.config.presets import DesignKind
from repro.workloads import resolve_spec, run_model, scaled_spec

#: One decoder block keeps the benchmark quick while exercising every layer
#: kind (norm, fused QKV, attention, projections, FFN, residuals).
ONE_BLOCK = scaled_spec(resolve_spec("gpt-prefill"), blocks=1)


def _run_pair():
    virgo = run_model(ONE_BLOCK, DesignKind.VIRGO)
    ampere = run_model(ONE_BLOCK, DesignKind.AMPERE)
    return virgo, ampere


def test_bench_model_gpt_block_e2e(benchmark):
    virgo, ampere = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    rows = {
        "virgo_total_cycles": {"measured": float(virgo.total_cycles)},
        "ampere_total_cycles": {"measured": float(ampere.total_cycles)},
        "virgo_mac_util_percent": {"measured": virgo.mac_utilization_percent},
        "ampere_mac_util_percent": {"measured": ampere.mac_utilization_percent},
        "virgo_energy_uj": {"measured": virgo.active_energy_uj},
        "ampere_energy_uj": {"measured": ampere.active_energy_uj},
        "virgo_speedup": {"measured": ampere.total_cycles / virgo.total_cycles},
        "virgo_energy_ratio": {"measured": ampere.active_energy_uj / virgo.active_energy_uj},
    }
    print_comparison("Model e2e: one GPT block (prefill), Virgo vs Ampere-style", rows)

    # Disaggregation must keep winning at model scale, not just per kernel.
    assert virgo.total_cycles < ampere.total_cycles
    assert virgo.active_energy_uj < ampere.active_energy_uj
    assert virgo.mac_utilization_percent > 50.0
    # The schedule really is multi-kernel: every layer kind got lowered.
    kinds = {kind for layer in virgo.layers for kind in layer.kinds}
    assert kinds == {"gemm", "flash", "simt"}
