"""E12 -- Section 4.5.1: synchronization (fence polling) overhead in FlashAttention-3."""

from conftest import print_comparison

from repro.analysis.report import PAPER_VALUES
from repro.config.presets import DesignKind
from repro.kernels.flash_attention import simulate_flash_attention


def test_bench_sec451_synchronization_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: simulate_flash_attention(DesignKind.VIRGO), rounds=1, iterations=1
    )
    paper = PAPER_VALUES["flash_attention"]
    rows = {
        "fence poll cycles / iteration": {
            "measured": result.fence_poll_cycles_avg,
            "paper": paper["fence_poll_cycles"],
        },
        "fence overhead % of runtime": {
            "measured": 100.0 * result.fence_overhead_fraction,
            "paper": paper["fence_overhead_percent"],
        },
    }
    print_comparison("Section 4.5.1: virgo_fence overhead", rows)
    assert result.fence_overhead_fraction < 0.08
