"""E13 -- MoE expert parallelism: measured dual-unit overlap at model scale.

The paper's heterogeneous dual-unit showcase (Section 6.3) runs two
hand-picked GEMMs concurrently.  This benchmark closes the loop at model
scale: a Mixtral-style MoE decode step lowers to a kernel graph wide enough
(one independent GEMM pair per expert) that the scheduler keeps both matrix
units and the SIMT cores busy at once.  Tracked metrics: makespan vs. the
serialized sum of kernel times (the measured overlap) and per-unit occupancy.
"""

from conftest import print_comparison

from repro.analysis.model_breakdown import model_overlap_report
from repro.config.presets import DesignKind
from repro.workloads import run_model
from repro.workloads.lowering import MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE


def _run_pair():
    single = run_model("moe-decode", DesignKind.VIRGO)
    dual = run_model("moe-decode", DesignKind.VIRGO, heterogeneous=True)
    return single, dual


def test_bench_moe_decode_dual_unit_overlap(benchmark):
    single, dual = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    report = model_overlap_report(dual)
    occupancy = report["unit_occupancy_percent"]
    rows = {
        "single_unit_makespan": {"measured": float(single.total_cycles)},
        "dual_unit_makespan": {"measured": float(dual.total_cycles)},
        "dual_serialized_cycles": {"measured": float(report["serialized_cycles"])},
        "overlap_speedup": {"measured": report["overlap_speedup"]},
        "dual_vs_single_speedup": {
            "measured": single.total_cycles / dual.total_cycles
        },
        "matrix_occupancy_percent": {"measured": occupancy[MATRIX_RESOURCE]},
        "small_matrix_occupancy_percent": {
            "measured": occupancy[SMALL_MATRIX_RESOURCE]
        },
    }
    print_comparison("Model e2e: MoE decode, dual-unit overlap on Virgo", rows)

    # The acceptance bar: the wide expert graph must realize real overlap --
    # a makespan strictly below running the same kernels back to back -- and
    # the second matrix unit must carry a meaningful share of it.
    assert dual.total_cycles < report["serialized_cycles"]
    assert dual.total_cycles < single.total_cycles
    assert occupancy[MATRIX_RESOURCE] > 50.0
    assert occupancy[SMALL_MATRIX_RESOURCE] > 10.0
    # Expert fan-out survives aggregation: every MoE layer reports its width.
    assert all(entry["experts"] == 8 for entry in report["moe_layers"])
