"""E2 -- Table 2: hardware configuration of the evaluated GPU designs."""

from conftest import print_series

from repro.analysis.tables import table2_hardware_configuration


def test_bench_table2_hardware_configuration(benchmark):
    table = benchmark(table2_hardware_configuration)
    numeric = {
        name: {
            key: float(value)
            for key, value in row.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for name, row in table.items()
    }
    print_series("Table 2: hardware configuration", numeric)

    # Every cluster exposes 256 FP16 MACs/cycle (the fair-comparison constraint).
    for row in table.values():
        assert row["macs_per_cluster"] == 256
    assert table["Virgo"]["tile"] == "128x64x128"
    assert table["Hopper-style"]["tile"] == "16x16x32"
    assert table["Volta-style"]["has_dma"] is False
