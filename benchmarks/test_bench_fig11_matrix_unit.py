"""E9 -- Figure 11: matrix-unit active energy breakdown for the 1024^3 GEMM."""

from conftest import print_series

from repro.analysis.figures import figure11_matrix_unit_energy


def test_bench_fig11_matrix_unit_energy(benchmark):
    breakdown = benchmark.pedantic(
        lambda: figure11_matrix_unit_energy(size=1024), rounds=1, iterations=1
    )
    print_series("Figure 11: matrix-unit active energy breakdown (uJ), GEMM 1024^3", breakdown)

    # PE energy is similar across designs (same FLOPs), Virgo slightly lower
    # thanks to fused multiply-add PEs.
    ampere_pe = breakdown["Ampere-style"]["PEs"]
    hopper_pe = breakdown["Hopper-style"]["PEs"]
    virgo_pe = breakdown["Virgo"]["PEs"]
    assert abs(ampere_pe - hopper_pe) / hopper_pe < 0.2
    assert virgo_pe < ampere_pe
    assert virgo_pe > 0.7 * ampere_pe
    # Only Virgo's unit contains an accumulator memory and an SMEM interface.
    assert breakdown["Virgo"]["Accum Mem"] > 0
    assert breakdown["Virgo"]["SMEM Interface"] > 0
    assert breakdown["Ampere-style"]["Accum Mem"] == 0
    # The tightly-coupled units stage operands/results in buffers instead.
    assert breakdown["Ampere-style"]["Operand Buffer"] > 0
    assert breakdown["Ampere-style"]["Result Buffer"] > 0
