"""E1 -- Table 1: GPU scaling trends and CUTLASS kernel occupancy."""

from conftest import print_comparison

from repro.analysis.tables import table1_scaling_trends

PAPER_OCCUPANCY = {"V100": 12.5, "A100": 10.0, "H100": 14.1}


def test_bench_table1_occupancy(benchmark):
    table = benchmark(table1_scaling_trends)
    rows = {
        gpu: {"measured": data["occupancy_percent"], "paper": PAPER_OCCUPANCY[gpu]}
        for gpu, data in table.items()
    }
    print_comparison("Table 1: CUTLASS GEMM warp occupancy (%)", rows)
    for gpu, data in table.items():
        assert data["limiting_factor"] == "registers"
        assert 5.0 <= data["occupancy_percent"] <= 25.0
