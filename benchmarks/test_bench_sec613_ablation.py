"""E14 -- Section 6.1.3: shared-memory banking ablation for the tightly-coupled design.

The paper scales the Volta/Ampere-style shared memory to 2x more aggressive
banking because the tensor cores' fragment reads would otherwise be
bandwidth-bound (46.9% -> 55.0% utilization in one configuration).  This
bench sweeps the subbank count of the Ampere-style design and reports the
achieved utilization and the shared-memory streaming bound per iteration.
"""

from dataclasses import replace

from conftest import print_comparison

from repro.config.presets import ampere_style
from repro.kernels.gemm import GemmWorkload, TightlyCoupledGemmKernel
from repro.kernels.gemm.tiling import tiling_for_design


def _design_with_subbanks(subbanks: int):
    base = ampere_style()
    smem = replace(base.soc.cluster.shared_memory, subbanks=subbanks)
    cluster = replace(base.soc.cluster, shared_memory=smem)
    return replace(base, soc=replace(base.soc, cluster=cluster))


def test_bench_sec613_smem_banking_ablation(benchmark):
    def run():
        results = {}
        for subbanks in (4, 8, 16):
            design = _design_with_subbanks(subbanks)
            kernel = TightlyCoupledGemmKernel(design)
            results[subbanks] = kernel.simulate(GemmWorkload.square(512))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {
        f"{subbanks} subbanks / bank": {"measured": result.mac_utilization_percent}
        for subbanks, result in results.items()
    }
    print_comparison("Section 6.1.3: Ampere-style utilization vs shared-memory banking (%)", rows)

    # More aggressive banking never hurts, and the peak bandwidth doubles.
    assert results[16].mac_utilization >= results[8].mac_utilization
    assert results[8].mac_utilization >= results[4].mac_utilization
    design_narrow = _design_with_subbanks(4)
    design_wide = _design_with_subbanks(16)
    tiling = tiling_for_design(design_wide, GemmWorkload.square(512))
    assert (
        design_wide.cluster.shared_memory.peak_bytes_per_cycle
        == 4 * design_narrow.cluster.shared_memory.peak_bytes_per_cycle
    )
    assert tiling.fits_in_shared_memory(design_wide)
