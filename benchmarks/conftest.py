"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper: it runs
the relevant kernels through ``pytest-benchmark`` (so regeneration time is
tracked) and prints the regenerated rows next to the values the paper
reports, which is the data EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping


def print_comparison(title: str, rows: Mapping[str, Mapping[str, float]]) -> None:
    """Print measured-vs-paper rows for one experiment."""
    print(f"\n=== {title} ===")
    width = max((len(name) for name in rows), default=10)
    for name, values in rows.items():
        measured = values.get("measured")
        paper = values.get("paper")
        if paper is None:
            print(f"  {name:<{width}}  measured={measured:.2f}")
        else:
            print(f"  {name:<{width}}  measured={measured:8.2f}   paper={paper:8.2f}")


def print_series(title: str, series: Mapping[str, Mapping[str, float]]) -> None:
    """Print a per-design breakdown series (figure-style data)."""
    print(f"\n=== {title} ===")
    for design, parts in series.items():
        formatted = ", ".join(f"{key}={value:.2f}" for key, value in parts.items())
        print(f"  {design}: {formatted}")
