"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper: it runs
the relevant kernels through ``pytest-benchmark`` (so regeneration time is
tracked) and prints the regenerated rows next to the values the paper
reports, which is the data EXPERIMENTS.md records.
"""

from __future__ import annotations

import os
from typing import Mapping

# Wall-clock determinism: pin every BLAS/OpenMP worker pool to one thread
# before numpy's backends spin up.  The benchmarks in this directory assert
# on elapsed time; oversubscribed thread pools are the main source of
# run-to-run variance on shared CI runners, and none of the measured code
# paths benefit from BLAS parallelism (the arrays are tiny or memory-bound).
for _pool in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_pool, "1")


def print_comparison(title: str, rows: Mapping[str, Mapping[str, float]]) -> None:
    """Print measured-vs-paper rows for one experiment."""
    print(f"\n=== {title} ===")
    width = max((len(name) for name in rows), default=10)
    for name, values in rows.items():
        measured = values.get("measured")
        paper = values.get("paper")
        if paper is None:
            print(f"  {name:<{width}}  measured={measured:.2f}")
        else:
            print(f"  {name:<{width}}  measured={measured:8.2f}   paper={paper:8.2f}")


def print_series(title: str, series: Mapping[str, Mapping[str, float]]) -> None:
    """Print a per-design breakdown series (figure-style data)."""
    print(f"\n=== {title} ===")
    for design, parts in series.items():
        formatted = ", ".join(f"{key}={value:.2f}" for key, value in parts.items())
        print(f"  {design}: {formatted}")
