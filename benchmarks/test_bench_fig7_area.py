"""E5 -- Figure 7: SoC area breakdown of the evaluated designs."""

from conftest import print_series

from repro.analysis.figures import figure7_area_breakdown


def test_bench_fig7_area_breakdown(benchmark):
    areas = benchmark(figure7_area_breakdown)
    print_series("Figure 7: SoC area breakdown (um^2)", areas)

    totals = {name: sum(parts.values()) for name, parts in areas.items()}
    # Paper: Virgo is within 0.1% of Volta-style; our density model keeps the
    # two same-core-count designs within a few percent.
    assert abs(totals["Virgo"] - totals["Volta-style"]) / totals["Volta-style"] < 0.15
    # Only Virgo spends area on the accumulator memory.
    assert areas["Virgo"]["Accum Mem"] > 0
    assert areas["Volta-style"]["Accum Mem"] == 0
