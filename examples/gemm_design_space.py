#!/usr/bin/env python3
"""Design-space exploration: regenerate Table 3 and the Figure 8/9/10 data series.

The script sweeps the paper's three GEMM sizes across the four integration
styles, prints the MAC-utilization table, the power/energy comparison and the
SoC/core power breakdowns, and shows how to explore a non-preset design point
(a Virgo cluster with a 32x32 systolic array).

Run with:  python examples/gemm_design_space.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import DesignKind, run_gemm
from repro.analysis.tables import format_table
from repro.config.presets import virgo
from repro.kernels.gemm import GEMM_SIZES


def sweep_presets() -> None:
    print("== Table 3: MAC utilization (%) ==")
    headers = ["design"] + [f"{size}^3" for size in GEMM_SIZES]
    rows = []
    for kind in DesignKind:
        row = [kind.display_name]
        for size in GEMM_SIZES:
            row.append(f"{run_gemm(kind, size).mac_utilization_percent:.1f}")
        rows.append(row)
    print(format_table(headers, rows))

    print("\n== Figure 8/9: power, energy and dominant component (1024^3) ==")
    headers = ["design", "power mW", "energy uJ", "dominant component"]
    rows = []
    for kind in DesignKind:
        run = run_gemm(kind, 1024)
        rows.append(
            [
                kind.display_name,
                f"{run.active_power_mw:.1f}",
                f"{run.active_energy_uj:.1f}",
                run.soc_breakdown().dominant_component(),
            ]
        )
    print(format_table(headers, rows))

    print("\n== Figure 10: core issue-stage power (mW equivalent, 1024^3) ==")
    for kind in DesignKind:
        run = run_gemm(kind, 1024)
        breakdown = run.core_breakdown()
        seconds = run.total_cycles / (run.design.soc.clock_mhz * 1e6)
        issue_mw = breakdown.parts_pj["Core: Issue"] * 1e-12 / seconds * 1e3
        print(f"  {kind.display_name:<14} issue stage: {issue_mw:8.2f} mW")


def explore_scaled_virgo() -> None:
    """Scale the Virgo systolic array up and watch utilization and power."""
    print("\n== Scaling the Virgo matrix unit (1024^3 GEMM) ==")
    base = virgo()
    headers = ["mesh", "MACs/cycle", "SMEM B/cycle", "MAC util %", "power mW"]
    rows = []
    for mesh in (8, 16, 32):
        unit = replace(
            base.matrix_unit,
            systolic_rows=mesh,
            systolic_cols=mesh,
            macs_per_cycle=mesh * mesh,
            tile_m=8 * mesh,
            tile_n=4 * mesh,
            tile_k=8 * mesh,
        )
        # The paper's memory system is parameterized: scaling the unit up also
        # widens the shared-memory port feeding it (more subbanks per bank),
        # otherwise operand streaming becomes the bottleneck.
        smem = replace(base.soc.cluster.shared_memory, subbanks=max(4, mesh // 2))
        cluster = replace(base.soc.cluster, matrix_unit=unit, shared_memory=smem)
        design = replace(base, soc=replace(base.soc, cluster=cluster))
        run = run_gemm(design, 1024)
        rows.append(
            [
                f"{mesh}x{mesh}",
                str(mesh * mesh),
                str(smem.bank_width_bytes),
                f"{run.mac_utilization_percent:.1f}",
                f"{run.active_power_mw:.1f}",
            ]
        )
    print(format_table(headers, rows))
    print("With the memory system scaled alongside the mesh, cluster-level integration")
    print("keeps utilization high as the unit grows -- the register file never becomes")
    print("the limiter, which is exactly the scalability argument of the paper.")


def main() -> None:
    sweep_presets()
    explore_scaled_virgo()


if __name__ == "__main__":
    main()
