#!/usr/bin/env python3
"""Quickstart: simulate one GEMM on all four designs and print the headline metrics.

The per-design rows come straight from the canonical ``to_dict()`` encoding
every run result exposes -- the same encoding the CLI and the batch-runner
cache use -- so what you see here is exactly what lands in result files.

Run with:  python examples/quickstart.py [size]
"""

from __future__ import annotations

import sys

from repro import DesignKind, run_gemm
from repro.runner import to_json


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    print(f"GEMM {size}x{size}x{size} (FP16) on one GPU cluster, 400 MHz")
    print(f"{'design':<14} {'cycles':>12} {'MAC util %':>11} {'power mW':>10} "
          f"{'energy uJ':>11} {'instructions':>14}")
    results = {kind: run_gemm(kind, size) for kind in DesignKind}
    for run in results.values():
        row = run.to_dict()
        print(
            f"{row['design']:<14} {row['total_cycles']:>12,} "
            f"{row['mac_utilization_percent']:>11.1f} {row['active_power_mw']:>10.1f} "
            f"{row['active_energy_uj']:>11.1f} {row['retired_instructions']:>14,}"
        )

    virgo = results[DesignKind.VIRGO].to_dict()
    ampere = results[DesignKind.AMPERE].to_dict()
    reduction = 100.0 * (1.0 - virgo["active_power_mw"] / ampere["active_power_mw"])
    print(f"\nVirgo reduces active power by {reduction:.1f}% vs the Ampere-style baseline "
          f"(paper: 67.3% at 1024^3).")

    print("\nCanonical JSON encoding of the Virgo run (what caches and the CLI emit):")
    print(to_json(results[DesignKind.VIRGO]))


if __name__ == "__main__":
    main()
