#!/usr/bin/env python3
"""Quickstart: simulate one GEMM on all four designs and print the headline metrics.

Run with:  python examples/quickstart.py [size]
"""

from __future__ import annotations

import sys

from repro import DesignKind, run_gemm


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    print(f"GEMM {size}x{size}x{size} (FP16) on one GPU cluster, 400 MHz")
    print(f"{'design':<14} {'cycles':>12} {'MAC util %':>11} {'power mW':>10} "
          f"{'energy uJ':>11} {'instructions':>14}")
    for kind in DesignKind:
        run = run_gemm(kind, size)
        print(
            f"{run.design_name:<14} {run.total_cycles:>12,} "
            f"{run.mac_utilization_percent:>11.1f} {run.active_power_mw:>10.1f} "
            f"{run.active_energy_uj:>11.1f} {run.retired_instructions:>14,}"
        )

    virgo = run_gemm(DesignKind.VIRGO, size)
    ampere = run_gemm(DesignKind.AMPERE, size)
    reduction = 100.0 * (1.0 - virgo.active_power_mw / ampere.active_power_mw)
    print(f"\nVirgo reduces active power by {reduction:.1f}% vs the Ampere-style baseline "
          f"(paper: 67.3% at 1024^3).")


if __name__ == "__main__":
    main()
