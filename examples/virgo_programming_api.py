#!/usr/bin/env python3
"""Programming Virgo with the low-level virgo_* API (Section 4.3, Listing 1).

The example writes a small K-blocked GEMM the way a Virgo kernel would:
asynchronous DMA loads double-buffered in shared memory, asynchronous matrix
operations accumulating in the unit's accumulator memory, fences and
cluster-wide barriers for ordering -- then verifies the result against numpy
and reports the cycle/energy accounting the context collected.

Run with:  python examples/virgo_programming_api.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.config.presets import virgo
from repro.core.api import VirgoContext
from repro.energy.model import EnergyTable
from repro.energy.power import make_power_report


def main() -> None:
    rng = np.random.default_rng(11)
    m, n, k = 128, 64, 512
    block_k = 128

    a = rng.standard_normal((m, k)).astype(np.float16)
    b = rng.standard_normal((k, n)).astype(np.float16)
    c = np.zeros((m, n), dtype=np.float32)

    design = virgo()
    context = VirgoContext(design=design)
    context.global_store("A", a)
    context.global_store("B", b)
    context.global_store("C", c)
    # Double-buffered shared-memory tiles (producer/consumer halves).
    for half in (0, 1):
        context.shared_alloc(f"smem_A{half}", (m, block_k))
        context.shared_alloc(f"smem_B{half}", (block_k, n))

    # Prologue: load the first K tile.
    context.virgo_dma_load("A", "smem_A0", col=0, rows=m, cols=block_k)
    context.virgo_dma_load("B", "smem_B0", row=0, rows=block_k, cols=n)
    context.virgo_fence()

    for iteration in range(k // block_k):
        consume, produce = iteration % 2, (iteration + 1) % 2
        # Kick off the asynchronous matrix operation on the consumed buffers.
        context.virgo_compute(
            f"smem_A{consume}", f"smem_B{consume}", "acc", accumulate=iteration > 0
        )
        # Overlap: prefetch the next K tile into the other buffer half.
        if iteration + 1 < k // block_k:
            offset = (iteration + 1) * block_k
            context.virgo_dma_load("A", f"smem_A{produce}", col=offset, rows=m, cols=block_k)
            context.virgo_dma_load("B", f"smem_B{produce}", row=offset, rows=block_k, cols=n)
        context.virgo_fence()
        context.threadblock_barrier()

    context.virgo_dma_store("acc", "C")

    expected = a.astype(np.float32) @ b.astype(np.float32)
    error = np.abs(context.global_load("C") - expected).max()
    counters = context.gather_counters()
    report = make_power_report(
        design.name,
        counters,
        EnergyTable.for_design(design.style),
        context.elapsed_cycles(),
        design.soc,
    )

    print("== virgo_* API GEMM (128x64x512, K blocked by 128) ==")
    print(f"  max |error| vs numpy reference: {error:.3e}")
    print(f"  simulated cycles:               {context.elapsed_cycles():,}")
    print(f"  fence polling cycles:           {context.fence_poll_cycles:,} "
          f"across {context.fence_count} fences")
    print(f"  active energy estimate:         {report.total_energy_uj:.2f} uJ")
    print(f"  shared-memory words touched:    {int(counters['smem.total_words']):,}")
    print("\n  power report (canonical to_dict() encoding):")
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
