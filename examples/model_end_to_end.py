#!/usr/bin/env python3
"""End-to-end model workloads: GPT prefill vs decode on Virgo vs the baseline.

Lowers a two-block GPT-style decoder through ``repro.workloads`` -- prefill
(full-sequence causal attention) and decode (one query token against a 1024-
entry KV cache) as separate kernel schedules -- and runs both on Virgo and
the Ampere-style tightly-coupled baseline.  The contrast is the point:

* in prefill the matrix units run fat GEMMs and Virgo's disaggregated unit
  sustains high MAC utilization;
* in decode every projection degenerates to a skinny matrix-vector product,
  utilization collapses on every design, and the SIMT softmax / elementwise
  share of the runtime balloons.

Run with:  python examples/model_end_to_end.py
"""

from __future__ import annotations

from repro import DesignKind, run_model
from repro.analysis.model_breakdown import (
    compare_models,
    model_kind_cycles,
    model_phase_summary,
)
from repro.analysis.tables import format_table


def main() -> None:
    runs = []
    for name in ("gpt-prefill", "gpt-decode"):
        for kind in (DesignKind.VIRGO, DesignKind.AMPERE):
            runs.append(run_model(name, kind))

    headers, rows = compare_models(runs)
    print("GPT 2-block decoder, hidden 512, 8 heads (decode: 1024-token KV cache)\n")
    print(format_table(headers, rows))

    print("\nBusy cycles by kernel kind (where does the time go?):")
    for result in runs:
        kinds = model_kind_cycles(result)
        total = sum(kinds.values()) or 1
        shares = ", ".join(
            f"{kind}={cycles:,} ({100.0 * cycles / total:.0f}%)"
            for kind, cycles in sorted(kinds.items())
        )
        print(f"  {result.model:<12} {result.design_name:<13} {shares}")

    prefill, decode = runs[0], runs[2]
    print("\nPer-phase summary on Virgo:")
    for result in (prefill, decode):
        for phase, summary in model_phase_summary(result).items():
            print(
                f"  {phase:<8} {summary['busy_cycles']:>12,.0f} busy cycles, "
                f"{summary['energy_uj']:>9.1f} uJ"
            )

    speedup = runs[1].total_cycles / runs[0].total_cycles
    decode_speedup = runs[3].total_cycles / runs[2].total_cycles
    print(
        f"\nVirgo vs Ampere-style: {speedup:.2f}x faster in prefill, "
        f"{decode_speedup:.2f}x in decode -- disaggregation helps even when "
        f"utilization is memory-shape-bound."
    )


if __name__ == "__main__":
    main()
