#!/usr/bin/env python3
"""Two heterogeneous matrix units in one Virgo cluster (Section 6.3).

A full-size 16x16 unit runs a 256^3 GEMM while a half-size 8x8 unit runs a
128^3 GEMM.  The example compares running them in parallel against running
them back to back, in utilization and power-per-FLOP.

Run with:  python examples/heterogeneous_units.py
"""

from __future__ import annotations

from repro.kernels.heterogeneous import heterogeneous_summary, simulate_heterogeneous


def main() -> None:
    result = simulate_heterogeneous(large_size=256, small_size=128)
    summary = heterogeneous_summary(result)

    print("== Heterogeneous dual matrix units (Virgo cluster) ==")
    print(f"  large unit: 256^3 GEMM, {result.large_cycles:,} cycles")
    print(f"  small unit: 128^3 GEMM, {result.small_cycles:,} cycles")
    print(f"  serial execution:   {result.serial_cycles:,} cycles, "
          f"{summary['serial_utilization_percent']:.1f}% utilization")
    print(f"  parallel execution: {result.parallel_cycles:,} cycles, "
          f"{summary['parallel_utilization_percent']:.1f}% utilization "
          f"({summary['parallel_speedup']:.2f}x faster)")
    print(f"  power per FLOP increase when run in parallel: "
          f"{summary['power_per_flop_increase_percent']:.2f}% (paper: 4.3%)")
    print("\nDisaggregation lets differently-sized units share the cluster's shared")
    print("memory and DMA with minimal interference, which is the scalability")
    print("property Section 6.3 demonstrates.")


if __name__ == "__main__":
    main()
