#!/usr/bin/env python3
"""FlashAttention-3 on Virgo vs the Ampere-style baseline (Sections 4.5 and 6.2).

The example first verifies the functional algorithm (blocked online softmax
with the 2nd-order Taylor exponential the paper substitutes on Vortex)
against exact attention, then compares the Virgo and Ampere-style mappings in
utilization, power and energy.

Run with:  python examples/flash_attention_fusion.py
"""

from __future__ import annotations

import numpy as np

from repro import DesignKind, run_flash_attention
from repro.kernels.flash_attention import (
    FlashAttentionWorkload,
    attention_reference,
    flash_attention_reference,
)


def verify_numerics() -> None:
    rng = np.random.default_rng(7)
    seq, head_dim = 256, 64
    q = rng.standard_normal((seq, head_dim)).astype(np.float32)
    k = rng.standard_normal((seq, head_dim)).astype(np.float32)
    v = rng.standard_normal((seq, head_dim)).astype(np.float32)

    exact = attention_reference(q, k, v)
    blocked = flash_attention_reference(q, k, v, block_q=64, block_kv=64)
    taylor = flash_attention_reference(q, k, v, block_q=64, block_kv=64, use_taylor_exp=True)

    print("== Functional verification (seq 256, head dim 64) ==")
    print(f"  blocked online softmax vs exact:   max |err| = {np.abs(blocked - exact).max():.2e}")
    print(f"  2nd-order Taylor exp vs exact:     max |err| = {np.abs(taylor - exact).max():.2e}")


def compare_mappings() -> None:
    workload = FlashAttentionWorkload(seq_len=1024, head_dim=64)
    print("\n== FlashAttention-3 forward pass (seq 1024, head dim 64, FP32) ==")
    print(f"{'design':<14} {'cycles':>12} {'MAC util %':>11} {'power mW':>10} {'energy uJ':>11}")
    results = {}
    for kind in (DesignKind.AMPERE, DesignKind.VIRGO):
        run = run_flash_attention(kind, workload)
        results[kind] = run
        print(
            f"{run.design_name:<14} {run.total_cycles:>12,} "
            f"{run.mac_utilization_percent:>11.1f} {run.active_power_mw:>10.1f} "
            f"{run.active_energy_uj:>11.1f}"
        )

    virgo = results[DesignKind.VIRGO]
    ampere = results[DesignKind.AMPERE]
    print(
        f"\nVirgo fences+barriers keep the matrix unit, the DMA and the SIMT softmax"
        f" overlapped;\nfence polling is "
        f"{100 * virgo.kernel.fence_overhead_fraction:.1f}% of runtime "
        f"(paper: 2.4%), and energy drops by "
        f"{100 * (1 - virgo.active_energy_uj / ampere.active_energy_uj):.1f}% "
        f"(paper: 50.6%)."
    )


def main() -> None:
    verify_numerics()
    compare_mappings()


if __name__ == "__main__":
    main()
