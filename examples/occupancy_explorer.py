#!/usr/bin/env python3
"""Occupancy explorer: why core-coupled matrix units hit a register-pressure wall.

Regenerates Table 1's occupancy column from the paper's reported register
usage and sweeps register usage per thread to show how quickly occupancy
collapses -- the motivation for decoupling operand and accumulator storage
from the register file.

Run with:  python examples/occupancy_explorer.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.simt.occupancy import GENERATIONS, TABLE1_REGISTER_USAGE, OccupancyCalculator
from repro.simt.register_file import max_tile_for_register_space
from repro.config.soc import DataType


def table1() -> None:
    print("== Table 1: CUTLASS GEMM kernels on datacenter GPUs ==")
    headers = ["GPU", "Tensor FP16 (rel)", "regs/thread", "occupancy %", "limited by"]
    rows = []
    for gpu, spec in GENERATIONS.items():
        calculator = OccupancyCalculator(spec)
        result = calculator.calculate(TABLE1_REGISTER_USAGE[gpu], threads_per_block=256)
        rows.append(
            [
                gpu,
                f"{spec.tensor_fp16_tflops_rel:.1f}x",
                str(TABLE1_REGISTER_USAGE[gpu]),
                f"{100 * result.occupancy:.1f}",
                result.limiting_factor,
            ]
        )
    print(format_table(headers, rows))


def sweep() -> None:
    print("\n== Occupancy vs register usage (A100-class SM, 256-thread blocks) ==")
    calculator = OccupancyCalculator(GENERATIONS["A100"])
    headers = ["regs/thread", "resident warps", "occupancy %"]
    rows = []
    for registers in (32, 64, 96, 128, 168, 192, 224, 255):
        result = calculator.calculate(registers, threads_per_block=256)
        rows.append([str(registers), str(result.warps_per_sm), f"{100 * result.occupancy:.1f}"])
    print(format_table(headers, rows))


def tile_limits() -> None:
    print("\n== Largest matrix tile a 1 KiB per-warp register slice supports ==")
    headers = ["integration style", "operands in RF", "accumulator in RF", "max tile (m,n,k)"]
    rows = [
        ["Tightly-coupled (Volta/Ampere)", "yes", "yes",
         str(max_tile_for_register_space(1024, DataType.FP16, True, True))],
        ["Operand-decoupled (Hopper)", "no", "yes",
         str(max_tile_for_register_space(1024, DataType.FP16, False, True))],
        ["Disaggregated (Virgo)", "no", "no", "limited only by shared/accumulator memory"],
    ]
    print(format_table(headers, rows))


def main() -> None:
    table1()
    sweep()
    tile_limits()


if __name__ == "__main__":
    main()
