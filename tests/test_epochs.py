"""Differential harness for epoch-level serving compression.

The epoch layer (:mod:`repro.workloads.epochs`) only earns its keep if the
extrapolation is *exact*: a compressed run must serialize byte-identically
to the exact per-iteration loop, across every policy, fault plan and
arrival pattern.  This suite is that proof, from four directions:

* the **differential matrix**: exact-vs-compressed byte-identical
  ``to_dict`` across the trace zoo x all three scheduling policies x
  seeded fault plans, with cold caches on both sides;
* **hypothesis properties** generating adversarial arrival patterns --
  simultaneous bursts, boundary-exact spacing, long idle gaps -- that
  maximize epoch/episode transients;
* **boundary unit tests**: cycle entry/exit arithmetic, drain, preemption
  mid-epoch, fault-forced epoch breaks, and the accounting invariant
  ``executed + extrapolated == iterations``;
* **primitive unit tests**: :class:`IterationTimeline` sequence semantics,
  bit-exact :func:`accumulate_energy`, :func:`epoch_horizon` and
  :func:`clean_fault_run` edge cases, episode template learning/replay.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import assert_byte_identical

from repro.__main__ import main
from repro.analysis.serving import serving_latency_report, serving_perf_stats
from repro.config.presets import DesignKind
from repro.faults import FaultInjector, FaultPlan
from repro.perf import timing_cache
from repro.workloads import (
    REQUEST_MODELS,
    ModelSpec,
    RequestSpec,
    ServingTrace,
    build_request_stream,
    build_stream_trace,
    run_serving,
    trace_names,
)
from repro.workloads.epochs import (
    EpisodeRun,
    EpisodeSegment,
    EpochRecord,
    IterationRecord,
    IterationTimeline,
    accumulate_energy,
    accumulate_energy_scalar,
    build_episode_template,
    clean_fault_run,
    epoch_horizon,
    fresh_epoch_stats,
)

TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)

POLICIES = ("fcfs", "kv-budget", "preemptive-slo")
FAULT_PLANS = (None, "spike:0.2:3.0,stall:0.1:500")
FAULT_SEED = 11

#: Solo request shape whose whole decode stays inside one KV bucket -- the
#: shape episode templates compress best (mirrors poisson_stream_trace).
STREAM_PROMPT, STREAM_STEPS = 105, 24


def spaced_stream(arrival_gap: int = 3_000_000, count: int = 12) -> ServingTrace:
    """Uniform solo-shape requests spaced far beyond one solo service."""
    return build_stream_trace(
        "spaced",
        build_request_stream(
            REQUEST_MODELS["gpt-request"],
            [index * arrival_gap for index in range(count)],
            prompt_len=STREAM_PROMPT,
            decode_steps=STREAM_STEPS,
        ),
    )


def run_cold(trace, compress, **kwargs):
    """One serving run from a cold timing cache (and empty memo/episodes)."""
    timing_cache().clear()
    return run_serving(
        trace, DesignKind.VIRGO, epoch_compression=compress, **kwargs
    )


def assert_epoch_invariants(result) -> None:
    """The accounting identity every compressed run must satisfy."""
    stats = result.epochs
    assert stats["enabled"] is True
    assert (
        stats["executed_iterations"] + stats["extrapolated_iterations"]
        == result.iteration_count
    )
    assert stats["extrapolated_requests"] <= len(result.requests)


# --------------------------------------------------------------------------- #
# The differential matrix: trace zoo x policies x fault plans.
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("trace_name", trace_names())
@pytest.mark.parametrize("policy", POLICIES)
def test_exact_vs_compressed_matrix(trace_name, policy):
    for faults in FAULT_PLANS:
        kwargs = dict(policy=policy, faults=faults, fault_seed=FAULT_SEED)
        exact = run_cold(trace_name, False, **kwargs)
        compressed = run_cold(trace_name, True, **kwargs)
        assert_byte_identical(
            exact,
            compressed,
            context=f"{trace_name} x {policy} x faults={faults!r}",
        )
        # Derived analysis surfaces agree too (same inputs, but pin it).
        assert serving_latency_report(exact) == serving_latency_report(compressed)
        assert exact.epochs["enabled"] is False
        assert_epoch_invariants(compressed)
        # Cold-vs-cold runs execute the same cache/memo work: extrapolated
        # hits are credited, so the diagnostics match exactly.
        assert exact.iteration_memo == compressed.iteration_memo
        assert exact.timing_cache == compressed.timing_cache


def test_episode_replay_is_byte_identical():
    """A warm second run replays whole requests as episodes -- identically."""
    trace = spaced_stream()
    timing_cache().clear()
    first = run_serving(trace, DesignKind.VIRGO)
    second = run_serving(trace, DesignKind.VIRGO)
    assert_byte_identical(first, second, context="episode replay vs first run")
    # The first run learns the template mid-stream and already replays the
    # tail; the second covers every request.
    assert second.epochs["episode_runs"] >= 1
    assert second.epochs["extrapolated_requests"] == len(trace.requests)
    assert_epoch_invariants(second)


def test_compressed_timeline_expands_identically():
    """Walking the lazy timeline yields the exact loop's records."""
    trace = spaced_stream(count=6)
    exact = run_cold(trace, False)
    compressed = run_cold(trace, True)
    assert isinstance(compressed.iterations, IterationTimeline)
    expanded = [record.to_dict() for record in compressed.iterations]
    assert expanded == [record.to_dict() for record in exact.iterations]
    # Indexing agrees with iteration order, including from the rear.
    assert compressed.iterations[0].to_dict() == expanded[0]
    assert compressed.iterations[-1].to_dict() == expanded[-1]


# --------------------------------------------------------------------------- #
# Hypothesis: adversarial arrival patterns maximize transients.
# --------------------------------------------------------------------------- #


@st.composite
def adversarial_traces(draw):
    """Arrival streams engineered to stress epoch/episode boundaries:
    simultaneous bursts (gap 0), near-boundary spacings, and long idle
    stretches, over a couple of request shapes."""
    count = draw(st.integers(1, 6))
    gap_kinds = st.sampled_from((0, 1, 7_000, 60_000, 1_000_000, 40_000_000))
    arrival = 0
    requests = []
    for index in range(count):
        if index:
            arrival += draw(gap_kinds)
        requests.append(
            RequestSpec(
                request_id=f"a{index}",
                model=draw(st.sampled_from((TINY_GPT, REQUEST_MODELS["gpt-request"]))),
                arrival_cycle=arrival,
                prompt_len=draw(st.sampled_from((1, 31, 32, 105))),
                decode_steps=draw(st.integers(1, 6)),
            )
        )
    return ServingTrace(name="adversarial", requests=tuple(requests),
                        context_bucket=32)


@settings(deadline=None, max_examples=12)
@given(trace=adversarial_traces(), policy=st.sampled_from(POLICIES))
def test_property_exact_vs_compressed(trace, policy):
    exact = run_cold(trace, False, policy=policy)
    compressed = run_cold(trace, True, policy=policy)
    assert_byte_identical(exact, compressed, context=f"adversarial x {policy}")
    assert_epoch_invariants(compressed)


@settings(deadline=None, max_examples=8)
@given(trace=adversarial_traces(), seed=st.integers(0, 2**16))
def test_property_exact_vs_compressed_under_faults(trace, seed):
    faults = "spike:0.3:2.5,stall:0.2:700,burst:0.2:30000"
    exact = run_cold(trace, False, faults=faults, fault_seed=seed)
    compressed = run_cold(trace, True, faults=faults, fault_seed=seed)
    assert_byte_identical(exact, compressed, context=f"faults seed={seed}")
    assert_epoch_invariants(compressed)


# --------------------------------------------------------------------------- #
# Epoch boundaries: entry/exit, drain, preemption, fault breaks.
# --------------------------------------------------------------------------- #


def test_solo_drain_compresses_to_epochs():
    """A single request's cold run drains through whole-epoch hits."""
    trace = build_stream_trace(
        "solo",
        build_request_stream(
            REQUEST_MODELS["gpt-request"], [0],
            prompt_len=STREAM_PROMPT, decode_steps=STREAM_STEPS,
        ),
    )
    result = run_cold(trace, True)
    assert result.epochs["epochs"] >= 1
    assert result.epochs["extrapolated_iterations"] >= 1
    assert_epoch_invariants(result)
    # The drain epoch runs to the finish: the last timeline record ends at
    # the finish cycle, and the request's stamps match the exact run's.
    exact = run_cold(trace, False)
    assert_byte_identical(exact, result, context="solo drain")


def test_epoch_breaks_at_arrival_boundary():
    """An epoch never extrapolates across a pending arrival."""
    gap = 100_000  # lands mid-service: the second request joins the batch
    trace = build_stream_trace(
        "overlap",
        build_request_stream(
            REQUEST_MODELS["gpt-request"], [0, gap],
            prompt_len=STREAM_PROMPT, decode_steps=STREAM_STEPS,
        ),
    )
    exact = run_cold(trace, False)
    compressed = run_cold(trace, True)
    assert_byte_identical(exact, compressed, context="arrival mid-epoch")
    # Batch-2 iterations exist in both runs: the epoch stopped for the join.
    assert any(record.batch == 2 for record in compressed.iterations)


def test_preemption_mid_epoch_stays_exact():
    """Control-plane preemption is a transient: epochs break around it."""
    from repro.workloads.control import SLO_CLASSES

    unit = 200_000
    trace = ServingTrace(
        name="preempt",
        requests=(
            RequestSpec(request_id="bulk0", model=TINY_GPT, arrival_cycle=0,
                        prompt_len=16, decode_steps=4, slo=SLO_CLASSES["batch"]),
            RequestSpec(request_id="bulk1", model=TINY_GPT, arrival_cycle=0,
                        prompt_len=16, decode_steps=4, slo=SLO_CLASSES["batch"]),
            RequestSpec(request_id="vip", model=TINY_GPT, arrival_cycle=1,
                        prompt_len=16, decode_steps=2,
                        slo=SLO_CLASSES["interactive"]),
        ),
        context_bucket=32,
    )
    kwargs = dict(policy="preemptive-slo", kv_budget=2 * unit)
    exact = run_cold(trace, False, **kwargs)
    compressed = run_cold(trace, True, **kwargs)
    assert compressed.preemption_count == exact.preemption_count
    assert_byte_identical(exact, compressed, context="preemption mid-epoch")
    assert_epoch_invariants(compressed)


def test_saturated_faults_force_epoch_breaks():
    """With every iteration faulted, nothing may be extrapolated."""
    trace = spaced_stream(count=4)
    result = run_cold(trace, True, faults="spike:1.0:2.0", fault_seed=3)
    assert result.epochs["epochs"] == 0
    assert result.epochs["episode_runs"] == 0
    assert result.epochs["extrapolated_iterations"] == 0
    assert result.epochs["executed_iterations"] == result.iteration_count
    exact = run_cold(trace, False, faults="spike:1.0:2.0", fault_seed=3)
    assert_byte_identical(exact, result, context="saturated faults")


def test_memo_off_disables_compression():
    """Epochs ride on the iteration memo: no memo, no extrapolation."""
    result = run_cold(spaced_stream(count=3), True, iteration_memo=False)
    assert result.epochs["enabled"] is False
    assert isinstance(result.iterations, IterationTimeline)


# --------------------------------------------------------------------------- #
# Epoch statistics surfaces: perf stats and serve --json.
# --------------------------------------------------------------------------- #


def test_perf_stats_carry_epoch_section():
    result = run_cold(spaced_stream(count=4), True)
    perf = serving_perf_stats(result)
    assert perf["epochs"] == result.epochs
    counters = result.metrics
    assert counters.counter("epoch.runs", diagnostic=True).value == (
        result.epochs["epochs"] + result.epochs["episode_runs"]
    )
    assert counters.counter(
        "epoch.extrapolated_iterations", diagnostic=True
    ).value == result.epochs["extrapolated_iterations"]


def test_serve_json_flag_matrix(capsys):
    """``serve --json`` is byte-identical across the flag, modulo the
    process-dependent perf section, and surfaces the epoch stats."""
    reports = {}
    for flag in ("--epoch-compression", "--no-epoch-compression"):
        timing_cache().clear()
        assert main(["serve", "--trace", "bursty-gpt", "--json", flag]) == 0
        reports[flag] = json.loads(capsys.readouterr().out)
    on, off = reports["--epoch-compression"], reports["--no-epoch-compression"]
    assert on["perf"]["epochs"]["enabled"] is True
    assert off["perf"]["epochs"]["enabled"] is False
    assert_byte_identical(
        on, off, ignore_paths=("perf",), context="serve --json flag matrix"
    )


# --------------------------------------------------------------------------- #
# IterationTimeline: sequence semantics over mixed segments.
# --------------------------------------------------------------------------- #


def record(index, start=0, span=10, batch=1, ids=("r0",)):
    return IterationRecord(index=index, start_cycle=start, span_cycles=span,
                           batch=batch, request_ids=list(ids))


def sample_template():
    return build_episode_template([
        EpisodeSegment(count=2, span_cycles=10, end_cycle=7, kernel_count=3,
                       energy_uj=1.5, resource_busy=(("matrix", 6),),
                       cache_lookups=2),
        EpisodeSegment(count=1, span_cycles=12, end_cycle=9, kernel_count=4,
                       energy_uj=2.25, resource_busy=(("matrix", 8), ("simt", 2)),
                       cache_lookups=3),
    ])


class TestIterationTimeline:
    def build(self):
        template = sample_template()
        timeline = IterationTimeline([record(0, start=0)])
        timeline.append(EpochRecord(index=1, start_cycle=10, span_cycles=5,
                                    count=3, request_ids=["r0", "r1"]))
        timeline.append(
            EpisodeRun(
                index=4,
                template=template,
                arrivals=np.array([100, 400], dtype=np.int64),
                requests=[
                    RequestSpec(request_id=f"e{i}", model=TINY_GPT,
                                arrival_cycle=arrival, prompt_len=8,
                                decode_steps=3)
                    for i, arrival in enumerate((100, 400))
                ],
            )
        )
        return timeline

    def test_len_and_decode_steps(self):
        timeline = self.build()
        assert len(timeline) == 1 + 3 + 2 * 3
        # 1 batch-1 exact + 3 batch-2 epoch iterations + 6 solo episodes.
        assert timeline.decode_steps == 1 + 6 + 6
        assert len(timeline.segments) == 3

    def test_iteration_matches_indexing(self):
        timeline = self.build()
        walked = [record.to_dict() for record in timeline]
        indexed = [timeline[i].to_dict() for i in range(len(timeline))]
        assert walked == indexed
        # Indices are consecutive and starts are the closed-form offsets.
        assert [r["index"] for r in walked] == list(range(len(timeline)))

    def test_negative_indexing_and_slicing(self):
        timeline = self.build()
        assert timeline[-1].to_dict() == timeline[len(timeline) - 1].to_dict()
        sliced = timeline[2:5]
        assert [r.to_dict() for r in sliced] == [
            timeline[i].to_dict() for i in (2, 3, 4)
        ]
        assert timeline[::-1][0].to_dict() == timeline[-1].to_dict()

    def test_out_of_range_raises(self):
        timeline = self.build()
        with pytest.raises(IndexError):
            timeline[len(timeline)]
        with pytest.raises(IndexError):
            timeline[-len(timeline) - 1]

    def test_batch_observations_cover_every_iteration(self):
        timeline = self.build()
        observations = list(timeline.batch_observations())
        assert sum(count for _, count in observations) == len(timeline)
        assert sum(batch * count for batch, count in observations) == (
            timeline.decode_steps
        )

    def test_epoch_record_arithmetic(self):
        epoch = EpochRecord(index=7, start_cycle=1000, span_cycles=50,
                            count=4, request_ids=["a", "b", "c"])
        assert epoch.batch == 3
        assert epoch.decode_steps == 12
        assert epoch.total_span == 200
        records = list(epoch.records())
        assert [r.index for r in records] == [7, 8, 9, 10]
        assert [r.start_cycle for r in records] == [1000, 1050, 1100, 1150]
        assert all(r.span_cycles == 50 and r.batch == 3 for r in records)

    def test_episode_run_record_at_matches_records(self):
        run = self.build().segments[2]
        assert isinstance(run, EpisodeRun)
        assert run.request_count == 2
        assert run.iteration_count == 6
        walked = [r.to_dict() for r in run.records()]
        direct = [run.record_at(i).to_dict() for i in range(run.iteration_count)]
        assert walked == direct
        # Second request's records restart at its arrival.
        assert walked[3]["start_cycle"] == 400
        assert walked[3]["request_ids"] == ["e1"]


# --------------------------------------------------------------------------- #
# Primitives: energy folds, horizons, fault probes, templates.
# --------------------------------------------------------------------------- #


def python_fold(total, pattern, repeats):
    for value in list(pattern) * repeats:
        total += value
    return total


class TestAccumulateEnergy:
    def test_bit_exact_small(self):
        pattern = np.array([0.1, 0.37, 2.25, 1e-7], dtype=np.float64)
        assert accumulate_energy(3.7, pattern, 5) == python_fold(3.7, pattern, 5)

    def test_bit_exact_numpy_path(self):
        rng = np.random.default_rng(7)
        pattern = rng.random(7)
        # 7 * 200 = 1400 addends: past the small-fold threshold.
        assert accumulate_energy(0.9, pattern, 200) == python_fold(0.9, pattern, 200)

    def test_bit_exact_across_chunks(self):
        from repro.workloads.epochs import _ENERGY_CHUNK

        pattern = np.array([1e-9, 2.0], dtype=np.float64)
        repeats = _ENERGY_CHUNK // 2 + 3  # spans two cumsum chunks
        assert accumulate_energy(1.0, pattern, repeats) == python_fold(
            1.0, pattern, repeats
        )

    def test_scalar_variant_bit_exact(self):
        assert accumulate_energy_scalar(0.3, 0.7, 9) == python_fold(
            0.3, np.array([0.7]), 9
        )
        assert accumulate_energy_scalar(0.3, 1e-8, 5000) == python_fold(
            0.3, np.array([1e-8]), 5000
        )

    def test_degenerate_inputs(self):
        pattern = np.array([1.0])
        assert accumulate_energy(2.5, pattern, 0) == 2.5
        assert accumulate_energy(2.5, np.array([], dtype=np.float64), 3) == 2.5
        assert accumulate_energy_scalar(2.5, 1.0, 0) == 2.5


class TestEpochHorizon:
    def test_finish_bound(self):
        assert epoch_horizon([3, 5], [10, 10], 10, 0, None) == 3

    def test_bucket_bound(self):
        assert epoch_horizon([8, 9], [2, 6], 10, 0, None) == 2

    def test_arrival_bound_strictly_before(self):
        # Boundaries at 110, 120; the arrival at 125 allows both (ceil).
        assert epoch_horizon([9], [9], 10, 100, 125) == 3
        # An arrival exactly on a boundary excludes that boundary.
        assert epoch_horizon([9], [9], 10, 100, 120) == 2

    def test_floor_is_one(self):
        assert epoch_horizon([1], [1], 10, 0, None) == 1
        # Arrival already due: the current iteration still runs.
        assert epoch_horizon([9], [9], 10, 100, 100) == 1


class TestCleanFaultRun:
    def test_saturated_plan_breaks_immediately(self):
        injector = FaultInjector(FaultPlan.parse("spike:1.0:2.0", seed=1))
        assert clean_fault_run(injector, 0, 10) == 0

    def test_clean_plan_runs_to_limit(self):
        injector = FaultInjector(FaultPlan.parse("burst:1.0:5000", seed=1))
        # Bursts perturb arrivals, not iterations: every iteration is clean.
        assert clean_fault_run(injector, 0, 7) == 7

    def test_partial_plan_stops_at_first_fault(self):
        injector = FaultInjector(FaultPlan.parse("stall:0.5:100", seed=2))
        length = clean_fault_run(injector, 0, 64)
        assert 0 <= length < 64
        assert injector.iteration_stall(length) > 0
        for index in range(length):
            assert injector.iteration_stall(index) == 0


class TestEpisodeTemplate:
    def test_build_totals(self):
        template = sample_template()
        assert template.total_iterations == 3
        assert template.total_span == 2 * 10 + 12
        assert template.first_token_end == 7
        assert template.finish_offset == 32 - 12 + 9
        assert template.total_kernels == 2 * 3 + 4
        assert template.total_lookups == 2 * 2 + 3
        assert template.busy_totals == (("matrix", 2 * 6 + 8), ("simt", 2))
        assert template.energy_pattern.tolist() == [1.5, 1.5, 2.25]

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            build_episode_template([])

    def test_fresh_stats_shape(self):
        stats = fresh_epoch_stats(True)
        assert stats == {
            "enabled": True,
            "epochs": 0,
            "episode_runs": 0,
            "executed_iterations": 0,
            "extrapolated_iterations": 0,
            "extrapolated_requests": 0,
        }


class TestTraceHonesty:
    def test_epoch_spans_stay_compressed(self):
        """Extrapolated epochs export as single annotated spans."""
        from repro.obs import TraceRecorder, tracing

        trace = spaced_stream(count=3)
        timing_cache().clear()
        run_serving(trace, DesignKind.VIRGO)  # learn templates
        recorder = TraceRecorder(capture_phases=False)
        with tracing(recorder):
            result = run_serving(trace, DesignKind.VIRGO)
        assert result.epochs["extrapolated_requests"] == len(trace.requests)
        episode_spans = [
            span for span in recorder.spans
            if span.category == "epoch" and span.name.startswith("episode x")
        ]
        assert episode_spans, "episode runs must export annotated spans"
        # One span per run -- never one per extrapolated iteration.
        total_iterations = sum(
            span.args["iterations"] for span in episode_spans
        )
        assert total_iterations == result.epochs["extrapolated_iterations"]
        assert len(episode_spans) == result.epochs["episode_runs"]
