"""Tests for the energy table, power computation, breakdowns and area model."""

import pytest

from repro.config.soc import IntegrationStyle, SoCConfig
from repro.config.presets import DesignKind, make_design
from repro.energy.area import AreaModel, soc_area_breakdown
from repro.energy.breakdown import core_breakdown, matrix_unit_breakdown, soc_breakdown
from repro.energy.model import EnergyTable
from repro.energy.power import active_energy_uj, active_power_mw, make_power_report
from repro.sim.stats import Counters


class TestEnergyTable:
    def test_energy_accumulates(self):
        table = EnergyTable()
        counters = Counters({"core.issue.instructions": 100})
        assert table.energy_picojoules(counters) == pytest.approx(700.0)

    def test_unknown_counters_ignored_but_reported(self):
        table = EnergyTable()
        counters = Counters({"made.up.counter": 5})
        assert table.energy_picojoules(counters) == 0.0
        assert table.unknown_counters(counters) == ("made.up.counter",)

    def test_component_attribution(self):
        table = EnergyTable()
        counters = Counters({"smem.core.read_words": 10, "accum.read_words": 10})
        by_component = table.energy_by_component(counters)
        assert "shared_memory" in by_component
        assert "accumulator" in by_component

    def test_accumulator_cheaper_than_register_file(self):
        """The single-banked accumulator SRAM costs less per word than the RF."""
        table = EnergyTable()
        accum = table.spec_for("accum.read_words").picojoules
        rf = table.spec_for("core.issue.rf_read_words").picojoules
        assert accum < rf

    def test_virgo_pe_macs_cheaper_than_tensor_core(self):
        """Fused multiply-add systolic PEs are slightly cheaper (Figure 11)."""
        tensor = EnergyTable.for_design(IntegrationStyle.TIGHTLY_COUPLED)
        systolic = EnergyTable.for_design(IntegrationStyle.DISAGGREGATED)
        assert (
            systolic.spec_for("matrix_unit.pe.macs").picojoules
            < tensor.spec_for("matrix_unit.pe.macs").picojoules
        )

    def test_dram_energy_excluded_from_soc(self):
        table = EnergyTable()
        assert table.spec_for("dram.bytes").picojoules == 0.0

    def test_all_kernel_counters_have_energy_assignments(self):
        """Every counter a GEMM kernel produces must be in the energy table."""
        from repro.kernels.gemm import simulate_gemm

        table = EnergyTable()
        for kind in DesignKind:
            result = simulate_gemm(kind, 256)
            assert table.unknown_counters(result.counters) == (), kind


class TestPower:
    def test_power_scales_inversely_with_runtime(self):
        table = EnergyTable()
        counters = Counters({"core.issue.instructions": 1_000_000})
        soc = SoCConfig()
        fast = active_power_mw(counters, table, cycles=1000, soc=soc)
        slow = active_power_mw(counters, table, cycles=2000, soc=soc)
        assert fast == pytest.approx(2 * slow)

    def test_energy_independent_of_runtime(self):
        table = EnergyTable()
        counters = Counters({"core.issue.instructions": 1_000_000})
        assert active_energy_uj(counters, table) == pytest.approx(7.0)

    def test_power_report_consistency(self):
        table = EnergyTable()
        counters = Counters({"core.fpu.ops": 1000, "smem.core.read_words": 500})
        report = make_power_report("test", counters, table, cycles=4000, soc=SoCConfig())
        assert report.total_energy_pj == pytest.approx(
            sum(report.energy_by_component_pj.values())
        )
        assert report.active_power_mw > 0
        assert sum(report.power_by_component_mw().values()) == pytest.approx(
            report.active_power_mw
        )

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            active_power_mw(Counters(), EnergyTable(), cycles=0, soc=SoCConfig())


class TestBreakdowns:
    def _counters(self):
        return Counters(
            {
                "core.issue.instructions": 1000,
                "core.alu.ops": 500,
                "core.fpu.ops": 200,
                "smem.core.read_words": 300,
                "accum.read_words": 100,
                "matrix_unit.pe.macs": 10_000,
                "l2.bytes": 4096,
                "dma.bytes": 4096,
            }
        )

    def test_soc_breakdown_groups(self):
        breakdown = soc_breakdown("test", self._counters(), EnergyTable())
        assert set(breakdown.parts_pj) == {
            "L2 Cache",
            "L1 Cache",
            "Shared Mem",
            "Vortex Core",
            "Accum Mem",
            "Matrix Unit",
            "DMA & Other",
        }
        assert breakdown.parts_pj["Vortex Core"] > 0
        assert breakdown.total_pj > 0

    def test_core_breakdown_components(self):
        breakdown = core_breakdown("test", self._counters(), EnergyTable())
        assert breakdown.parts_pj["Core: Issue"] > 0
        assert breakdown.parts_pj["Core: ALU"] > 0

    def test_matrix_unit_breakdown(self):
        breakdown = matrix_unit_breakdown("test", self._counters(), EnergyTable())
        assert breakdown.parts_pj["PEs"] > 0

    def test_fractions_sum_to_one(self):
        breakdown = soc_breakdown("test", self._counters(), EnergyTable())
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_dominant_component(self):
        counters = Counters({"core.issue.instructions": 1_000_000})
        breakdown = soc_breakdown("test", counters, EnergyTable())
        assert breakdown.dominant_component() == "Vortex Core"


class TestAreaModel:
    def test_breakdown_components(self, virgo_design):
        breakdown = soc_area_breakdown(virgo_design)
        assert set(breakdown) == {
            "L2 Cache",
            "L1 Cache",
            "Shared Mem",
            "Vortex Core",
            "Accum Mem",
            "Matrix Unit",
            "DMA & Other",
        }
        assert all(value >= 0 for value in breakdown.values())

    def test_virgo_area_close_to_baselines(self):
        """Figure 7: Virgo's SoC area is comparable to the core-coupled baselines.

        The paper reports Virgo within 0.1% of Volta-style and 3% of
        Hopper-style.  Our density model keeps Virgo and Volta-style (same
        core count) within a few percent; the Hopper-style point deviates
        more because its four-core cluster sheds flop-array L1 area that the
        paper's implementation apparently retains (see EXPERIMENTS.md).
        """
        volta_area = AreaModel(make_design(DesignKind.VOLTA)).total_um2()
        hopper_area = AreaModel(make_design(DesignKind.HOPPER)).total_um2()
        virgo_area = AreaModel(make_design(DesignKind.VIRGO)).total_um2()
        assert abs(virgo_area - volta_area) / volta_area < 0.15
        assert virgo_area > hopper_area
        assert abs(virgo_area - hopper_area) / hopper_area < 0.75

    def test_virgo_only_design_with_accumulator_area(self):
        volta = soc_area_breakdown(make_design(DesignKind.VOLTA))
        virgo_bd = soc_area_breakdown(make_design(DesignKind.VIRGO))
        assert volta["Accum Mem"] == 0
        assert virgo_bd["Accum Mem"] > 0

    def test_l1_dominates_due_to_flop_arrays(self, volta_design):
        """The paper notes the flop-array L1 is a large area component."""
        breakdown = soc_area_breakdown(volta_design)
        assert breakdown["L1 Cache"] > breakdown["Shared Mem"]

    def test_total_mm2(self, virgo_design):
        model = AreaModel(virgo_design)
        assert model.total_mm2() == pytest.approx(model.total_um2() / 1e6)
