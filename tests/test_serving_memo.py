"""The serving iteration memo must be a pure accelerator.

Continuous-batching iterations are memoized process-wide by their batch
composition (ordered (model, bucketed context, unit) triples + design
fingerprint); a hit replays the recorded span, per-request step ends,
energy and busy cycles instead of re-merging and re-scheduling.  These
tests pin the contract from both ends:

* hypothesis: for random traces, a memoized run's serialized result --
  and therefore every latency/TTFT/queueing percentile derived from it --
  is byte-identical to a memo-disabled run's;
* accounting: memo hits credit the timing-cache lookups they skipped, so
  memoized and non-memoized runs report identical cache totals;
* lifecycle: the memo is keyed to the timing cache's generation (clearing
  one clears the other) and bypassed while the cache is disabled.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from differential import assert_byte_identical

from repro.analysis.serving import serving_latency_report, serving_perf_stats
from repro.config.presets import DesignKind
from repro.perf import cache_disabled, timing_cache
from repro.workloads import (
    ModelSpec,
    RequestSpec,
    ServingScheduler,
    ServingTrace,
    run_serving,
)
from repro.workloads import serving as serving_module

GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4)
GQA = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4, kv_heads=1)
MOE = ModelSpec(family="moe", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4, experts=4, top_k=2)
MODELS = (GPT, GQA, MOE)


@st.composite
def traces(draw):
    count = draw(st.integers(1, 6))
    bucket = draw(st.sampled_from((32, 64)))
    requests = []
    for index in range(count):
        requests.append(
            RequestSpec(
                request_id=f"m{index}",
                model=MODELS[draw(st.integers(0, len(MODELS) - 1))],
                arrival_cycle=draw(st.integers(0, 500_000)),
                prompt_len=draw(st.integers(1, 160)),
                decode_steps=draw(st.integers(1, 4)),
            )
        )
    # Traces must be sorted by (arrival, id) since construction validates it.
    requests.sort(key=lambda r: (r.arrival_cycle, r.request_id))
    return ServingTrace(name="memo-hypothesis", requests=tuple(requests),
                        context_bucket=bucket)


def steady_trace(count=3, decode_steps=6, bucket=64):
    """A co-resident batch that decodes long enough to repeat compositions."""
    return ServingTrace(
        name="memo-steady",
        requests=tuple(
            RequestSpec(request_id=f"s{index}", model=MODELS[index % len(MODELS)],
                        arrival_cycle=0, prompt_len=16, decode_steps=decode_steps)
            for index in range(count)
        ),
        context_bucket=bucket,
    )


@settings(deadline=None, max_examples=10)
@given(trace=traces(), heterogeneous=st.booleans())
def test_memo_never_changes_results(trace, heterogeneous):
    """Memo on vs off: byte-identical to_dict, so identical percentiles."""
    timing_cache().clear()
    memoized = run_serving(trace, DesignKind.VIRGO, heterogeneous=heterogeneous)
    baseline = run_serving(trace, DesignKind.VIRGO, heterogeneous=heterogeneous,
                           iteration_memo=False)
    assert_byte_identical(memoized, baseline, context="memo on vs off")
    assert serving_latency_report(memoized) == serving_latency_report(baseline)
    timing_cache().clear()


@settings(deadline=None, max_examples=8)
@given(trace=traces())
def test_memo_hits_keep_cache_accounting_consistent(trace):
    """A memoized run reports the same timing-cache totals as a memo-free
    run: hits skipped by the memo are credited back."""
    timing_cache().clear()
    memoized = run_serving(trace, DesignKind.VIRGO)
    memoized_totals = dict(hits=timing_cache().hits, misses=timing_cache().misses)
    assert memoized.timing_cache == memoized_totals

    timing_cache().clear()
    baseline = run_serving(trace, DesignKind.VIRGO, iteration_memo=False)
    baseline_totals = dict(hits=timing_cache().hits, misses=timing_cache().misses)
    timing_cache().clear()

    assert baseline.timing_cache == baseline_totals
    assert memoized_totals == baseline_totals


def test_repeated_compositions_hit_within_a_run():
    timing_cache().clear()
    result = run_serving(steady_trace(decode_steps=8), DesignKind.VIRGO)
    stats = serving_perf_stats(result)["iteration_memo"]
    assert result.iteration_memo == stats
    # Contexts bucket to a handful of shapes, so most iterations replay.
    assert stats["hits"] > 0
    assert stats["hits"] + stats["misses"] == result.iteration_count
    timing_cache().clear()


def test_memo_shared_across_scheduler_instances():
    """A second run of the same trace on a fresh scheduler replays entirely
    from the process-wide memo (the cross-run reuse the CLI profits from)."""
    timing_cache().clear()
    trace = steady_trace()
    first = ServingScheduler(DesignKind.VIRGO).run(trace)
    second = ServingScheduler(DesignKind.VIRGO).run(trace)
    assert first.iteration_memo["misses"] > 0
    assert second.iteration_memo["misses"] == 0
    assert second.iteration_memo["hits"] == second.iteration_count
    assert_byte_identical(second, first, context="memo replay vs first run")
    timing_cache().clear()


def test_memo_invalidated_by_timing_cache_clear():
    timing_cache().clear()
    trace = steady_trace()
    run_serving(trace, DesignKind.VIRGO)
    assert serving_module._iteration_memo()
    timing_cache().clear()
    assert not serving_module._iteration_memo()
    # The next run re-executes from scratch.
    result = run_serving(trace, DesignKind.VIRGO)
    assert result.iteration_memo["misses"] > 0
    timing_cache().clear()


def test_memo_bypassed_while_cache_disabled():
    """cache_disabled() must measure the true cold path: no kernel memo, no
    iteration memo, and nothing stored for later runs to reuse."""
    timing_cache().clear()
    trace = steady_trace(count=2, decode_steps=2)
    with cache_disabled():
        result = run_serving(trace, DesignKind.VIRGO)
    assert result.iteration_memo == {"hits": 0, "misses": result.iteration_count}
    assert not serving_module._iteration_memo()
    assert result.timing_cache == {"hits": 0, "misses": 0}
    timing_cache().clear()


def test_memo_key_distinguishes_batch_order():
    """The list scheduler packs kernels in insertion order, so (A, B) and
    (B, A) are different schedule contents and must not share an entry."""
    timing_cache().clear()
    scheduler = ServingScheduler(DesignKind.VIRGO)
    a = serving_module._InFlight(
        request=RequestSpec(request_id="a", model=GPT, prompt_len=16), admitted_cycle=0
    )
    b = serving_module._InFlight(
        request=RequestSpec(request_id="b", model=MOE, prompt_len=16), admitted_cycle=0
    )
    forward = scheduler._memo_key([32, 32], [a, b], ["matrix", "matrix"])
    backward = scheduler._memo_key([32, 32], [b, a], ["matrix", "matrix"])
    assert forward != backward
    # Request identity is not content: renaming a request keeps the key.
    a2 = serving_module._InFlight(
        request=RequestSpec(request_id="zz", model=GPT, prompt_len=16), admitted_cycle=0
    )
    assert scheduler._memo_key([32, 32], [a2, b], ["matrix", "matrix"]) == forward
    timing_cache().clear()
